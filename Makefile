# Convenience targets. Everything runs from the repo root with the
# src-layout package on PYTHONPATH (no install needed).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test cov lint smoke stream-smoke chaos-smoke city-smoke bench examples perfbench perfbench-smoke

# The full gate: tier-1 tests plus a fast runner smoke sweep.
verify: test smoke

# Tier-1: the repo's unit/integration suite (tests/ only).
test:
	$(PYTHON) -m pytest -x -q

# Tier-1 under coverage with the enforced floor (CI gate; needs
# pytest-cov). The floor sits a few points under the measured ~82% so
# honest refactors don't trip it, while a tests-less subsystem would.
COV_FLOOR ?= 78
cov:
	$(PYTHON) -m pytest -q --cov=repro \
		--cov-report=term-missing:skip-covered \
		--cov-fail-under=$(COV_FLOOR)

# Static lint (ruff, config in pyproject.toml). CI installs ruff and
# fails on findings; locally the target explains itself when ruff is
# missing rather than masquerading as a pass.
lint:
	@command -v ruff >/dev/null 2>&1 \
		|| { echo "ruff not installed (pip install ruff); skipping lint"; exit 0; } \
		&& ruff check src tests benchmarks examples

# Fast end-to-end proof that the Monte-Carlo runner works: one scenario
# run with 2 workers and one two-point sweep, straight from a TOML file.
smoke:
	$(PYTHON) -m repro run examples/scenarios/pair_collision.toml \
		--trials 2 --workers 2
	$(PYTHON) -m repro sweep examples/scenarios/capture_asymmetry.toml \
		--trials 2 --param params.sinr_db=0:8:8 --metrics total

# Tiny closed-loop soak through the CLI: continuous air, streaming
# segmentation, collision-buffer matching and ACK feedback end to end
# (the repro.link subsystem), ZigZag vs current-802.11 AP in one run.
# Then the two session cores head to head: the equivalence suite plus
# the idle-heavy benchmark pinning the event core's >=5x wall-clock win
# over the slot-clocked reference (writes benchmarks/results/).
stream-smoke:
	$(PYTHON) -m repro run examples/scenarios/ap_stream.toml \
		--trials 1 --set n_packets=2
	$(PYTHON) -m pytest -q tests/test_event_equivalence.py \
		benchmarks/bench_stream_soak.py

# Chaos soak (docs/resilience.md): worker kills, injected exceptions,
# hangs and shared-memory corruption against a supervised run — every
# fault kind at once — asserting zero lost trials, surviving results
# bit-identical to a fault-free run, and zero leaked /dev/shm arenas.
# Plus the full supervision test suite (checkpoint/resume, watchdog,
# SIGKILL-parent recovery).
chaos-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_chaos_soak.py \
		tests/test_runner_resilience.py

# Geometry-derived deployments end to end: a small 3-AP/12-client city
# block through the CLI (positions -> pathloss -> hidden pairs ->
# per-cell closed-loop sessions, sharded over the worker pool), plus
# the derived-topology test suite (fixed-seed regression, Hypothesis
# properties, multi-cell coordinator).
city-smoke:
	$(PYTHON) -m repro run examples/scenarios/city_scale.toml \
		--workers 0 --set n_trials=3 \
		--set deployment.n_aps=3 --set deployment.n_clients=12 \
		--set deployment.area_m=70
	$(PYTHON) -m repro run examples/scenarios/city_scale.toml \
		--workers 1 --set n_trials=1 --set kind=city_multicell \
		--set design=zigzag --set deployment.n_aps=3 \
		--set deployment.n_clients=12 --set deployment.area_m=70 \
		--set deployment.coupled_workers=2
	$(PYTHON) -m pytest -q tests/test_deployment.py \
		tests/test_multicell_parallel.py

# Regenerate every paper figure/table (slow; writes benchmarks/results/).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_*.py

# Tracked DSP performance benchmarks: every vectorized kernel timed
# against its preserved pre-optimization reference, plus an end-to-end
# hidden-pair decode and a runner sweep. Writes BENCH_perf.json at the
# repo root (schema: docs/performance.md).
perfbench:
	$(PYTHON) -m repro perf --out BENCH_perf.json

# Tiny sizes — proves the harness runs (CI); numbers are not meaningful.
perfbench-smoke:
	$(PYTHON) -m repro perf --smoke --out BENCH_perf.smoke.json

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done
