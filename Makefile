# Convenience targets. Everything runs from the repo root with the
# src-layout package on PYTHONPATH (no install needed).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify test smoke bench examples

# The full gate: tier-1 tests plus a fast runner smoke sweep.
verify: test smoke

# Tier-1: the repo's unit/integration suite (tests/ only).
test:
	$(PYTHON) -m pytest -x -q

# Fast end-to-end proof that the Monte-Carlo runner works: one scenario
# run with 2 workers and one two-point sweep, straight from a TOML file.
smoke:
	$(PYTHON) -m repro run examples/scenarios/pair_collision.toml \
		--trials 2 --workers 2
	$(PYTHON) -m repro sweep examples/scenarios/capture_asymmetry.toml \
		--trials 2 --param params.sinr_db=0:8:8 --metrics total

# Regenerate every paper figure/table (slow; writes benchmarks/results/).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_*.py

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done
