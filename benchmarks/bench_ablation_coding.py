"""Ablation (§6a extension): convolutional coding over ZigZag at low SNR.

Compares packet delivery of uncoded ZigZag (CRC on raw bits) against the
coded pipeline (soft-decision Viterbi over the MRC-combined payload
symbols) in the regime where residual subtraction noise still causes
scattered bit errors. This is the first iteration of the paper's proposed
ZigZag↔decoder loop.
"""

import sys

import numpy as np

sys.path.insert(0, "tests")

from repro.phy.frame import HEADER_BITS, descramble_soft_bpsk
from repro.phy.coding.iterative import decode_coded_soft
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.receiver.frontend import StreamConfig
from repro.utils.rng import make_rng
from repro.zigzag.decoder import ZigZagPairDecoder

from test_coded_zigzag_integration import coded_collision_pair

PREAMBLE = default_preamble(32)
SHAPER = PulseShaper()


def run(snr_db=6.5, n_trials=6, payload_bits=120):
    config = StreamConfig(preamble=PREAMBLE, shaper=SHAPER,
                          noise_power=1.0)
    decoder = ZigZagPairDecoder(config)
    uncoded_ok = coded_ok = total = 0
    for seed in range(n_trials):
        rng = make_rng(5200 + seed)
        captures, frames, payloads, specs, placements = \
            coded_collision_pair(rng, PREAMBLE, SHAPER, snr_db,
                                 payload_bits=payload_bits)
        outcome = decoder.decode([c.samples for c in captures], specs,
                                 placements)
        for name, payload in payloads.items():
            total += 1
            result = outcome.results[name]
            if result.success:      # CRC over the raw (coded) bits
                uncoded_ok += 1
            soft = descramble_soft_bpsk(
                result.soft_symbols[len(PREAMBLE) + HEADER_BITS:],
                offset=HEADER_BITS)
            if np.array_equal(decode_coded_soft(soft, payload.size),
                              payload):
                coded_ok += 1
    return uncoded_ok / total, coded_ok / total


def test_ablation_coding_over_zigzag(benchmark, record_table):
    uncoded, coded = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"packet delivery, uncoded (raw CRC)     : {uncoded:5.1%}",
        f"packet delivery, K=7 r=1/2 soft Viterbi: {coded:5.1%}",
        "(hidden pair at 6.5 dB — the regime where residual subtraction",
        " noise leaves scattered errors that the code removes, §6a)",
    ]
    record_table("ablation_coding", "Ablation: coding over ZigZag", lines)
    assert coded >= uncoded
    assert coded > 0.7
