"""Ablation (§6a extension): convolutional coding over ZigZag at low SNR.

Compares packet delivery of uncoded ZigZag (CRC on raw bits) against the
coded pipeline (soft-decision Viterbi over the MRC-combined payload
symbols) in the regime where residual subtraction noise still causes
scattered bit errors. This is the first iteration of the paper's proposed
ZigZag↔decoder loop.

Ported to the Monte-Carlo runner: one trial builds and decodes one coded
collision pair; delivery rates are run-level means.
"""

import sys

import numpy as np

sys.path.insert(0, "tests")

from repro.phy.frame import HEADER_BITS, descramble_soft_bpsk
from repro.phy.coding.iterative import decode_coded_soft
from repro.receiver.frontend import StreamConfig
from repro.runner import MonteCarloRunner
from repro.runner.cache import cached_preamble, cached_shaper
from repro.zigzag.decoder import ZigZagPairDecoder

N_TRIALS = 6
SNR_DB = 6.5
PAYLOAD_BITS = 120


def coding_trial(ctx):
    """Decode one coded collision pair; report per-pair delivery counts."""
    from test_coded_zigzag_integration import coded_collision_pair

    preamble = cached_preamble(32)
    shaper = cached_shaper()
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=1.0)
    decoder = ZigZagPairDecoder(config)
    captures, frames, payloads, specs, placements = coded_collision_pair(
        ctx.rng, preamble, shaper, SNR_DB, payload_bits=PAYLOAD_BITS)
    outcome = decoder.decode([c.samples for c in captures], specs,
                             placements)
    uncoded_ok = coded_ok = total = 0
    for name, payload in payloads.items():
        total += 1
        result = outcome.results[name]
        if result.success:      # CRC over the raw (coded) bits
            uncoded_ok += 1
        soft = descramble_soft_bpsk(
            result.soft_symbols[len(preamble) + HEADER_BITS:],
            offset=HEADER_BITS)
        if np.array_equal(decode_coded_soft(soft, payload.size), payload):
            coded_ok += 1
    return {"uncoded_ok": uncoded_ok, "coded_ok": coded_ok,
            "total": total}


def run():
    trials = MonteCarloRunner().map(coding_trial, N_TRIALS, seed=5200)
    total = sum(t["total"] for t in trials)
    return (sum(t["uncoded_ok"] for t in trials) / total,
            sum(t["coded_ok"] for t in trials) / total)


def test_ablation_coding_over_zigzag(benchmark, record_table):
    uncoded, coded = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"packet delivery, uncoded (raw CRC)     : {uncoded:5.1%}",
        f"packet delivery, K=7 r=1/2 soft Viterbi: {coded:5.1%}",
        "(hidden pair at 6.5 dB — the regime where residual subtraction",
        " noise leaves scattered errors that the code removes, §6a)",
    ]
    record_table("ablation_coding", "Ablation: coding over ZigZag", lines)
    assert coded >= uncoded
    assert coded > 0.7
