"""Ablation: the §4.2.4(b) cross-collision correction loop.

When a packet is subtracted from a capture it never decodes from, its
image rests on detection-time estimates; the correction loop measures
each chunk image against the raw residual and fixes amplitude/phase/
frequency drift ("compare the phases in chunk 1' and chunk 1''"). This
benchmark decodes the same collision pairs with the loop enabled and
disabled and compares residual interference and BER.

Ported to the Monte-Carlo runner: one trial decodes one collision pair
both ways; ``MonteCarloRunner.map`` fans the trials out and the table
averages per-trial metrics.
"""

import numpy as np

from repro.phy.constellation import BPSK
from repro.phy.frame import scramble_bits
from repro.receiver.frontend import StreamConfig
from repro.runner import MonteCarloRunner, hidden_pair_scenario
from repro.runner.cache import cached_preamble, cached_shaper
from repro.zigzag.engine import ZigZagEngine
from repro.zigzag.schedule import Placement, greedy_schedule

N_TRIALS = 6
SNR_DB = 10.0


def correction_trial(ctx):
    """Decode one pair with the correction loop on and off."""
    preamble = cached_preamble(32)
    shaper = cached_shaper()
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=1.0)
    captures, frames, specs, placements = hidden_pair_scenario(
        ctx.rng, preamble, shaper, snr_db=SNR_DB, payload_bits=300,
        phase_noise=2e-3)
    schedule = greedy_schedule(
        [Placement(p.packet, p.collision, p.start,
                   specs[p.packet].n_symbols, shaper.sps)
         for p in placements], margin_symbols=1.0)
    metrics = {}
    for measure, tag in ((True, "on"), (False, "off")):
        engine = ZigZagEngine(
            config, [c.samples for c in captures], specs, placements,
            measure_correction=measure)
        out = engine.run(schedule)
        bers = []
        for name, frame in frames.items():
            bits = scramble_bits(BPSK.demodulate(out[name].decisions[32:]))
            bers.append(float(np.mean(
                bits[:frame.body_bits.size] != frame.body_bits)))
        metrics[f"ber_{tag}"] = float(np.mean(bers))
        metrics[f"residual_{tag}"] = float(np.mean(
            [engine.residual_power(c) for c in range(2)]))
    return metrics


def run():
    trials = MonteCarloRunner().map(correction_trial, N_TRIALS, seed=4100)
    return {
        measure: {
            "ber": float(np.mean([t[f"ber_{tag}"] for t in trials])),
            "residual": float(np.mean(
                [t[f"residual_{tag}"] for t in trials])),
        }
        for measure, tag in ((True, "on"), (False, "off"))
    }


def test_ablation_correction_loop(benchmark, record_table):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    on, off = stats[True], stats[False]
    lines = [
        f"correction ON : BER {on['ber']:.5f}   residual power "
        f"{on['residual']:.2f}",
        f"correction OFF: BER {off['ber']:.5f}   residual power "
        f"{off['residual']:.2f}",
        "(phase-noise 2e-3 rad/sample random walk; the loop tracks the",
        " drift between the decoding capture and the subtraction capture)",
    ]
    record_table("ablation_correction",
                 "Ablation: cross-collision correction loop (§4.2.4b)",
                 lines)
    # The loop must not hurt, and should reduce residual interference
    # under phase drift.
    assert on["ber"] <= off["ber"] + 1e-3
    assert on["residual"] <= off["residual"] + 0.1
