"""Ablation: the §4.2.4(b) cross-collision correction loop.

When a packet is subtracted from a capture it never decodes from, its
image rests on detection-time estimates; the correction loop measures
each chunk image against the raw residual and fixes amplitude/phase/
frequency drift ("compare the phases in chunk 1' and chunk 1''"). This
benchmark decodes the same collision pairs with the loop enabled and
disabled and compares residual interference and BER.
"""

import sys

import numpy as np

sys.path.insert(0, "tests")

from repro.phy.constellation import BPSK
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.receiver.frontend import StreamConfig
from repro.utils.rng import make_rng
from repro.zigzag.engine import ZigZagEngine
from repro.zigzag.schedule import Placement, greedy_schedule

from helpers import hidden_pair_scenario

PREAMBLE = default_preamble(32)
SHAPER = PulseShaper()


def run(n_trials=6, snr_db=10.0):
    config = StreamConfig(preamble=PREAMBLE, shaper=SHAPER,
                          noise_power=1.0)
    stats = {True: {"ber": [], "residual": []},
             False: {"ber": [], "residual": []}}
    for seed in range(n_trials):
        rng = make_rng(4100 + seed)
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, PREAMBLE, SHAPER, snr_db=snr_db, payload_bits=300,
            phase_noise=2e-3)
        schedule = greedy_schedule(
            [Placement(p.packet, p.collision, p.start,
                       specs[p.packet].n_symbols, SHAPER.sps)
             for p in placements], margin_symbols=1.0)
        for measure in (True, False):
            engine = ZigZagEngine(
                config, [c.samples for c in captures], specs, placements,
                measure_correction=measure)
            out = engine.run(schedule)
            for name, frame in frames.items():
                bits = BPSK.demodulate(out[name].decisions[32:])
                from repro.phy.frame import scramble_bits
                bits = scramble_bits(bits)
                stats[measure]["ber"].append(float(np.mean(
                    bits[:frame.body_bits.size] != frame.body_bits)))
            stats[measure]["residual"].append(
                float(np.mean([engine.residual_power(c)
                               for c in range(2)])))
    return {k: {m: float(np.mean(v)) for m, v in d.items()}
            for k, d in stats.items()}


def test_ablation_correction_loop(benchmark, record_table):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    on, off = stats[True], stats[False]
    lines = [
        f"correction ON : BER {on['ber']:.5f}   residual power "
        f"{on['residual']:.2f}",
        f"correction OFF: BER {off['ber']:.5f}   residual power "
        f"{off['residual']:.2f}",
        "(phase-noise 2e-3 rad/sample random walk; the loop tracks the",
        " drift between the decoding capture and the subtraction capture)",
    ]
    record_table("ablation_correction",
                 "Ablation: cross-collision correction loop (§4.2.4b)",
                 lines)
    # The loop must not hurt, and should reduce residual interference
    # under phase drift.
    assert on["ber"] <= off["ber"] + 1e-3
    assert on["residual"] <= off["residual"] + 0.1
