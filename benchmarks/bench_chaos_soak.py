"""Chaos soak: every fault kind at once, zero lost trials, bit-identity.

Unlike the figure benchmarks this one measures the *supervision layer*
(``docs/resilience.md``): a Monte-Carlo run is soaked with seeded worker
kills, injected trial exceptions, hangs, and shared-memory corruption
(:mod:`repro.runner.chaos`), and must still deliver **every** trial with
metrics bit-identical to a fault-free run — proving that retries,
pool respawns, watchdog recovery, and corruption re-synthesis never
change what a surviving trial computes. The soak also audits
``/dev/shm`` afterwards: a crashed worker must never leak an arena.

Two soaks cover both execution modes:

- **loop path** — the fast scheduling scenario under the acceptance fault
  mix (5% kills, 2% exceptions, 1% hangs);
- **batched path** — shared-memory capture handoff under kills plus 10%
  slot corruption (checksummed, detected, re-synthesized inline).

Equivalent CLI::

    python -m repro run examples/scenarios/chaos_soak.toml --workers 4
"""

from dataclasses import replace

from repro.runner import (
    FailurePolicy,
    FaultSpec,
    MonteCarloRunner,
    ScenarioSpec,
    find_leaked_arenas,
)

SEED = 17
RETRY = FailurePolicy(mode="retry", max_retries=4, backoff_base=0.0,
                      batch_timeout=1.5)

# The acceptance fault mix: 5% kills / 2% exceptions / 1% hangs.
LOOP_FAULTS = FaultSpec(kill_worker_prob=0.05, raise_in_trial_prob=0.02,
                        hang_trial_prob=0.01, hang_seconds=10.0, seed=5)
SHM_FAULTS = FaultSpec(kill_worker_prob=0.05, corrupt_shm_slot_prob=0.10,
                       seed=5)

LOOP_SPEC = ScenarioSpec(kind="schedule_failure", n_trials=60, seed=SEED,
                         resilience=RETRY, faults=LOOP_FAULTS)
SHM_SPEC = ScenarioSpec(kind="hidden_pair_decode", n_trials=12, seed=SEED,
                        batch_size=4, params={"payload_bits": 64},
                        resilience=RETRY, faults=SHM_FAULTS)


def soak():
    clean_loop = MonteCarloRunner(n_workers=1).run(
        replace(LOOP_SPEC, faults=FaultSpec()))
    chaos_loop = MonteCarloRunner(n_workers=4, batch_size=4).run(LOOP_SPEC)
    clean_shm = MonteCarloRunner(n_workers=1).run(
        replace(SHM_SPEC, faults=FaultSpec(), batch_size=1))
    chaos_shm = MonteCarloRunner(n_workers=4).run(SHM_SPEC)
    return clean_loop, chaos_loop, clean_shm, chaos_shm


def test_chaos_soak(benchmark, record_table):
    clean_loop, chaos_loop, clean_shm, chaos_shm = benchmark.pedantic(
        soak, rounds=1, iterations=1)
    loop_stats = chaos_loop.supervision.as_dict()
    shm_stats = chaos_shm.supervision.as_dict()
    lines = [
        f"loop soak : {LOOP_SPEC.n_trials} trials, 4 workers, faults "
        f"kill={LOOP_FAULTS.kill_worker_prob:.0%} "
        f"raise={LOOP_FAULTS.raise_in_trial_prob:.0%} "
        f"hang={LOOP_FAULTS.hang_trial_prob:.0%}",
        f"            completed={chaos_loop.n_completed} "
        f"failed={chaos_loop.n_failed} "
        f"respawns={loop_stats['pool_respawns']} "
        f"retries={loop_stats['trial_retries']} "
        f"watchdog={loop_stats['watchdog_timeouts']} "
        f"({chaos_loop.elapsed:.1f}s wall)",
        f"shm soak  : {SHM_SPEC.n_trials} trials, 4 workers, faults "
        f"kill={SHM_FAULTS.kill_worker_prob:.0%} "
        f"corrupt={SHM_FAULTS.corrupt_shm_slot_prob:.0%}",
        f"            completed={chaos_shm.n_completed} "
        f"failed={chaos_shm.n_failed} "
        f"respawns={shm_stats['pool_respawns']} "
        f"corruptions recovered={shm_stats['transport_retries']} "
        f"({chaos_shm.elapsed:.1f}s wall)",
        "bit-identity: chaos == fault-free on every trial (both modes)",
        f"leaked arenas after soak: {len(find_leaked_arenas())}",
    ]
    record_table("chaos_soak", "Chaos-injection soak", lines)
    # Zero lost trials: every index completes despite the fault mix.
    assert chaos_loop.n_failed == 0
    assert chaos_loop.n_completed == LOOP_SPEC.n_trials
    assert chaos_shm.n_failed == 0
    assert chaos_shm.n_completed == SHM_SPEC.n_trials
    # Bit-identity: supervision never changes what a trial computes.
    assert [t.metrics for t in chaos_loop.trials] == \
        [t.metrics for t in clean_loop.trials]
    assert [t.metrics for t in chaos_shm.trials] == \
        [t.metrics for t in clean_shm.trials]
    assert chaos_shm.summary() == clean_shm.summary()
    # The chaos actually engaged (otherwise the soak proves nothing)...
    assert loop_stats["pool_respawns"] + loop_stats["trial_retries"] > 0
    # ...and a crashed/corrupted run leaks no shared memory.
    assert find_leaked_arenas() == []
