"""Geometry-derived city soak: a 10-AP / 110-client block, sharded.

The ``[deployment]`` pipeline end to end at scale: one generated city
block (APs on a jittered grid, clients associated by pathloss, hidden
pairs derived from inter-client SNR), every populated cell run as its
own closed-loop session under both AP designs, one cell per worker
process through the Monte-Carlo pool. Reported numbers are the block's
delivered totals and throughput per design, the derived sensing mix,
and the per-cell resident-sample peak — the bound that keeps a
city-scale soak in constant memory per worker. Equivalent CLI::

    python -m repro run examples/scenarios/city_scale.toml

A second, smaller block runs through the coupled
:class:`~repro.link.MultiCellSession` coordinator as a cross-check that
real inter-cell waveform exchange stays live at soak settings.
"""

import os
import time

import numpy as np

from repro.runner.builders import build_city_session, get_deployment
from repro.runner.runner import MonteCarloRunner
from repro.runner.shm import find_leaked_arenas
from repro.runner.spec import ScenarioSpec

N_APS = 10
N_CLIENTS = 110
AREA_M = 120.0
SEED = 11


def city_spec(n_trials: int) -> ScenarioSpec:
    return ScenarioSpec.from_dict({
        "scenario": {"kind": "city_scale", "n_trials": n_trials,
                     "n_packets": 2, "payload_bits": 96, "seed": SEED},
        "deployment": {"n_aps": N_APS, "n_clients": N_CLIENTS,
                       "area_m": AREA_M, "seed": SEED,
                       "offered_load": 0.25, "saturated_fraction": 0.2},
    })


def test_city_soak(benchmark, record_table):
    deployment = get_deployment(city_spec(1))
    cells = deployment.cells()
    mix = deployment.sensing_mix()
    hidden_pairs = sum(len(plan.hidden_pairs) for plan in cells)
    associated = sum(plan.n_clients for plan in cells)
    # One trial per populated cell, one cell per worker process.
    runner = MonteCarloRunner(
        n_workers=min(len(cells), os.cpu_count() or 1))
    result = benchmark.pedantic(
        lambda: runner.run(city_spec(len(cells))),
        rounds=1, iterations=1)
    assert not result.failures
    trials = sorted(result.trials, key=lambda t: t.index)
    delivered = {tag: sum(t.metrics[f"delivered_{tag}"] for t in trials)
                 for tag in ("zigzag", "80211")}
    throughput = {tag: sum(t.metrics[f"throughput_{tag}"] for t in trials)
                  for tag in ("zigzag", "80211")}
    peak = max(t.metrics["max_resident_samples"] for t in trials)
    emitted = [t.extra["counters"]["zigzag"]["samples_emitted"]
               for t in trials]
    lines = [
        f"block     : {N_APS} APs, {N_CLIENTS} clients over "
        f"{AREA_M:.0f} m x {AREA_M:.0f} m (seed {SEED})",
        f"derived   : {len(cells)} populated cells, "
        f"{associated} associated clients, "
        f"{hidden_pairs} hidden pairs "
        f"(mix: {', '.join(f'{c.value} {f:.0%}' for c, f in mix.items())})",
        f"zigzag AP : delivered={int(delivered['zigzag']):4d}  "
        f"block throughput={throughput['zigzag']:.3f}",
        f"802.11 AP : delivered={int(delivered['80211']):4d}  "
        f"block throughput={throughput['80211']:.3f}",
        f"sharding  : {len(cells)} trials over {runner.n_workers} workers "
        "(one cell per worker)",
        f"memory    : max resident {int(peak)} samples in any cell vs "
        f"{int(sum(emitted))} emitted block-wide",
        f"wall      : {result.elapsed:.1f}s",
    ]
    record_table("city_soak", "Geometry-derived city block soak", lines)
    # The derivation must produce a real multi-cell hidden-terminal
    # block, and both designs must actually move packets through it.
    assert len(cells) >= 10 and associated >= 0.5 * N_CLIENTS
    assert hidden_pairs > 0
    assert delivered["zigzag"] > 0 and delivered["80211"] > 0
    # Bounded memory: the largest resident-air peak in any cell is a
    # handful of packets, far below the block's emitted stream —
    # sessions never materialize the air they soak through.
    assert peak < 0.25 * sum(emitted)


def test_city_multicell_coupled(benchmark, record_table):
    """A smaller coupled block through both multi-cell coordinators.

    Runs the identical block twice — sequential stepping, then the
    process-parallel mode with one pinned cell worker per cell — and
    records both wall clocks plus the bit-identity check between their
    reports. The attainable parallel speedup is bounded by usable
    cores; on a single-core host the barrier overhead dominates.
    """

    def build(workers):
        spec = ScenarioSpec.from_dict({
            "scenario": {"kind": "city_multicell", "n_packets": 2,
                         "payload_bits": 96, "design": "zigzag",
                         "seed": SEED},
            "deployment": {"n_aps": 4, "n_clients": 24, "area_m": 80.0,
                           "seed": SEED, "coupled_workers": workers},
        })
        return build_city_session(spec, np.random.default_rng(SEED),
                                  "zigzag")

    def strip(rep):
        return (dict(rep.counters), rep.total_delivered,
                {ap: (r.flows, dict(r.counters), r.samples_elapsed,
                      r.timed_out) for ap, r in rep.cells.items()})

    report = benchmark.pedantic(build(1).run, rounds=1, iterations=1)
    t0 = time.perf_counter()
    parallel = build(0).run()          # 0 = one worker per cell
    parallel_s = time.perf_counter() - t0
    identical = strip(parallel) == strip(report)
    lines = [
        f"block     : 4 APs, 24 clients over 80 m x 80 m, "
        f"{len(report.cells)} populated cells",
        f"delivered : {report.total_delivered} packets, "
        f"block throughput={report.throughput():.3f}, "
        f"{report.timed_out_cells} timed-out cells",
        f"exchange  : {int(report.counters['windows'])} horizon windows, "
        f"{int(report.counters['injections'])} injections "
        f"({int(report.counters['samples_injected'])} samples live, "
        f"{int(report.counters['samples_clipped'])} clipped)",
        f"memory    : {int(report.max_resident_samples)} resident "
        "samples summed over cells",
        f"parallel  : {parallel.workers} cell workers in {parallel_s:.1f}s "
        f"vs {report.elapsed_s:.1f}s sequential "
        f"({report.elapsed_s / max(parallel_s, 1e-9):.2f}x on "
        f"{os.cpu_count()} cpus), reports "
        f"{'identical' if identical else 'DIVERGED'}, "
        f"degraded={parallel.degraded}",
    ]
    record_table("city_soak_coupled",
                 "Coupled multi-cell block (waveform exchange)", lines)
    assert report.total_delivered > 0
    assert report.timed_out_cells == 0
    assert report.counters["windows"] > 0
    assert identical
    assert find_leaked_arenas() == []
