"""Fig 1-3: why joint decoding can't handle full-rate collisions.

Regenerates the capacity-region argument: at every SNR, the rate pair
(R, R) with R the best single-user rate lies *outside* the two-user MAC
region, while ZigZag's effective rate pair (R/2, R/2) per collision slot
lies inside.

Ported to the Monte-Carlo runner: the (deterministic) SNR grid is run
through ``map`` with one value per grid point.
"""

import numpy as np

from repro.analysis.capacity import CapacityRegion, rate_pair_for_equal_rates
from repro.runner import MonteCarloRunner


def capacity_point(ctx, snr_db):
    """One SNR grid point of the capacity-region argument."""
    snr = 10.0 ** (snr_db / 10.0)
    region = CapacityRegion(snr, snr)
    rate, full_inside = rate_pair_for_equal_rates(snr)
    half_inside = region.contains(rate / 2, rate / 2)
    return (snr_db, rate, region.sum_capacity, full_inside, half_inside)


def sweep(snrs_db):
    return MonteCarloRunner().map(capacity_point,
                                  values=[float(s) for s in snrs_db])


def test_fig1_3_capacity_region(benchmark, record_table):
    snrs = np.arange(0, 31, 5)
    rows = benchmark(sweep, snrs)
    lines = [f"{'SNR dB':>7} {'R':>7} {'sum-cap':>8} "
             f"{'(R,R) in?':>10} {'(R/2,R/2) in?':>14}"]
    for snr_db, rate, cap, full, half in rows:
        lines.append(f"{snr_db:7.1f} {rate:7.3f} {cap:8.3f} "
                     f"{str(full):>10} {str(half):>14}")
    record_table("fig1_3", "Fig 1-3: two-user capacity region", lines)
    # Paper shape: full-rate pair always undecodable, half-rate always OK.
    assert all(not full for *_, full, _half in rows)
    assert all(half for *_, half in rows)
