"""Fig 4-2: detecting collisions by correlation with the known preamble.

Reproduces the figure's experiment: a collision of two packets; the
compensated preamble correlation is swept across the received signal and
must spike exactly at the second packet's start — and nowhere comparable
elsewhere.

Ported to the Monte-Carlo runner: the trace is one ``map`` trial with
runner-derived seeding and the cached preamble/shaper/synchronizer
reference signals.
"""

import numpy as np

from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.runner import MonteCarloRunner
from repro.runner.cache import cached_preamble, cached_shaper, cached_synchronizer
from repro.utils.bits import random_bits


def correlation_trace(ctx, offset=300, snr_db=12.0):
    """Build one two-packet collision and sweep the correlation over it."""
    rng = ctx.rng
    preamble = cached_preamble(32)
    shaper = cached_shaper()
    amp = np.sqrt(10 ** (snr_db / 10))
    frames = [Frame.make(random_bits(400, rng), src=i + 1,
                         preamble=preamble) for i in range(2)]
    freqs = [2e-3, -3e-3]
    txs = [Transmission.from_symbols(
        frames[i].symbols, shaper,
        ChannelParams(gain=amp * np.exp(1j * rng.uniform(0, 6.28)),
                      freq_offset=freqs[i],
                      sampling_offset=rng.uniform(0, 1)),
        (0, offset)[i], "ab"[i]) for i in range(2)]
    capture = synthesize(txs, 1.0, rng, leading=8, tail=30)
    sync = cached_synchronizer(32, threshold=0.6)
    scores = sync.correlation_scores(capture.samples, coarse_freq=freqs[1])
    alice_start = capture.transmissions[0].symbol0 - shaper.delay
    bob_start = capture.transmissions[1].symbol0 - shaper.delay
    return scores, alice_start, bob_start


def run():
    return MonteCarloRunner().map(correlation_trace, 1, seed=3)[0]


def test_fig4_2_correlation_spike(benchmark, record_table):
    scores, alice_start, bob_start = benchmark(run)
    # The figure's claim is about the spike in the *middle* of the
    # reception: exclude Alice's own (partially-compensated) preamble.
    mask = np.ones(scores.size, bool)
    mask[max(0, alice_start - 16):alice_start + 17] = False
    peak = int(np.flatnonzero(mask)[np.argmax(scores[mask])])
    floor_mask = mask.copy()
    floor_mask[max(0, peak - 16):peak + 17] = False
    floor = scores[floor_mask].max()
    lines = [
        f"mid-reception spike position : {peak} (true {bob_start})",
        f"spike score                  : {scores[peak]:.3f}",
        f"max sidelobe elsewhere       : {floor:.3f}",
        f"spike/floor ratio            : {scores[peak] / floor:.2f}x",
    ]
    record_table("fig4_2", "Fig 4-2: preamble correlation vs position",
                 lines)
    assert abs(peak - bob_start) <= 1
    assert scores[peak] > 1.15 * floor
