"""Fig 4-4 / §4.3(a): decoding errors die exponentially fast.

Monte-Carlo of the paper's worst-case model: a wrongly-decoded BPSK symbol
makes the AP *add* the interferer's vector instead of cancelling it; the
next symbol flips only if the two independent uniform-phase vectors land
within the fatal 60-degree arc (probability 1/6). We measure the empirical
per-hop propagation probability and the error-burst length distribution.

Ported to the Monte-Carlo runner: the 200k-sample simulation is split
into 4 independent 50k-sample trials fanned out by ``map`` and pooled.
"""

import numpy as np

from repro.analysis.theory import error_propagation_probability
from repro.runner import MonteCarloRunner

N_TRIALS = 4
SAMPLES_PER_TRIAL = 50_000


def decay_trial(ctx):
    """One 50k-sample slice of the worst-case propagation model."""
    rng = ctx.rng
    # Worst case: equal amplitudes. Error propagates when the angle
    # between y_B and y_A falls inside the 60-degree arc around opposition
    # (paper Fig 4-4 geometry): |B + 2A| projected wrong.
    angle_a = rng.uniform(0, 2 * np.pi, SAMPLES_PER_TRIAL)
    b = rng.choice([-1.0, 1.0], SAMPLES_PER_TRIAL)
    estimate = b + 2.0 * np.cos(angle_a)  # real part decides BPSK
    propagated = np.sign(estimate) != np.sign(b)
    p_hop = float(np.mean(propagated))
    # Burst lengths under geometric decay with the measured p.
    lengths = rng.geometric(1.0 - p_hop, size=12_500)
    return {"p_hop": p_hop, "lengths": lengths}


def simulate_error_bursts():
    trials = MonteCarloRunner().map(decay_trial, N_TRIALS, seed=0)
    p_hop = float(np.mean([t["p_hop"] for t in trials]))
    lengths = np.concatenate([t["lengths"] for t in trials])
    return p_hop, lengths


def test_fig4_4_error_decay(benchmark, record_table):
    p_hop, lengths = benchmark(simulate_error_bursts)
    theory = error_propagation_probability()
    lines = [
        f"per-hop propagation probability : {p_hop:.4f}",
        f"  (paper states 1/6 = {theory:.4f} for a one-sided 60-degree "
        "arc; the literal worst-case geometry — equal amplitudes, flip "
        "when 2cos(theta) < -1 — gives 120/360 = 1/3. Either constant "
        "yields geometric decay, which is the figure's claim.)",
        f"mean error-burst length          : {lengths.mean():.3f} symbols",
        f"bursts longer than 5 symbols     : "
        f"{float(np.mean(lengths > 5)):.5f}",
        f"bursts longer than 10 symbols    : "
        f"{float(np.mean(lengths > 10)):.6f}",
    ]
    record_table("fig4_4", "Fig 4-4: error propagation decays "
                 "exponentially", lines)
    # Shape: per-hop probability well below 1/2 -> exponential decay;
    # bursts are short and long bursts vanish geometrically.
    assert 0.25 < p_hop < 0.40   # the exact worst-case constant is 1/3
    assert lengths.mean() < 2.0
    assert float(np.mean(lengths > 10)) < 5e-4
