"""Fig 4-7: greedy-decoding failure probability vs number of senders.

Monte-Carlo over 802.11 backoff draws, exactly as §4.5: n mutually-hidden
senders collide; each round every sender re-jitters; after n collisions of
the same n packets the greedy chunk scheduler either finds a complete
decode order or fails. Panel (a) fixed congestion windows cw ∈ {8,16,32};
panel (b) exponential backoff (CWmin 31, CWmax 1023).

Ported to the Monte-Carlo runner: each cell is 150 trials of the
``schedule_failure`` scenario; the failure probability is the run-level
mean of the per-trial ``failed`` metric.
"""

from repro.runner import MonteCarloRunner, ScenarioSpec
from repro.runner.spec import BackoffSpec

N_TRIALS = 150


def _probability(runner, backoff, n_senders, seed):
    spec = ScenarioSpec(kind="schedule_failure", backoff=backoff,
                        n_trials=N_TRIALS, seed=seed,
                        params={"n_senders": n_senders, "n_symbols": 600})
    return runner.run(spec).mean("failed")


def sweep():
    runner = MonteCarloRunner()
    table = {}
    for cw in (8, 16, 32):
        backoff = BackoffSpec(kind="fixed", cw=cw)
        table[f"cw={cw}"] = {
            n: _probability(runner, backoff, n, seed=n) for n in range(2, 8)
        }
    expo = BackoffSpec(kind="exponential", cw_min=31, cw_max=1023)
    table["expo"] = {n: _probability(runner, expo, n, seed=n)
                     for n in range(2, 8)}
    return table


def test_fig4_7_failure_probability(benchmark, record_table):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'config':>8} | " + " ".join(f"n={n:<2}" for n in range(2, 8))]
    for config, row in table.items():
        lines.append(f"{config:>8} | " + " ".join(
            f"{row[n]:.3f}" for n in range(2, 8)))
    record_table("fig4_7", "Fig 4-7: greedy failure probability vs "
                 "#senders", lines)
    # Paper shapes: (1) failure probability falls as cw grows,
    # (2) exponential backoff performs best (Fig 4-7b sits orders below
    #     the fixed-cw panel), (3) failure stays bounded for larger n.
    for n in range(2, 8):
        assert table["cw=8"][n] >= table["cw=32"][n] - 0.02
        assert table["expo"][n] <= table["cw=16"][n] + 0.02
    assert max(table["cw=32"].values()) < 0.35
    assert max(table["expo"].values()) < 0.10
