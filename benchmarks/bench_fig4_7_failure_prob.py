"""Fig 4-7: greedy-decoding failure probability vs number of senders.

Monte-Carlo over 802.11 backoff draws, exactly as §4.5: n mutually-hidden
senders collide; each round every sender re-jitters; after n collisions of
the same n packets the greedy chunk scheduler either finds a complete
decode order or fails. Panel (a) fixed congestion windows cw ∈ {8,16,32};
panel (b) exponential backoff (CWmin 31, CWmax 1023).
"""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.mac.backoff import ExponentialBackoff, FixedWindowBackoff
from repro.mac.hidden import HiddenScenario
from repro.zigzag.schedule import Placement, greedy_schedule


def failure_probability(n_senders, picker, n_trials=150, seed=0,
                        n_symbols=600, slot_samples=20):
    rng = np.random.default_rng(seed + n_senders)
    scenario = HiddenScenario(n_senders=n_senders,
                              slot_samples=slot_samples, picker=picker)
    failures = 0
    names = [f"s{i}" for i in range(n_senders)]
    for _ in range(n_trials):
        rounds = scenario.collision_offsets(rng, n_senders)
        placements = [
            # Each transmission lands with an independent fractional
            # sampling phase, as on real hardware — exact sample ties
            # between packets do not occur.
            Placement(name, c, float(off) + rng.uniform(0, 1),
                      n_symbols, 2)
            for c, offsets in enumerate(rounds)
            for name, off in zip(names, offsets)
        ]
        try:
            # The 1-symbol margin matches the physical engine: packets
            # separated by less than a symbol (same backoff slot, only
            # fractional timing apart) are genuinely undecodable.
            greedy_schedule(placements, margin_symbols=1.0)
        except ScheduleError:
            failures += 1
    return failures / n_trials


def sweep():
    table = {}
    for cw in (8, 16, 32):
        picker = FixedWindowBackoff(cw)
        table[f"cw={cw}"] = {
            n: failure_probability(n, picker) for n in range(2, 8)
        }
    expo = ExponentialBackoff(cw_min=31, cw_max=1023)
    table["expo"] = {n: failure_probability(n, expo)
                     for n in range(2, 8)}
    return table


def test_fig4_7_failure_probability(benchmark, record_table):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'config':>8} | " + " ".join(f"n={n:<2}" for n in range(2, 8))]
    for config, row in table.items():
        lines.append(f"{config:>8} | " + " ".join(
            f"{row[n]:.3f}" for n in range(2, 8)))
    record_table("fig4_7", "Fig 4-7: greedy failure probability vs "
                 "#senders", lines)
    # Paper shapes: (1) failure probability falls as cw grows,
    # (2) exponential backoff performs best (Fig 4-7b sits orders below
    #     the fixed-cw panel), (3) failure stays bounded for larger n.
    for n in range(2, 8):
        assert table["cw=8"][n] >= table["cw=32"][n] - 0.02
        assert table["expo"][n] <= table["cw=16"][n] + 0.02
    assert max(table["cw=32"].values()) < 0.35
    assert max(table["expo"].values()) < 0.10
