"""Fig 5-2: (a) bit errors accumulate along the packet without frequency
tracking; (b) ISI makes a received bit depend on its neighbours.

Ported to the Monte-Carlo runner: both panels run as ``map`` trials with
runner-derived seeding and cached preamble/shaper reference signals.
"""

import numpy as np

from repro.phy.channel import Channel, ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.isi import default_isi_taps
from repro.phy.medium import Transmission, synthesize
from repro.phy.pulse import MatchedSampler
from repro.receiver.decoder import StandardDecoder
from repro.runner import MonteCarloRunner
from repro.runner.cache import cached_preamble, cached_shaper
from repro.utils.bits import random_bits


def error_profile_without_tracking(ctx, payload_bits=2400):
    """(a): decode a long packet with tracking disabled and a residual
    frequency error; return per-quarter error rates."""
    rng = ctx.rng
    preamble = cached_preamble(32)
    shaper = cached_shaper()
    frame = Frame.make(random_bits(payload_bits, rng), src=1,
                       preamble=preamble)
    freq = 2e-3
    params = ChannelParams(gain=6.0, freq_offset=freq)
    tx = Transmission.from_symbols(frame.symbols, shaper, params, 0, "a")
    cap = synthesize([tx], 1.0, rng, leading=8, tail=30)
    decoder = StandardDecoder(preamble, shaper, noise_power=1.0,
                              coarse_freq=freq + 8e-5, track_phase=False)
    result = decoder.decode(cap.samples)
    bits = result.bits if result.bits.size else np.zeros(0, np.uint8)
    n = min(bits.size, frame.body_bits.size)
    errors = (bits[:n] != frame.body_bits[:n]).astype(float)
    quarters = [errors[i * n // 4:(i + 1) * n // 4].mean()
                for i in range(4)]
    return quarters


def isi_prone_symbols(ctx, n_symbols=4000):
    """(b): mean received value of a '1' symbol conditioned on the
    previous symbol, through an ISI channel."""
    rng = ctx.rng
    shaper = cached_shaper()
    bits = random_bits(n_symbols, rng)
    symbols = BPSK.modulate(bits)
    params = ChannelParams(gain=1.0,
                           isi_taps=tuple(default_isi_taps(0.5)))
    wave = Channel(params, rng).apply(shaper.shape(symbols))
    received = MatchedSampler(shaper).sample(wave, shaper.delay,
                                             n_symbols).real
    prev = np.roll(bits, 1)[1:]
    current = bits[1:]
    r = received[1:]
    one_after_one = r[(current == 1) & (prev == 1)].mean()
    one_after_zero = r[(current == 1) & (prev == 0)].mean()
    zero_after_one = r[(current == 0) & (prev == 1)].mean()
    zero_after_zero = r[(current == 0) & (prev == 0)].mean()
    return one_after_one, one_after_zero, zero_after_one, zero_after_zero


def run_both():
    runner = MonteCarloRunner()
    quarters = runner.map(error_profile_without_tracking, 1, seed=4)[0]
    isi = runner.map(isi_prone_symbols, 1, seed=5)[0]
    return quarters, isi


def test_fig5_2_effects(benchmark, record_table):
    quarters, isi = benchmark.pedantic(run_both, rounds=1, iterations=1)
    oo, oz, zo, zz = isi
    lines = [
        "(a) error rate by packet quarter, tracking disabled:",
        "    " + "  ".join(f"Q{i + 1}={q:.3f}"
                           for i, q in enumerate(quarters)),
        "(b) mean received '1' after '1': "
        f"{oo:+.3f}   after '0': {oz:+.3f}",
        "    mean received '0' after '1': "
        f"{zo:+.3f}   after '0': {zz:+.3f}",
    ]
    record_table("fig5_2", "Fig 5-2: residual-frequency and ISI effects",
                 lines)
    # (a) errors grow along the packet (phase accumulates, Fig 5-2a).
    assert quarters[-1] > quarters[0] + 0.05
    # (b) a '1' preceded by '1' sits higher than preceded by '0'
    # (Fig 5-2b), and symmetrically for '0'.
    assert oo > oz
    assert zz < zo
