"""Fig 5-3: BER vs SNR — ZigZag against the Collision-Free Scheduler.

The paper's headline micro-result: ZigZag decoding keeps the BER close to
sending the packets in separate time slots, and the forward+backward
combination *beats* interference-free transmission (average 1.4x lower in
the paper) because every symbol is received twice.

Ported to the Monte-Carlo runner: each point is the ``zigzag_ber``
scenario swept over ``params.snr_db`` (six trials per point, deterministic
SeedSequence seeding). Equivalent CLI::

    python -m repro sweep examples/scenarios/pair_collision.toml \
        --param params.snr_db=6:12:2
"""

from repro.runner import MonteCarloRunner, ScenarioSpec

import numpy as np

SNRS = (6, 8, 10, 12)

SPEC = ScenarioSpec(kind="zigzag_ber", n_trials=6, seed=3000,
                    payload_bits=400)


def sweep():
    result = MonteCarloRunner().sweep(SPEC, "params.snr_db",
                                      [float(s) for s in SNRS])
    return {snr: (result.result_at(float(snr)).mean("ber_fwd"),
                  result.result_at(float(snr)).mean("ber_both"),
                  result.result_at(float(snr)).mean("ber_free"))
            for snr in SNRS}


def test_fig5_3_ber_vs_snr(benchmark, record_table):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'SNR':>4} | {'zigzag fwd':>11} | {'zigzag f+b':>11} |"
             f" {'collision-free':>14}"]
    for snr, (fwd, both, free) in table.items():
        lines.append(f"{snr:4d} | {fwd:11.5f} | {both:11.5f} |"
                     f" {free:14.5f}")
    record_table("fig5_3", "Fig 5-3: BER vs SNR", lines)
    # Paper shapes: (1) fwd+bwd <= fwd-only on average;
    # (2) ZigZag tracks the collision-free curve (within a small factor,
    #     both converging to ~0 at high SNR).
    mean_fwd = np.mean([v[0] for v in table.values()])
    mean_both = np.mean([v[1] for v in table.values()])
    assert mean_both <= mean_fwd + 1e-4
    assert table[12][1] < 1e-3
    assert table[10][1] < 5e-3
