"""Fig 5-3: BER vs SNR — ZigZag against the Collision-Free Scheduler.

The paper's headline micro-result: ZigZag decoding keeps the BER close to
sending the packets in separate time slots, and the forward+backward
combination *beats* interference-free transmission (average 1.4x lower in
the paper) because every symbol is received twice.
"""

import sys

import numpy as np

sys.path.insert(0, "tests")

from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.receiver.decoder import StandardDecoder
from repro.receiver.frontend import StreamConfig
from repro.utils.bits import random_bits
from repro.utils.rng import make_rng
from repro.zigzag.decoder import ZigZagPairDecoder

from helpers import hidden_pair_scenario

PREAMBLE = default_preamble(32)
SHAPER = PulseShaper()


def ber_point(snr_db, n_trials=6, payload=400):
    config = StreamConfig(preamble=PREAMBLE, shaper=SHAPER,
                          noise_power=1.0)
    fwd, both, free = [], [], []
    for seed in range(n_trials):
        rng = make_rng(3000 + seed)
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, PREAMBLE, SHAPER, snr_db=snr_db, payload_bits=payload)
        for use_backward, bucket in ((False, fwd), (True, both)):
            outcome = ZigZagPairDecoder(
                config, use_backward=use_backward).decode(
                [c.samples for c in captures], specs, placements)
            bucket += [outcome.results[n].ber_against(
                frames[n].body_bits) for n in frames]
        # Collision-Free Scheduler: same frames, separate time slots.
        # BER is measured over the full recovered bit stream with known
        # framing (the paper's BER metric), not packet accept/reject.
        from repro.phy.sync import Synchronizer
        from repro.receiver.frontend import SymbolStreamDecoder
        from repro.zigzag.decoder import extract_bits
        from repro.zigzag.engine import PacketSpec
        from repro.utils.bits import bit_error_rate

        sync = Synchronizer(PREAMBLE, SHAPER)
        for name, frame in frames.items():
            params = ChannelParams(
                gain=np.sqrt(10 ** (snr_db / 10))
                * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                freq_offset=float(rng.uniform(-4e-3, 4e-3)),
                sampling_offset=float(rng.uniform(0, 1)),
                phase_noise_std=1e-3)
            cap = synthesize([Transmission.from_symbols(
                frame.symbols, SHAPER, params, 0, "x")], 1.0, rng,
                leading=8, tail=30)
            t = cap.transmissions[0]
            est = sync.acquire(
                cap.samples, t.symbol0,
                coarse_freq=params.freq_offset + rng.normal(0, 1.5e-5),
                noise_power=1.0)
            stream = SymbolStreamDecoder(
                config, est, t.symbol0 + est.sampling_offset)
            chunk = stream.decode_chunk(cap.samples, frame.n_symbols)
            bits, _, _ = extract_bits(
                chunk.soft, PacketSpec(name, frame.n_symbols),
                len(PREAMBLE))
            free.append(bit_error_rate(
                frame.body_bits, bits[:frame.body_bits.size]))
    return np.mean(fwd), np.mean(both), np.mean(free)


def sweep():
    return {snr: ber_point(snr) for snr in (6, 8, 10, 12)}


def test_fig5_3_ber_vs_snr(benchmark, record_table):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'SNR':>4} | {'zigzag fwd':>11} | {'zigzag f+b':>11} |"
             f" {'collision-free':>14}"]
    for snr, (fwd, both, free) in table.items():
        lines.append(f"{snr:4d} | {fwd:11.5f} | {both:11.5f} |"
                     f" {free:14.5f}")
    record_table("fig5_3", "Fig 5-3: BER vs SNR", lines)
    # Paper shapes: (1) fwd+bwd <= fwd-only on average;
    # (2) ZigZag tracks the collision-free curve (within a small factor,
    #     both converging to ~0 at high SNR).
    mean_fwd = np.mean([v[0] for v in table.values()])
    mean_both = np.mean([v[1] for v in table.values()])
    assert mean_both <= mean_fwd + 1e-4
    assert table[12][1] < 1e-3
    assert table[10][1] < 5e-3
