"""Fig 5-4: normalized throughput in scenarios with capture effects.

Hidden pair; Alice's SNR rises above Bob's (SINR = SNR_A - SNR_B sweeps
0..16 dB). Paper shapes: 802.11 starves Bob and captures Alice at high
SINR; the Collision-Free Scheduler stays flat at 0.5/0.5; ZigZag matches
the scheduler at SINR 0, exceeds total 1.0 in the SIC window (decoding
both packets from a *single* collision), and degrades Bob only at extreme
SINR where subtraction residuals swamp him.

Ported to the Monte-Carlo runner: one ``capture`` scenario per design,
swept over ``params.sinr_db``. Equivalent CLI::

    python -m repro sweep examples/scenarios/capture_asymmetry.toml \
        --param params.sinr_db=0:16:4
"""

from repro.runner import MonteCarloRunner, ScenarioSpec
from repro.testbed.experiment import Design

SINRS = (0, 4, 8, 12, 16)

SPEC = ScenarioSpec(kind="capture", n_trials=3, seed=0,
                    payload_bits=240, n_packets=6, max_rounds=4,
                    params={"snr_b_db": 9.0})


def sweep():
    runner = MonteCarloRunner()
    table = {}
    for design in Design:
        spec = SPEC.with_override("design", design.value)
        points = runner.sweep(spec, "params.sinr_db",
                              [float(s) for s in SINRS])
        table[design.value] = {
            sinr: {key: points.result_at(float(sinr)).mean(key)
                   for key in ("A", "B", "total")}
            for sinr in SINRS
        }
    return table


def test_fig5_4_capture_throughput(benchmark, record_table):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'SINR':>5} | " + " | ".join(
        f"{d:>20}" for d in table)]
    lines.append(" " * 5 + " | " + " | ".join(
        f"{'A':>6} {'B':>6} {'tot':>6}" for _ in table))
    for sinr in SINRS:
        cells = []
        for design in table:
            row = table[design][sinr]
            cells.append(f"{row['A']:6.2f} {row['B']:6.2f} "
                         f"{row['total']:6.2f}")
        lines.append(f"{sinr:5d} | " + " | ".join(cells))
    record_table("fig5_4", "Fig 5-4: throughput vs SINR under capture",
                 lines)

    zigzag = table[Design.ZIGZAG.value]
    e80211 = table[Design.CURRENT_80211.value]
    sched = table[Design.SCHEDULER.value]
    # 802.11 starves Bob under capture (Fig 5-4b).
    assert all(e80211[s]["B"] <= 0.1 for s in SINRS if s >= 8)
    # Scheduler is flat and fair.
    assert all(abs(sched[s]["total"] - 1.0) < 0.15 for s in SINRS)
    # ZigZag beats or matches both baselines in total throughput at every
    # point (Fig 5-4c), and exceeds 1.0 somewhere in the SIC window.
    for s in SINRS:
        assert zigzag[s]["total"] >= e80211[s]["total"] - 0.1
        assert zigzag[s]["total"] >= 0.75
    assert max(zigzag[s]["total"] for s in SINRS) > 1.0
    # ZigZag keeps serving Bob at moderate SINR (fairness, Fig 5-4b).
    assert all(zigzag[s]["B"] > 0.2 for s in SINRS if s <= 12)
