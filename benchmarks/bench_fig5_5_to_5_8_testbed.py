"""Figs 5-5 .. 5-8: whole-testbed throughput / loss comparison.

One campaign powers all four figures, as in the paper's §5.6: random
sender pairs (with a reachable AP) are drawn from the 14-node testbed —
most sense each other perfectly, some partially, some not at all — and
each pair runs under Current 802.11 and ZigZag:

- Fig 5-5: CDF of aggregate pair throughput (paper: +31% average);
- Fig 5-6: CDF of per-flow loss rate (paper: 18.9% -> 0.2%);
- Fig 5-7: per-flow throughput scatter (ZigZag helps, never hurts);
- Fig 5-8: loss CDF over hidden/partial pairs only (82.3% -> 0.7%).

Ported to the Monte-Carlo runner: the campaign is N_PAIRS trials of the
``testbed_pair`` scenario (each trial samples one pair and runs both
designs); per-flow detail rides in each trial's ``extra`` payload.
"""

import numpy as np
import pytest

from repro.runner import MonteCarloRunner, ScenarioSpec
from repro.testbed.topology import SensingClass
from repro.utils.stats import empirical_cdf

N_PAIRS = 12

SPEC = ScenarioSpec(kind="testbed_pair", n_trials=N_PAIRS, seed=13,
                    payload_bits=240, n_packets=6, max_rounds=4,
                    params={"testbed_seed": 7})


def run_campaign():
    result = MonteCarloRunner().run(SPEC)
    records = []
    for trial in result.trials:
        entry = {"pair": trial.extra["pair"], "class": trial.extra["class"]}
        entry["802.11"] = {
            "throughput": trial.metrics["throughput_80211"],
            **trial.extra["80211"],
        }
        entry["zigzag"] = {
            "throughput": trial.metrics["throughput_zigzag"],
            **trial.extra["zigzag"],
        }
        records.append(entry)
    return records


@pytest.fixture(scope="module")
def campaign():
    return run_campaign()


def test_fig5_5_throughput_cdf(benchmark, record_table, campaign):
    records = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    agg = {d: [r[d]["throughput"] for r in records]
           for d in ("802.11", "zigzag")}
    lines = []
    for design, values in agg.items():
        xs, fs = empirical_cdf(values)
        lines.append(f"{design:>8} mean={np.mean(values):.3f}  CDF: "
                     + " ".join(f"({x:.2f},{f:.2f})"
                                for x, f in zip(xs, fs)))
    gain = np.mean(agg["zigzag"]) / max(np.mean(agg["802.11"]), 1e-9)
    lines.append(f"average throughput gain: {gain:.2f}x"
                 "  (paper: 1.31x)")
    record_table("fig5_5", "Fig 5-5: testbed aggregate throughput CDF",
                 lines)
    assert np.mean(agg["zigzag"]) > np.mean(agg["802.11"])


def test_fig5_6_loss_cdf(benchmark, record_table, campaign):
    records = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    losses = {d: [loss for r in records for loss in r[d]["loss"]]
              for d in ("802.11", "zigzag")}
    lines = []
    for design, values in losses.items():
        lines.append(f"{design:>8} mean loss={np.mean(values):.3f}  "
                     f"median={np.median(values):.3f}")
    lines.append("(paper: 18.9% -> 0.2%)")
    record_table("fig5_6", "Fig 5-6: testbed loss-rate CDF", lines)
    assert np.mean(losses["zigzag"]) < np.mean(losses["802.11"])
    assert np.mean(losses["zigzag"]) < 0.15


def test_fig5_7_scatter_never_hurts(benchmark, record_table, campaign):
    records = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    points = []
    for r in records:
        for flow in ("A", "B"):
            points.append((r["802.11"]["flow_throughputs"][flow],
                           r["zigzag"]["flow_throughputs"][flow]))
    lines = [f"  802.11={x:.2f}  zigzag={y:.2f}" for x, y in points]
    hurt = sum(1 for x, y in points if y < x - 0.15)
    lines.append(f"flows hurt by ZigZag (>0.15 drop): {hurt}/{len(points)}")
    record_table("fig5_7", "Fig 5-7: per-flow throughput scatter", lines)
    # Paper: ZigZag helps hidden terminals and never hurts (beyond noise).
    assert hurt <= max(1, len(points) // 10)


def test_fig5_8_hidden_terminal_loss(benchmark, record_table, campaign):
    records = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    hidden = [r for r in records
              if r["class"] != SensingClass.PERFECT.value]
    if not hidden:
        pytest.skip("campaign sampled no hidden/partial pairs")
    losses = {d: [loss for r in hidden for loss in r[d]["loss"]]
              for d in ("802.11", "zigzag")}
    lines = [
        f"hidden/partial pairs sampled : {len(hidden)}/{len(records)}",
        f"802.11 mean loss             : {np.mean(losses['802.11']):.3f}"
        "   (paper: 0.823)",
        f"zigzag mean loss             : {np.mean(losses['zigzag']):.3f}"
        "   (paper: 0.007)",
    ]
    record_table("fig5_8", "Fig 5-8: loss at hidden terminals", lines)
    # Paper shape: hidden/partial pairs lose heavily under 802.11 and
    # almost nothing under ZigZag. (Partial pairs dilute the 802.11 mean
    # relative to the paper's mostly-full-hidden sample.)
    assert np.mean(losses["802.11"]) > 0.25
    assert np.mean(losses["zigzag"]) < 0.25
    assert np.mean(losses["zigzag"]) < 0.5 * np.mean(losses["802.11"])
