"""Fig 5-9: three mutually-hidden senders under a ZigZag AP.

Each packet round produces three collisions of the same three packets
(successive retransmissions with fresh jitter); the general N-collision
engine decodes them. Paper shape: all three senders get a fair throughput
near one third of the medium rate.

Ported to the Monte-Carlo runner (``three_senders`` scenario). Equivalent
CLI::

    python -m repro run examples/scenarios/three_hidden.toml
"""

import numpy as np

from repro.runner import MonteCarloRunner, ScenarioSpec

SPEC = ScenarioSpec(kind="three_senders", n_trials=3, seed=0,
                    payload_bits=240, n_packets=5,
                    params={"snr_db": 13.0})


def sweep():
    result = MonteCarloRunner().run(SPEC)
    return {name: result.mean(f"throughput_{name}")
            for name in ("A", "B", "C")}


def test_fig5_9_three_hidden_terminals(benchmark, record_table):
    throughput = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = list(throughput.values())
    lines = [
        "per-sender normalized throughput: "
        + "  ".join(f"{n}={v:.3f}" for n, v in throughput.items()),
        f"fair share would be 0.333; mean = {np.mean(values):.3f}",
        f"max/min fairness ratio          : "
        f"{max(values) / max(min(values), 1e-9):.2f}",
    ]
    record_table("fig5_9", "Fig 5-9: three hidden terminals", lines)
    # Paper shape: substantial and *fair* throughput for all three.
    assert min(values) > 0.08
    assert max(values) / max(min(values), 1e-9) < 2.5
