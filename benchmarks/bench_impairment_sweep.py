"""Impairment sweeps: ZigZag vs the standard decoder beyond quasi-static.

The paper's testbed captures suffer time-varying channels, clock drift,
front-end nonlinearity and non-Gaussian interference — none of which the
quasi-static ``ChannelParams`` model expresses. These sweeps drive the
``hidden_pair_impaired`` scenario through the four impairment families of
:mod:`repro.phy.impairments` and chart how each receiver degrades as the
impairment worsens, the scenario-diversity axis the ROADMAP calls for:

- **Rayleigh fading** vs coherence time: the channel moves *within* a
  packet, so the quasi-static estimate (and every re-encoded chunk image
  built from it) goes stale chunk by chunk.
- **SFO drift**: the receiver clock skews, accumulating sampling offset
  along the capture.
- **ADC quantization** vs ENOB: collisions are the sum of two packets,
  so the weaker one lives in the quantizer's bottom bits.
- **Bursty interference** vs duty cycle: on/off wideband noise bursts
  punch holes that MRC across the collision pair must ride out.

Each sweep records a ZigZag-vs-standard degradation curve to
``benchmarks/results/impairment_*.txt`` and asserts the qualitative
shape: ZigZag's BER stays below the standard decoder's everywhere, and
worsening the impairment monotonically worsens delivery.
"""

from repro.runner import MonteCarloRunner, ScenarioSpec

N_TRIALS = 24
METRICS = ("delivered_zigzag", "delivered_standard",
           "ber_zigzag", "ber_standard")


def _spec(impairments: dict, seed: int) -> ScenarioSpec:
    return ScenarioSpec.from_dict({
        "scenario": {"kind": "hidden_pair_impaired", "n_trials": N_TRIALS,
                     "seed": seed, "payload_bits": 240},
        "impairments": impairments,
    })


def _sweep(spec: ScenarioSpec, param: str, values) -> dict:
    result = MonteCarloRunner().sweep(spec, param, values)
    table = {}
    for value, point in result.points:
        summary = point.summary()
        table[value] = {metric: summary[metric]["mean"]
                        for metric in METRICS}
    return table


def _render(axis_label: str, table: dict) -> list[str]:
    lines = [f"{axis_label:>14} | {'zz dlvd/2':>9} | {'std dlvd/2':>10} |"
             f" {'zz ber':>8} | {'std ber':>8}"]
    for value, row in table.items():
        lines.append(
            f"{value:>14} | {row['delivered_zigzag']:9.2f} |"
            f" {row['delivered_standard']:10.2f} |"
            f" {row['ber_zigzag']:8.4f} | {row['ber_standard']:8.4f}")
    return lines


def _assert_zigzag_dominates(table: dict) -> None:
    for value, row in table.items():
        assert row["ber_zigzag"] <= row["ber_standard"] + 1e-6, (
            f"standard decoder beat ZigZag at {value}: {row}")


def test_fading_coherence_sweep(benchmark, record_table):
    """Rayleigh fading: delivery degrades as coherence time shrinks."""
    spec = _spec({"sender": [{"kind": "rayleigh",
                              "coherence_samples": 400}]}, seed=42)
    table = benchmark.pedantic(
        _sweep, args=(spec, "impairments.sender.0.coherence_samples",
                      [200, 800, 3200, 12800]),
        rounds=1, iterations=1)
    record_table("impairment_fading",
                 "Rayleigh fading: coherence time (samples) vs delivery",
                 _render("coherence", table))
    _assert_zigzag_dominates(table)
    # Near-static fading decodes; sub-packet coherence collapses.
    assert table[12800]["delivered_zigzag"] >= 1.0
    assert table[200]["delivered_zigzag"] \
        <= table[12800]["delivered_zigzag"] - 1.0
    assert table[200]["ber_zigzag"] > table[12800]["ber_zigzag"]


def test_sfo_drift_sweep(benchmark, record_table):
    """Sampling-clock drift: ZigZag rides moderate ppm, then collapses."""
    spec = _spec({"sender": [{"kind": "sfo_drift",
                              "drift_ppm": 0.0}]}, seed=43)
    table = benchmark.pedantic(
        _sweep, args=(spec, "impairments.sender.0.drift_ppm",
                      [0.0, 100.0, 400.0, 1600.0]),
        rounds=1, iterations=1)
    record_table("impairment_sfo",
                 "Sampling-frequency-offset drift (ppm) vs delivery",
                 _render("drift ppm", table))
    _assert_zigzag_dominates(table)
    assert table[0.0]["delivered_zigzag"] >= 1.5
    assert table[400.0]["delivered_zigzag"] >= 1.5   # tracker absorbs it
    assert table[1600.0]["delivered_zigzag"] \
        <= table[0.0]["delivered_zigzag"] - 1.0
    assert table[1600.0]["ber_zigzag"] > table[0.0]["ber_zigzag"]


def test_adc_enob_sweep(benchmark, record_table):
    """ADC quantization: the collision sum needs headroom bits."""
    spec = _spec({"capture": [{"kind": "quantize", "enob": 8.0,
                               "full_scale": 16.0}]}, seed=44)
    table = benchmark.pedantic(
        _sweep, args=(spec, "impairments.capture.0.enob",
                      [3.0, 4.0, 6.0, 10.0]),
        rounds=1, iterations=1)
    record_table("impairment_enob",
                 "ADC quantization: effective bits vs delivery",
                 _render("ENOB", table))
    _assert_zigzag_dominates(table)
    assert table[10.0]["delivered_zigzag"] >= 1.5
    assert table[3.0]["ber_zigzag"] > table[10.0]["ber_zigzag"]
    # The standard decoder is already dead on these collisions at any
    # bit depth — the curve is ZigZag's to lose.
    assert table[10.0]["delivered_standard"] <= 0.5


def test_interferer_duty_sweep(benchmark, record_table):
    """Bursty wideband interference: duty cycle vs delivery."""
    spec = _spec({"capture": [{"kind": "burst_noise", "power_db": 10.0,
                               "duty_cycle": 0.0,
                               "burst_samples": 150}]}, seed=45)
    table = benchmark.pedantic(
        _sweep, args=(spec, "impairments.capture.0.duty_cycle",
                      [0.0, 0.25, 0.5, 0.9]),
        rounds=1, iterations=1)
    record_table("impairment_interferer",
                 "Bursty interferer (10 dB over noise) duty cycle "
                 "vs delivery",
                 _render("duty cycle", table))
    _assert_zigzag_dominates(table)
    assert table[0.0]["delivered_zigzag"] >= 1.5
    assert table[0.9]["delivered_zigzag"] <= 0.5
    # Monotone non-increasing delivery as the interferer stays on longer.
    values = [table[v]["delivered_zigzag"] for v in (0.0, 0.25, 0.5, 0.9)]
    assert all(a >= b - 0.26 for a, b in zip(values, values[1:]))
