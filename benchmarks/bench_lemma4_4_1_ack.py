"""Lemma 4.4.1: synchronous ACKs fit behind most collision offsets.

Evaluates the paper's analytic bound (exactly 0.9375 for 802.11g) and the
exact two-sided Monte-Carlo probability, plus the AckPlanner timeline for
a typical decoded pair (Fig 4-5).

Ported to the Monte-Carlo runner: one ``map`` value per 802.11 timing
profile.
"""

from repro.mac.ack import (
    AckPlanner,
    ack_offset_lower_bound,
    ack_offset_probability,
)
from repro.mac.timing import TIMING_80211A, TIMING_80211G
from repro.runner import MonteCarloRunner


def timing_point(ctx, name):
    """Analytic bound + Monte-Carlo probability for one timing profile."""
    timing = {"g": TIMING_80211G, "a": TIMING_80211A}[name]
    return (ack_offset_lower_bound(timing),
            ack_offset_probability(timing, n_trials=400_000))


def evaluate():
    (bound_g, mc_g), (bound_a, mc_a) = MonteCarloRunner().map(
        timing_point, values=["g", "a"])
    plan = AckPlanner(TIMING_80211G).plan(
        offset_us=120.0, first_duration_us=24_000.0,
        second_duration_us=24_000.0)
    return bound_g, mc_g, bound_a, mc_a, plan


def test_lemma_4_4_1(benchmark, record_table):
    bound_g, mc_g, bound_a, mc_a, plan = benchmark(evaluate)
    lines = [
        f"802.11g analytic lower bound : {bound_g:.4f}  (paper: 0.9375)",
        f"802.11g exact two-sided MC   : {mc_g:.4f}",
        f"802.11a analytic lower bound : {bound_a:.4f}",
        f"802.11a exact two-sided MC   : {mc_a:.4f}",
        "Fig 4-5 timeline for a 24ms packet pair at 120us offset:",
        f"  ack #1 at t={plan.ack_first_at:.0f}us, padding "
        f"{plan.padding_us:.0f}us, ack #2 at t={plan.ack_second_at:.0f}us,"
        f" feasible={plan.feasible}",
    ]
    record_table("lemma4_4_1", "Lemma 4.4.1: sync-ACK offset probability",
                 lines)
    assert bound_g == 0.9375  # the paper's exact number
    assert mc_g > 0.85
    assert plan.feasible
