"""k-way collision-resolution scaling: throughput vs clique size (§4.5).

One hidden clique of k ∈ {2, 3, 4} mutually-hidden saturated clients
streams through the closed-loop ZigZag AP. Every collision then carries
all k packets, and resolving a set needs k matched collisions assembled
from the buffer's match graph — the paper's N-collision generalization
running online. Reported per k: wall-clock normalized throughput,
collision-airtime throughput (the Fig 5-9 basis: delivered packets per
detected-collision airtime), and the k-way receiver counters. Equivalent
CLI::

    python -m repro sweep examples/scenarios/three_senders_stream.toml \
        --param n_senders=2:4 --metrics collision_throughput_total
"""

import numpy as np

from repro.link import LinkSession, SessionConfig, StreamClient

N_PACKETS = 4
SNR_DB = 13.0
SEEDS = (0, 1, 2)
FREQS = (3e-3, -2e-3, 1e-3, -3e-3)
NAMES = "ABCD"


def build(k: int, seed: int) -> LinkSession:
    clients = [StreamClient(NAMES[i], i + 1, SNR_DB, FREQS[i])
               for i in range(k)]
    config = SessionConfig(
        n_packets=N_PACKETS, payload_bits=200,
        hidden_cliques=(tuple(NAMES[:k]),))
    return LinkSession(config, clients, design="zigzag",
                       rng=np.random.default_rng(seed))


def run_point(k: int) -> dict:
    tput, coll_tput, matches, attempts, multiway = [], [], 0, 0, 0
    for seed in SEEDS:
        report = build(k, seed).run()
        rx = report.receiver_stats
        tput.append(report.throughput())
        coll_tput.append(report.total_delivered
                         / max(rx.collisions_detected, 1))
        matches += rx.zigzag_matches
        attempts += rx.match_attempts
        multiway += rx.multiway_matches
    return {
        "k": k,
        "throughput": float(np.mean(tput)),
        "collision_throughput": float(np.mean(coll_tput)),
        "zigzag_matches": matches,
        "match_attempts": attempts,
        "multiway_matches": multiway,
    }


def sweep() -> list[dict]:
    return [run_point(k) for k in (2, 3, 4)]


def test_nway_scaling(benchmark, record_table):
    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"clique of k mutually-hidden saturated clients, "
             f"snr={SNR_DB:.0f} dB, {N_PACKETS} packets/client, "
             f"{len(SEEDS)} seeds",
             " k   tput(wall)  tput(collision)  zz-matches  k-way"]
    for p in points:
        lines.append(
            f" {p['k']}      {p['throughput']:.3f}        "
            f"{p['collision_throughput']:.3f}          "
            f"{p['zigzag_matches']:3d}      {p['multiway_matches']:3d}")
    record_table("nway_scaling", "Throughput vs k-way collision size",
                 lines)
    by_k = {p["k"]: p for p in points}
    # Every clique size must actually resolve collisions through the
    # matcher; k >= 3 must do so via multi-capture sets.
    for k in (2, 3, 4):
        assert by_k[k]["zigzag_matches"] > 0, f"k={k} never matched"
    assert by_k[3]["multiway_matches"] > 0
    assert by_k[4]["multiway_matches"] > 0
    # Resolving k packets takes k collisions, so collision-airtime
    # throughput stays within a factor-ish of 1 rather than collapsing;
    # the wall-clock number may degrade with k (more retransmissions).
    assert by_k[2]["collision_throughput"] > 0.3
    assert by_k[3]["collision_throughput"] > 0.15
