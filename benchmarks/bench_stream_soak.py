"""Streaming closed-loop AP soak: sustained packets/sec, bounded memory.

Unlike the figure benchmarks this one measures the *system*: a three-
client session (hidden pair A:B plus a sensing client C) over continuous
air, with burst segmentation, collision-buffer matching and synchronous
ACK feedback running end to end. Reported numbers are AP-side delivered
packets per wall-clock second and emitted samples per second, plus the
head-to-head delivered totals of the ZigZag AP and the current-802.11 AP
on identically-seeded air. Equivalent CLI::

    python -m repro run examples/scenarios/ap_stream.toml
"""

import numpy as np

from repro.link import LinkSession, SessionConfig, StreamClient

N_PACKETS = 10
SEED = 3

# Idle-heavy soak point: many clients at a tiny per-client offered load,
# so nearly all simulated air is silence. The event-driven core skips it
# symbolically; the slot-clocked reference walks and synthesizes it.
IDLE_CLIENTS = 12
IDLE_LOAD = 0.0005
IDLE_PACKETS = 2
IDLE_MAX_SAMPLES = 40_000_000


def build(design: str) -> LinkSession:
    clients = [
        StreamClient("A", 1, 12.0, 3e-3),
        StreamClient("B", 2, 12.0, -2e-3),
        StreamClient("C", 3, 11.0, 1e-3),
    ]
    config = SessionConfig(n_packets=N_PACKETS, payload_bits=200,
                           hidden_pairs=(("A", "B"),))
    return LinkSession(config, clients, design=design,
                       rng=np.random.default_rng(SEED))


def build_idle(engine: str) -> LinkSession:
    names = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    clients = [StreamClient(names[i], i + 1, 12.0, (i - 5) * 5e-4,
                            offered_load=IDLE_LOAD)
               for i in range(IDLE_CLIENTS)]
    config = SessionConfig(n_packets=IDLE_PACKETS, payload_bits=200,
                           hidden_pairs=(("A", "B"),), engine=engine,
                           max_samples=IDLE_MAX_SAMPLES)
    return LinkSession(config, clients, design="zigzag",
                       rng=np.random.default_rng(SEED))


def soak():
    return {design: build(design).run() for design in ("zigzag", "802.11")}


def idle_soak():
    return {engine: build_idle(engine).run()
            for engine in ("event", "slot")}


def test_stream_soak(benchmark, record_table):
    reports = benchmark.pedantic(soak, rounds=1, iterations=1)
    zz, std = reports["zigzag"], reports["802.11"]
    wall = max(zz.elapsed_s, 1e-9)
    pps = zz.total_delivered / wall
    sps = zz.counters["samples_emitted"] / wall
    lines = [
        f"clients=3 (hidden pair A:B), packets/client={N_PACKETS}",
        f"zigzag AP : delivered={zz.total_delivered:3d}  "
        f"throughput={zz.throughput():.3f}  "
        f"matches={zz.receiver_stats.zigzag_matches}",
        f"802.11 AP : delivered={std.total_delivered:3d}  "
        f"throughput={std.throughput():.3f}",
        f"sustained : {pps:.1f} delivered pkt/s, "
        f"{sps / 1e6:.2f} Msample/s of air ({wall:.2f}s wall)",
        f"memory    : max resident "
        f"{int(zz.counters['max_resident_samples'])} samples vs "
        f"{int(zz.counters['samples_emitted'])} emitted "
        "(stream never materialized)",
    ]
    record_table("stream_soak", "Streaming closed-loop AP soak", lines)
    # The closed loop must actually engage and win on hidden-pair air.
    assert zz.receiver_stats.zigzag_matches > 0
    assert zz.total_delivered > std.total_delivered
    # Bounded memory: resident samples stay far below the emitted stream.
    assert zz.counters["max_resident_samples"] \
        < 0.25 * zz.counters["samples_emitted"]


def test_idle_stream_event_vs_slot(benchmark, record_table):
    """The event-driven core's acceptance point: on idle-heavy air its
    wall time scales with *burst* samples, not simulated samples."""
    reports = benchmark.pedantic(idle_soak, rounds=1, iterations=1)
    ev, sl = reports["event"], reports["slot"]
    speedup = sl.elapsed_s / max(ev.elapsed_s, 1e-9)
    total = ev.samples_elapsed
    skipped = ev.counters["samples_skipped"]
    emitted = ev.counters["samples_emitted"]
    lines = [
        f"clients={IDLE_CLIENTS} (hidden pair A:B), "
        f"offered load {IDLE_LOAD}/client, "
        f"packets/client={IDLE_PACKETS}",
        f"event core: {ev.elapsed_s:.2f}s wall, "
        f"delivered={ev.total_delivered}",
        f"slot core : {sl.elapsed_s:.2f}s wall, "
        f"delivered={sl.total_delivered}",
        f"speedup   : {speedup:.1f}x on "
        f"{total / 1e6:.1f} Msamples of air "
        f"({100 * skipped / max(total, 1):.1f}% skipped symbolically, "
        f"{emitted / 1e3:.0f} ksamples synthesized)",
    ]
    record_table("stream_soak_idle",
                 "Idle-heavy soak: event-driven vs slot-clocked core",
                 lines)
    # Identically-seeded twins: the two cores agree on the outcome...
    assert ev.total_delivered == sl.total_delivered
    assert not ev.timed_out and not sl.timed_out
    assert abs(ev.samples_elapsed - sl.samples_elapsed) \
        <= 0.05 * sl.samples_elapsed
    # ...and the event core skips the idle majority and banks at least
    # the 5x wall-clock win the refactor promises (measured ~10x).
    assert skipped > 0.9 * total
    assert speedup >= 5.0
