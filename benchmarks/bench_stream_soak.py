"""Streaming closed-loop AP soak: sustained packets/sec, bounded memory.

Unlike the figure benchmarks this one measures the *system*: a three-
client session (hidden pair A:B plus a sensing client C) over continuous
air, with burst segmentation, collision-buffer matching and synchronous
ACK feedback running end to end. Reported numbers are AP-side delivered
packets per wall-clock second and emitted samples per second, plus the
head-to-head delivered totals of the ZigZag AP and the current-802.11 AP
on identically-seeded air. Equivalent CLI::

    python -m repro run examples/scenarios/ap_stream.toml
"""

import numpy as np

from repro.link import LinkSession, SessionConfig, StreamClient

N_PACKETS = 10
SEED = 3


def build(design: str) -> LinkSession:
    clients = [
        StreamClient("A", 1, 12.0, 3e-3),
        StreamClient("B", 2, 12.0, -2e-3),
        StreamClient("C", 3, 11.0, 1e-3),
    ]
    config = SessionConfig(n_packets=N_PACKETS, payload_bits=200,
                           hidden_pairs=(("A", "B"),))
    return LinkSession(config, clients, design=design,
                       rng=np.random.default_rng(SEED))


def soak():
    return {design: build(design).run() for design in ("zigzag", "802.11")}


def test_stream_soak(benchmark, record_table):
    reports = benchmark.pedantic(soak, rounds=1, iterations=1)
    zz, std = reports["zigzag"], reports["802.11"]
    wall = max(zz.elapsed_s, 1e-9)
    pps = zz.total_delivered / wall
    sps = zz.counters["samples_emitted"] / wall
    lines = [
        f"clients=3 (hidden pair A:B), packets/client={N_PACKETS}",
        f"zigzag AP : delivered={zz.total_delivered:3d}  "
        f"throughput={zz.throughput():.3f}  "
        f"matches={zz.receiver_stats.zigzag_matches}",
        f"802.11 AP : delivered={std.total_delivered:3d}  "
        f"throughput={std.throughput():.3f}",
        f"sustained : {pps:.1f} delivered pkt/s, "
        f"{sps / 1e6:.2f} Msample/s of air ({wall:.2f}s wall)",
        f"memory    : max resident "
        f"{int(zz.counters['max_resident_samples'])} samples vs "
        f"{int(zz.counters['samples_emitted'])} emitted "
        "(stream never materialized)",
    ]
    record_table("stream_soak", "Streaming closed-loop AP soak", lines)
    # The closed loop must actually engage and win on hidden-pair air.
    assert zz.receiver_stats.zigzag_matches > 0
    assert zz.total_delivered > std.total_delivered
    # Bounded memory: resident samples stay far below the emitted stream.
    assert zz.counters["max_resident_samples"] \
        < 0.25 * zz.counters["samples_emitted"]
