"""Table 5.1: micro-evaluation of ZigZag's components.

Three rows, as in the paper:
- collision detector false positives / false negatives (β = 0.42);
- decode success with/without frequency & phase tracking, by packet size;
- decode success with/without the ISI (equalizer) filter, by SNR.

Ported to the Monte-Carlo runner: each cell's trial loop goes through
``MonteCarloRunner.map`` (module-level trial functions + ``partial``),
with the detector/decoder reference objects cached across trials.
"""

import functools

import numpy as np

from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.isi import default_isi_taps
from repro.phy.medium import Transmission, synthesize
from repro.receiver.decoder import StandardDecoder
from repro.runner import MonteCarloRunner
from repro.runner.cache import cached_detector, cached_preamble, cached_shaper
from repro.utils.bits import random_bits

BETAS = (0.42, 0.5, 0.55, 0.6)


def _params(rng, snr_db, freq, isi=0.0):
    return ChannelParams(
        gain=np.sqrt(10 ** (snr_db / 10))
        * np.exp(1j * rng.uniform(0, 2 * np.pi)),
        freq_offset=freq,
        sampling_offset=float(rng.uniform(0, 1)),
        phase_noise_std=1e-3,
        isi_taps=tuple(default_isi_taps(isi)) if isi else None)


def detector_trial(ctx):
    """Row 1, one trial: FP/FN flags for every β on one clean+collision
    pair drawn at a random SNR in 6..20 dB (§5.3a)."""
    rng = ctx.rng
    preamble = cached_preamble(32)
    shaper = cached_shaper()
    snr = rng.uniform(6, 20)
    freqs = [float(rng.uniform(-4e-3, 4e-3)) for _ in range(2)]
    f1 = Frame.make(random_bits(300, rng), src=1, preamble=preamble)
    tx = Transmission.from_symbols(f1.symbols, shaper,
                                   _params(rng, snr, freqs[0]), 0, "a")
    clean = synthesize([tx], 1.0, rng, leading=8, tail=30)
    f2 = Frame.make(random_bits(300, rng), src=2, preamble=preamble)
    offset = int(rng.integers(4, 14)) * 20
    collision = synthesize(
        [Transmission.from_symbols(f1.symbols, shaper,
                                   _params(rng, snr, freqs[0]), 0, "a"),
         Transmission.from_symbols(f2.symbols, shaper,
                                   _params(rng, snr, freqs[1]),
                                   offset, "b")],
        1.0, rng, leading=8, tail=30)
    metrics = {}
    for beta in BETAS:
        det = cached_detector(32, beta=beta)
        metrics[f"fp_{beta}"] = float(
            det.inspect(clean.samples, freqs).is_collision)
        metrics[f"fn_{beta}"] = float(
            not det.inspect(collision.samples, freqs).is_collision)
    return metrics


def detector_rates(runner, n_each=40, seed=0):
    """Row 1: FP/FN trade-off across β, as in §5.3(a).

    The paper: "Higher values eliminate false positives but make ZigZag
    miss some collisions, whereas lower values trigger collision-detection
    on clean packets." We reproduce the whole trade-off curve; with a
    32-symbol preamble the discrimination is fundamentally extreme-value
    limited, so our knee sits at higher FP than the paper's testbed
    (which is harmless: FPs only cost compute, §5.3a)."""
    trials = runner.map(detector_trial, n_each, seed=seed)
    return {beta: (float(np.mean([t[f"fp_{beta}"] for t in trials])),
                   float(np.mean([t[f"fn_{beta}"] for t in trials])))
            for beta in BETAS}


def tracking_trial(ctx, payload_bits=400, track=True):
    """Row 2, one trial: does a long packet survive without tracking?"""
    rng = ctx.rng
    preamble = cached_preamble(32)
    shaper = cached_shaper()
    frame = Frame.make(random_bits(payload_bits, rng), src=1,
                       preamble=preamble)
    freq = float(rng.uniform(-4e-3, 4e-3))
    tx = Transmission.from_symbols(frame.symbols, shaper,
                                   _params(rng, 14.0, freq), 0, "a")
    cap = synthesize([tx], 1.0, rng, leading=8, tail=30)
    # The decoder works from the (slightly stale) client-table coarse
    # estimate; tracking must absorb the residual.
    decoder = StandardDecoder(preamble, shaper, noise_power=1.0,
                              coarse_freq=freq + 1.2e-4,
                              track_phase=track)
    ok = decoder.decode(cap.samples).ber_against(frame.body_bits) < 1e-3
    return float(ok)


def isi_trial(ctx, snr_db=10.0, use_equalizer=True):
    """Row 3, one trial: does the ISI filter save a low-SNR packet?"""
    rng = ctx.rng
    preamble = cached_preamble(32)
    shaper = cached_shaper()
    frame = Frame.make(random_bits(400, rng), src=1, preamble=preamble)
    freq = float(rng.uniform(-4e-3, 4e-3))
    tx = Transmission.from_symbols(
        frame.symbols, shaper, _params(rng, snr_db, freq, isi=0.45),
        0, "a")
    cap = synthesize([tx], 1.0, rng, leading=8, tail=30)
    decoder = StandardDecoder(preamble, shaper, noise_power=1.0,
                              coarse_freq=freq,
                              use_equalizer=use_equalizer)
    ok = decoder.decode(cap.samples).ber_against(frame.body_bits) < 1e-3
    return float(ok)


def run_table():
    runner = MonteCarloRunner()
    rows = {
        "detector": detector_rates(runner),
        "tracking": {
            (size, track): float(np.mean(runner.map(
                functools.partial(tracking_trial, payload_bits=size,
                                  track=track), 20, seed=1)))
            for size in (400, 1200) for track in (True, False)
        },
        "isi": {
            (snr, eq): float(np.mean(runner.map(
                functools.partial(isi_trial, snr_db=snr,
                                  use_equalizer=eq), 20, seed=2)))
            for snr in (10.0, 16.0) for eq in (True, False)
        },
    }
    return rows


def test_table5_1_micro_evaluation(benchmark, record_table):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    det = rows["detector"]
    t = rows["tracking"]
    i = rows["isi"]
    lines = ["Correlation detector FP/FN vs beta (paper @beta=0.65: "
             "3.1%/1.9%):"]
    for beta, (fp, fn) in det.items():
        lines.append(f"    beta={beta:.2f}: FP {fp:5.1%}  FN {fn:5.1%}")
    lines += [
        "Freq & phase tracking : "
        f"400b with {t[(400, True)]:5.1%} / without {t[(400, False)]:5.1%}"
        f" | 1200b with {t[(1200, True)]:5.1%}"
        f" / without {t[(1200, False)]:5.1%}"
        "   (paper: 99.6%/89% and 98.2%/0%)",
        "ISI filter            : "
        f"10dB with {i[(10.0, True)]:5.1%} / without {i[(10.0, False)]:5.1%}"
        f" | 16dB with {i[(16.0, True)]:5.1%}"
        f" / without {i[(16.0, False)]:5.1%}"
        "   (paper @10/20dB: 99.6%/47% and 100%/96%)",
    ]
    record_table("table5_1", "Table 5.1: micro-evaluation", lines)
    betas = sorted(det)
    # The §5.3(a) trade-off: FP falls and FN rises as beta grows.
    assert det[betas[-1]][0] <= det[betas[0]][0]
    assert det[betas[0]][1] <= det[betas[-1]][1] + 0.05
    # Detection itself works: at the liberal beta, collisions are found.
    assert det[betas[0]][1] < 0.15
    assert t[(1200, True)] > 0.9
    assert t[(1200, False)] < 0.4       # long packets die w/o tracking
    assert t[(400, False)] >= t[(1200, False)]
    assert i[(10.0, True)] > i[(10.0, False)]  # filter matters at low SNR
    assert i[(16.0, True)] > 0.9
