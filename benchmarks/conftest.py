"""Shared benchmark infrastructure.

Each benchmark regenerates one of the paper's tables or figures: it runs
the experiment (timed via pytest-benchmark), prints the reproduced
rows/series, writes them to ``benchmarks/results/<name>.txt`` for
EXPERIMENTS.md, and asserts the paper's *qualitative shape* (who wins, by
roughly what factor, where crossovers fall).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write (and echo) a reproduced table/figure as plain text."""

    def _record(name: str, title: str, lines: list[str]) -> None:
        text = "\n".join([title, "=" * len(title), *lines, ""])
        (results_dir / f"{name}.txt").write_text(text)
        print("\n" + text)

    return _record
