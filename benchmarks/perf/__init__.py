"""Performance-benchmark harness entry point (``python -m benchmarks.perf``).

The implementation lives in :mod:`repro.perf` so the ``repro perf`` CLI
subcommand can reach it from the installed package; this thin package keeps
perf runs discoverable next to the paper-figure benchmarks. Requires
``src/`` on ``PYTHONPATH`` (the Makefile exports it).
"""

from repro.perf import main, run_perf_suite  # noqa: F401

__all__ = ["main", "run_perf_suite"]
