"""``python -m benchmarks.perf`` — run the tracked perf suite."""

from repro.perf import main

if __name__ == "__main__":
    raise SystemExit(main())
