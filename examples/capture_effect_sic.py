#!/usr/bin/env python3
"""Capture effect + successive interference cancellation (Fig 4-1d/e).

Alice stands next to the AP; Bob is far away. Alice's packets capture the
medium — a current 802.11 AP serves her and starves Bob. A ZigZag AP
decodes Alice *through* the collision, subtracts her, and recovers Bob
from the residual: two packets from a single collision, which is why the
total normalized throughput exceeds 1.0 in the SIC window.

This example sweeps the asymmetry (SINR = SNR_A - SNR_B) through the
runner's ``capture`` scenario under both designs.

Run:  PYTHONPATH=src python examples/capture_effect_sic.py

Same sweep from the command line:

    PYTHONPATH=src python -m repro sweep \
        examples/scenarios/capture_asymmetry.toml \
        --param params.sinr_db=0:16:4
"""

from repro import MonteCarloRunner, ScenarioSpec

SINRS = [0.0, 4.0, 8.0, 12.0, 16.0]


def main() -> None:
    runner = MonteCarloRunner()
    spec = ScenarioSpec(kind="capture", n_trials=3, seed=0,
                        payload_bits=240, n_packets=6, max_rounds=4,
                        params={"snr_b_db": 9.0})

    print("normalized throughput vs SINR (A strong, B weak):\n")
    print(f"{'SINR':>5} | {'802.11':^20} | {'zigzag':^20}")
    print(f"{'':>5} | {'A':>6} {'B':>6} {'tot':>6} | "
          f"{'A':>6} {'B':>6} {'tot':>6}")
    sweeps = {
        design: runner.sweep(spec.with_override("design", design),
                             "params.sinr_db", SINRS)
        for design in ("802.11", "zigzag")
    }
    for sinr in SINRS:
        cells = []
        for design in ("802.11", "zigzag"):
            point = sweeps[design].result_at(sinr)
            cells.append(f"{point.mean('A'):6.2f} {point.mean('B'):6.2f} "
                         f"{point.mean('total'):6.2f}")
        print(f"{sinr:5.0f} | " + " | ".join(cells))

    zz = sweeps["zigzag"]
    best = max(SINRS, key=lambda s: zz.result_at(s).mean("total"))
    print(f"\nat SINR {best:.0f} dB ZigZag's capture-SIC decodes both "
          f"packets from single collisions: total "
          f"{zz.result_at(best).mean('total'):.2f} > 1.0, while 802.11 "
          "starves Bob entirely.")


if __name__ == "__main__":
    main()
