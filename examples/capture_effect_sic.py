#!/usr/bin/env python3
"""Capture effect + successive interference cancellation (Fig 4-1d/e).

Alice stands next to the AP; Bob is far away. Alice's packets capture the
medium — a current 802.11 AP serves her and starves Bob. A ZigZag AP
decodes Alice *through* the collision, subtracts her, and recovers Bob
from the residual: two packets from a single collision. When Bob's copy
comes out faulty, the next collision provides a second faulty copy and
MRC combines them (Fig 4-1d).

Run:  python examples/capture_effect_sic.py
"""

import numpy as np

from repro.phy.channel import ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.frontend import StreamConfig
from repro.receiver.mrc import mrc_combine
from repro.utils.bits import random_bits
from repro.utils.rng import make_rng
from repro.zigzag.decoder import extract_bits
from repro.zigzag.engine import PacketSpec, PlacementParams
from repro.zigzag.sic import SicDecoder


def build_collision(rng, preamble, shaper, frames, snrs, freqs, offset):
    txs = []
    for (name, frame), snr in zip(frames.items(), snrs):
        params = ChannelParams(
            gain=np.sqrt(10 ** (snr / 10))
            * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=freqs[name],
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3, tx_evm=0.03)
        txs.append(Transmission.from_symbols(
            frame.symbols, shaper, params,
            0 if name == "alice" else offset, name))
    return synthesize(txs, 1.0, rng, leading=8, tail=30)


def main() -> None:
    rng = make_rng(11)
    preamble = default_preamble(32)
    shaper = PulseShaper()
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=1.0)
    sic = SicDecoder(config)

    snr_alice, snr_bob = 22.0, 8.0
    print(f"Alice at {snr_alice:.0f} dB (captures), Bob at "
          f"{snr_bob:.0f} dB\n")

    frames = {
        "alice": Frame.make(random_bits(320, rng), src=1,
                            preamble=preamble),
        "bob": Frame.make(random_bits(320, rng), src=2,
                          preamble=preamble),
    }
    freqs = {"alice": 2.5e-3, "bob": -3e-3}
    specs = {name: PacketSpec(name, frames[name].n_symbols, BPSK)
             for name in frames}

    bob_copies = []
    for round_index, offset in enumerate((80, 140)):
        capture = build_collision(rng, preamble, shaper, frames,
                                  (snr_alice, snr_bob), freqs, offset)
        placements = []
        for t in capture.transmissions:
            est = sync.acquire(capture.samples, t.symbol0,
                               coarse_freq=freqs[t.label],
                               noise_power=1.0)
            placements.append(PlacementParams(
                t.label, 0, t.symbol0 + est.sampling_offset, est))
        results = sic.decode(capture.samples, specs, placements)
        print(f"collision {round_index + 1}:")
        for name, result in results.items():
            ber = result.ber_against(frames[name].body_bits)
            print(f"  {name:5s}: via={result.via} crc_ok={result.success} "
                  f"BER={ber:.2e}")
        bob = results["bob"]
        if bob.soft_symbols.size == frames["bob"].n_symbols:
            bob_copies.append(bob.soft_symbols)
        if all(r.success for r in results.values()):
            print("  both packets resolved from a single collision "
                  "(total throughput 2x)")
            break

    if len(bob_copies) >= 2:
        combined = mrc_combine(bob_copies)
        bits, crc_ok, _ = extract_bits(combined, specs["bob"],
                                       len(preamble))
        from repro.utils.bits import bit_error_rate
        ber = bit_error_rate(frames["bob"].body_bits,
                             bits[:frames["bob"].body_bits.size])
        print(f"\nMRC across {len(bob_copies)} faulty copies of Bob "
              f"(Fig 4-1d): crc_ok={crc_ok} BER={ber:.2e}")


if __name__ == "__main__":
    main()
