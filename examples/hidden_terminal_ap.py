#!/usr/bin/env python3
"""A ZigZag access point serving hidden terminals, end to end.

Uses the high-level :class:`repro.ZigZagReceiver` — the §5.1(d) flow
control — rather than driving the pair decoder by hand: the AP sees a
stream of captures, decodes clean ones with the standard path, stores
unmatched collisions, and resolves each retransmitted collision pair as
it arrives. Compares packet delivery against a current-802.11 AP on the
same air.

Run:  python examples/hidden_terminal_ap.py
"""

import numpy as np

from repro.core import ReceiverConfig, ZigZagReceiver
from repro.mac.backoff import FixedWindowBackoff
from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.receiver.decoder import StandardDecoder
from repro.utils.bits import random_bits
from repro.utils.rng import make_rng


def main() -> None:
    rng = make_rng(3)
    preamble = default_preamble(32)
    shaper = PulseShaper()
    snr_db = 12.0
    amplitude = np.sqrt(10 ** (snr_db / 10))
    picker = FixedWindowBackoff(16)
    slot_samples = 20

    clients = {
        1: float(rng.uniform(-4e-3, 4e-3)),
        2: float(rng.uniform(-4e-3, 4e-3)),
    }

    def channel(src):
        return ChannelParams(
            gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=clients[src],
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3)

    n_packets = 6
    frames = [(Frame.make(random_bits(320, rng), src=1, seq=i,
                          preamble=preamble),
               Frame.make(random_bits(320, rng), src=2, seq=i,
                          preamble=preamble))
              for i in range(n_packets)]

    config = ReceiverConfig(preamble=preamble, shaper=shaper,
                            noise_power=1.0,
                            expected_symbols=frames[0][0].n_symbols)
    zigzag_ap = ZigZagReceiver(config)
    for src, freq in clients.items():
        zigzag_ap.clients.update(src, freq)
    current_ap = StandardDecoder(preamble, shaper, noise_power=1.0)

    delivered = {"zigzag": 0, "802.11": 0}
    airtime = 0
    for index, (fa, fb) in enumerate(frames):
        # Hidden terminals: both transmit each round; up to three rounds
        # per packet (the original collision + retransmissions with fresh
        # jitter — occasionally two collisions share an offset and a third
        # is needed, exactly why 802.11 keeps retrying).
        for attempt in range(3):
            slot_a = picker.pick(attempt, rng)
            slot_b = picker.pick(attempt, rng)
            base = min(slot_a, slot_b)
            capture = synthesize(
                [Transmission.from_symbols(
                    fa.symbols, shaper, channel(1),
                    (slot_a - base) * slot_samples, "a"),
                 Transmission.from_symbols(
                    fb.symbols, shaper, channel(2),
                    (slot_b - base) * slot_samples, "b")],
                1.0, rng, leading=8, tail=40)
            airtime += 1

            results = zigzag_ap.receive(capture.samples)
            for result in results:
                ok_a = result.ber_against(fa.body_bits) < 1e-3
                ok_b = result.ber_against(fb.body_bits) < 1e-3
                if ok_a or ok_b:
                    delivered["zigzag"] += 1

            # The current-802.11 AP just tries the standard decoder.
            r = current_ap.decode(capture.samples)
            if (r.ber_against(fa.body_bits) < 1e-3
                    or r.ber_against(fb.body_bits) < 1e-3):
                delivered["802.11"] += 1

    total = 2 * n_packets
    print(f"hidden pair, {n_packets} packets each, {airtime} collision "
          "rounds on the air")
    for design, count in delivered.items():
        print(f"  {design:>7}: delivered {count}/{total} packets "
              f"({count / total:.0%})")
    print(f"collision buffer still holds "
          f"{len(zigzag_ap.buffer)} unmatched collision(s)")
    assert delivered["zigzag"] > delivered["802.11"]


if __name__ == "__main__":
    main()
