#!/usr/bin/env python3
"""A ZigZag access point serving hidden terminals, end to end.

Uses the high-level :class:`repro.ZigZagReceiver` — the §5.1(d) flow
control — through the runner's ``receiver_stream`` scenario: the AP sees
a stream of collision captures, stores the unmatched first collision,
and resolves the retransmitted pair when it arrives. Running many seeded
trials shows how often the full AP pipeline recovers both packets.

Run:  PYTHONPATH=src python examples/hidden_terminal_ap.py
"""

from repro import MonteCarloRunner, ScenarioSpec


def main() -> None:
    spec = ScenarioSpec(kind="receiver_stream", n_trials=6, seed=3,
                        payload_bits=320, params={"snr_db": 13.0})
    result = MonteCarloRunner().run(spec)

    print("ZigZag AP (§5.1d flow control) on two-collision hidden-pair "
          f"streams, {spec.n_trials} trials:\n")
    for trial in result.trials:
        n = int(trial.metrics["packets_recovered"])
        n_base = int(trial.metrics["packets_recovered_80211"])
        ber = trial.metrics["mean_ber"]
        print(f"  trial {trial.index}: zigzag recovered {n}/2 packets"
              + (f" (mean BER {ber:.5f})" if n else "")
              + f", current-802.11 AP recovered {n_base}")
    mean, lo, hi = result.ci("packets_recovered")
    base_mean = result.mean("packets_recovered_80211")
    print(f"\nmean packets recovered per collision pair: "
          f"zigzag {mean:.2f} (95% CI [{lo:.2f}, {hi:.2f}]) "
          f"vs 802.11 {base_mean:.2f} — measured on the same air")
    assert mean > base_mean, "ZigZag should beat the 802.11 baseline"


if __name__ == "__main__":
    main()
