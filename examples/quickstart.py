#!/usr/bin/env python3
"""Quickstart: decode hidden-terminal collisions with ZigZag, via the runner.

Builds the paper's Fig 1-2 scenario declaratively — Alice and Bob,
unable to sense each other, collide on every packet round — and runs it
through the Monte-Carlo runner, which fans trials across processes with
deterministic per-trial seeding and aggregates the per-flow statistics.
Then decodes one literal collision pair with
:func:`repro.quick_hidden_terminal_demo` to show the one-call API.

Run:  PYTHONPATH=src python examples/quickstart.py

Same scenario from the command line:

    PYTHONPATH=src python -m repro run examples/scenarios/pair_collision.toml
"""

from repro import MonteCarloRunner, ScenarioSpec, SenderSpec
from repro import quick_hidden_terminal_demo


def main() -> None:
    # --- one declarative scenario, many seeded trials ------------------
    spec = ScenarioSpec(
        kind="pair",                 # two saturated senders to one AP
        design="zigzag",             # vs "802.11" or "collision-free"
        senders=(SenderSpec("alice", snr_db=11.0),
                 SenderSpec("bob", snr_db=11.0)),
        sense_probability=0.0,       # fully hidden: every round collides
        payload_bits=400,
        n_packets=4,
        n_trials=4,
        seed=7,
    )
    runner = MonteCarloRunner(n_workers=1)   # try n_workers=4 on a big box
    result = runner.run(spec)
    print("ZigZag AP on a fully-hidden pair "
          f"({spec.n_trials} trials, seed {spec.seed}):\n")
    print(result.format_table())

    # The same spec under current 802.11: collisions are fatal.
    baseline = runner.run(spec.with_override("design", "802.11"))
    print(f"\ntotal throughput: zigzag "
          f"{result.mean('throughput_total'):.2f} vs 802.11 "
          f"{baseline.mean('throughput_total'):.2f}")

    # --- and one literal collision pair, decoded in one call -----------
    print("\none Fig 1-2 collision pair, decoded directly:")
    for name, row in quick_hidden_terminal_demo(seed=1).items():
        print(f"  {name:<8} decoded={row['decoded']}  ber={row['ber']:.5f}")


if __name__ == "__main__":
    main()
