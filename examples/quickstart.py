#!/usr/bin/env python3
"""Quickstart: decode one hidden-terminal collision pair with ZigZag.

Builds the paper's Fig 1-2 scenario from scratch — Alice and Bob, unable
to sense each other, collide twice on the same packets with different
offsets — and walks the full receiver pipeline: synchronize, acquire,
schedule, zigzag-decode forward and backward, MRC-combine, CRC-check.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.phy.channel import ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.frontend import StreamConfig
from repro.utils.bits import random_bits
from repro.utils.rng import make_rng
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.engine import PacketSpec, PlacementParams


def main() -> None:
    rng = make_rng(7)
    preamble = default_preamble(32)
    shaper = PulseShaper()          # 2 samples/symbol RRC, like the paper
    snr_db = 11.0
    amplitude = np.sqrt(10 ** (snr_db / 10))

    # --- Two senders, two packets --------------------------------------
    frames = {
        "alice": Frame.make(random_bits(400, rng), src=1, seq=10,
                            preamble=preamble),
        "bob": Frame.make(random_bits(400, rng), src=2, seq=77,
                          preamble=preamble),
    }
    channels = {
        name: ChannelParams(
            gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-4e-3, 4e-3)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3)
        for name in frames
    }

    # --- Two collisions with different 802.11 jitter offsets ------------
    captures = []
    for bob_offset in (180, 60):    # Δ1 != Δ2, thanks to random backoff
        captures.append(synthesize(
            [Transmission.from_symbols(frames["alice"].symbols, shaper,
                                       channels["alice"], 0, "alice"),
             Transmission.from_symbols(frames["bob"].symbols, shaper,
                                       channels["bob"], bob_offset,
                                       "bob")],
            noise_power=1.0, rng=rng, leading=8, tail=40))
    print("synthesized two collisions of the same packet pair "
          f"({captures[0].samples.size} and {captures[1].samples.size} "
          "samples)")

    # --- Acquisition: where does each packet start, on what channel? ----
    sync = Synchronizer(preamble, shaper, threshold=0.35)
    placements = []
    for ci, capture in enumerate(captures):
        for t in capture.transmissions:
            estimate = sync.acquire(
                capture.samples, t.symbol0,
                coarse_freq=channels[t.label].freq_offset,  # client table
                noise_power=1.0)
            placements.append(PlacementParams(
                t.label, ci, t.symbol0 + estimate.sampling_offset,
                estimate))
            print(f"  capture {ci}, {t.label:5s}: start="
                  f"{t.symbol0 + estimate.sampling_offset:8.2f}  "
                  f"|H|={abs(estimate.gain):.2f}  "
                  f"SNR~{estimate.snr_db:.1f} dB")

    # --- ZigZag decode ---------------------------------------------------
    specs = {name: PacketSpec(name, frames[name].n_symbols, BPSK)
             for name in frames}
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=1.0)
    outcome = ZigZagPairDecoder(config, use_backward=True).decode(
        [c.samples for c in captures], specs, placements)

    print(f"\nchunk schedule ({len(outcome.schedule)} steps):")
    for step in outcome.schedule[:6]:
        print(f"  decode {step.packet:5s} symbols [{step.i0:4d},"
              f"{step.i1:4d}) from collision {step.collision}")
    if len(outcome.schedule) > 6:
        print(f"  ... {len(outcome.schedule) - 6} more steps")

    print("\nresults:")
    for name, frame in frames.items():
        result = outcome.results[name]
        ber = result.ber_against(frame.body_bits)
        print(f"  {name:5s}: crc_ok={result.success}  BER={ber:.2e}  "
              f"header={result.header}")
    print("residual power per capture (noise floor = 1.0):",
          [round(p, 2) for p in outcome.residual_powers])


if __name__ == "__main__":
    main()
