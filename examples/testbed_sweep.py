#!/usr/bin/env python3
"""Mini testbed campaign: random sender pairs on the 14-node layout.

A shrunken version of §5.6: sample sender pairs (hidden, partial, and
perfectly-sensing), run each under Current 802.11 and ZigZag, and print
per-pair throughput/loss plus the aggregate comparison (Figs 5-5 .. 5-8).

Run:  python examples/testbed_sweep.py
"""

import numpy as np

from repro.testbed.experiment import (
    Design,
    PairExperiment,
    PairExperimentConfig,
)
from repro.testbed.topology import default_testbed


def main() -> None:
    rng = np.random.default_rng(5)
    testbed = default_testbed(seed=7)
    mix = testbed.sensing_mix()
    print("14-node testbed sensing mix:",
          {k.value: f"{v:.0%}" for k, v in mix.items()},
          "(paper: 80% / 8% / 12%)\n")

    config = PairExperimentConfig(payload_bits=240, n_packets=5,
                                  max_rounds=4)
    totals = {d: {"delivered": 0, "sent": 0, "airtime": 0.0}
              for d in (Design.CURRENT_80211, Design.ZIGZAG)}

    print(f"{'pair':>10} {'class':>8} | {'802.11 tput/loss':>17} |"
          f" {'zigzag tput/loss':>17}")
    for _ in range(6):
        a, b, ap = testbed.sample_pair(rng)
        sense = min(testbed.sense_probability(a, b),
                    testbed.sense_probability(b, a))
        cls = testbed.sensing_class(a, b).value
        row = {}
        for design in (Design.CURRENT_80211, Design.ZIGZAG):
            experiment = PairExperiment(
                float(testbed.snr_db[ap, a]), float(testbed.snr_db[ap, b]),
                sense_probability=sense, config=config,
                rng=np.random.default_rng(int(rng.integers(1 << 31))))
            flows, airtime = experiment.run(design)
            delivered = sum(s.delivered for s in flows.values())
            sent = sum(s.sent for s in flows.values())
            row[design] = (delivered / max(airtime, 1e-9),
                           1.0 - delivered / max(sent, 1))
            totals[design]["delivered"] += delivered
            totals[design]["sent"] += sent
            totals[design]["airtime"] += airtime
        print(f"{a:>4}-{b:<4} {cls:>9} |"
              f"  {row[Design.CURRENT_80211][0]:5.2f} /"
              f" {row[Design.CURRENT_80211][1]:5.1%}  |"
              f"  {row[Design.ZIGZAG][0]:5.2f} /"
              f" {row[Design.ZIGZAG][1]:5.1%}")

    print("\naggregate:")
    for design, t in totals.items():
        tput = t["delivered"] / max(t["airtime"], 1e-9)
        loss = 1.0 - t["delivered"] / max(t["sent"], 1)
        print(f"  {design.value:>14}: throughput {tput:.2f},"
              f" loss {loss:.1%}")


if __name__ == "__main__":
    main()
