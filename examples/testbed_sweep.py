#!/usr/bin/env python3
"""Mini testbed campaign: random sender pairs on the 14-node layout.

A shrunken version of §5.6: each runner trial samples one sender pair
from the 14-node testbed (hidden, partial, or perfectly-sensing) and
runs it under Current 802.11 and ZigZag; the per-pair detail rides in
each trial's ``extra`` payload (exactly how the Fig 5-5..5-8 benchmarks
consume this scenario).

Run:  PYTHONPATH=src python examples/testbed_sweep.py
"""

import numpy as np

from repro import MonteCarloRunner, ScenarioSpec
from repro.testbed.topology import default_testbed


def main() -> None:
    testbed = default_testbed(seed=7)
    mix = testbed.sensing_mix()
    print("14-node testbed sensing mix:",
          {k.value: f"{v:.0%}" for k, v in mix.items()},
          "(paper: 80% / 8% / 12%)\n")

    spec = ScenarioSpec(kind="testbed_pair", n_trials=6, seed=13,
                        payload_bits=240, n_packets=5, max_rounds=4,
                        params={"testbed_seed": 7})
    result = MonteCarloRunner().run(spec)

    print(f"{'pair':>10} {'class':>8} | {'802.11 tput/loss':>17} |"
          f" {'zigzag tput/loss':>17}")
    for trial in result.trials:
        a, b, _ap = trial.extra["pair"]
        cells = []
        for tag in ("80211", "zigzag"):
            tput = trial.metrics[f"throughput_{tag}"]
            loss = float(np.mean(trial.extra[tag]["loss"]))
            cells.append(f"{tput:8.2f} /{loss:6.2f}")
        print(f"{f'{a}->{b}':>10} {trial.extra['class']:>8} | "
              + " | ".join(cells))

    gain = (result.mean("throughput_zigzag")
            / max(result.mean("throughput_80211"), 1e-9))
    print(f"\naggregate: 802.11 {result.mean('throughput_80211'):.2f}, "
          f"zigzag {result.mean('throughput_zigzag'):.2f} "
          f"({gain:.2f}x; paper's testbed average gain: 1.31x)")


if __name__ == "__main__":
    main()
