#!/usr/bin/env python3
"""Beyond two interferers (§4.5, Fig 5-9): three hidden senders.

Three mutually-hidden senders collide three times on the same three
packets (each retransmission re-jitters). The general greedy chunk
scheduler finds a decode order across the three captures and the engine
unravels all three packets.

Run:  python examples/three_hidden_terminals.py
"""

import numpy as np

from repro.mac.backoff import FixedWindowBackoff
from repro.phy.channel import ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.frontend import StreamConfig
from repro.utils.bits import random_bits
from repro.utils.rng import make_rng
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.engine import PacketSpec, PlacementParams
from repro.zigzag.schedule import Placement, pairwise_offsets_distinct


def main() -> None:
    # Note: rounds where two senders draw the *same* backoff slot make
    # their packets coincide sample-for-sample — a genuinely undecodable
    # degenerate pattern that contributes to Fig 4-7's residual failure
    # probability. This seed draws distinct slots in every round.
    rng = make_rng(0)
    preamble = default_preamble(32)
    shaper = PulseShaper()
    snr_db = 13.0
    amplitude = np.sqrt(10 ** (snr_db / 10))
    picker = FixedWindowBackoff(16)
    names = ["alice", "bob", "carol"]

    frames = {n: Frame.make(random_bits(320, rng), src=i + 1,
                            preamble=preamble)
              for i, n in enumerate(names)}
    freqs = {n: float(rng.uniform(-4e-3, 4e-3)) for n in names}

    captures = []
    for round_index in range(3):
        slots = [picker.pick(0, rng) for _ in names]
        base = min(slots)
        txs = []
        for n, slot in zip(names, slots):
            params = ChannelParams(
                gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                freq_offset=freqs[n],
                sampling_offset=float(rng.uniform(0, 1)),
                phase_noise_std=1e-3)
            txs.append(Transmission.from_symbols(
                frames[n].symbols, shaper, params,
                (slot - base) * 20, n))
        captures.append(synthesize(txs, 1.0, rng, leading=8, tail=30))
        print(f"collision {round_index + 1}: offsets "
              f"{[(slot - base) * 20 for slot in slots]} samples")

    sync = Synchronizer(preamble, shaper, threshold=0.3)
    placements = []
    for ci, capture in enumerate(captures):
        for t in capture.transmissions:
            est = sync.acquire(capture.samples, t.symbol0,
                               coarse_freq=freqs[t.label],
                               noise_power=1.0)
            placements.append(PlacementParams(
                t.label, ci, t.symbol0 + est.sampling_offset, est))

    # Check Assertion 4.5.1's condition before decoding.
    symbolic = [Placement(p.packet, p.collision, p.start,
                          frames[p.packet].n_symbols, shaper.sps)
                for p in placements]
    print("pairwise offsets distinct (Assertion 4.5.1):",
          pairwise_offsets_distinct(symbolic))

    specs = {n: PacketSpec(n, frames[n].n_symbols, BPSK) for n in names}
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=1.0)
    outcome = ZigZagPairDecoder(config, use_backward=False).decode(
        [c.samples for c in captures], specs, placements)

    print("\nresults:")
    for n in names:
        result = outcome.results[n]
        ber = result.ber_against(frames[n].body_bits)
        print(f"  {n:5s}: crc_ok={result.success}  BER={ber:.2e}")
    print("\nthree packets from three collisions — airtime 3 slots, "
          "as if each sender had its own slot (Fig 5-9).")


if __name__ == "__main__":
    main()
