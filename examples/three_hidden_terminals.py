#!/usr/bin/env python3
"""Beyond two interferers (§4.5, Fig 5-9): three hidden senders.

Three mutually-hidden senders collide three times on the same three
packets (each retransmission re-jitters). The general greedy chunk
scheduler finds a decode order across the three captures and the engine
unravels all three packets. Run as Monte-Carlo trials through the
runner's ``three_senders`` scenario.

Run:  PYTHONPATH=src python examples/three_hidden_terminals.py

Same scenario from the command line:

    PYTHONPATH=src python -m repro run examples/scenarios/three_hidden.toml
"""

from repro import MonteCarloRunner, ScenarioSpec


def main() -> None:
    spec = ScenarioSpec(kind="three_senders", n_trials=4, seed=0,
                        payload_bits=320, n_packets=4,
                        params={"snr_db": 13.0})
    result = MonteCarloRunner().run(spec)

    print("three mutually-hidden senders, ZigZag AP "
          f"({spec.n_trials} trials):\n")
    print(result.format_table())
    names = ("A", "B", "C")
    means = {n: result.mean(f"throughput_{n}") for n in names}
    print("\nper-sender normalized throughput: "
          + "  ".join(f"{n}={v:.3f}" for n, v in means.items()))
    print(f"fair share would be 0.333 each; fairness ratio "
          f"{result.mean('fairness_ratio'):.2f}")
    print("(rounds where two senders draw the same backoff slot are "
          "genuinely undecodable and feed Fig 4-7's residual failure "
          "probability)")


if __name__ == "__main__":
    main()
