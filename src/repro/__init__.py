"""repro — a full reproduction of *ZigZag Decoding: Combating Hidden
Terminals in Wireless Networks* (Gollakota & Katabi, SIGCOMM 2008).

Quickstart::

    import numpy as np
    from repro import quick_hidden_terminal_demo

    results = quick_hidden_terminal_demo(seed=1)
    print(results)  # both colliding packets decoded from two collisions

Package layout:

- :mod:`repro.phy` — the 802.11-like physical layer (modulation, framing,
  channel impairments, pulse shaping, sync, estimation, tracking).
- :mod:`repro.receiver` — the standard black-box decoder and helpers.
- :mod:`repro.zigzag` — the paper's contribution: collision detection and
  matching, the greedy chunk scheduler, the re-encode/subtract engine,
  forward+backward decoding with MRC, and capture-effect SIC.
- :mod:`repro.mac` — 802.11 DCF, backoff, ACK timing (Lemma 4.4.1).
- :mod:`repro.testbed` — the 14-node evaluation substrate and the three
  compared receiver designs.
- :mod:`repro.analysis` — capacity region and error-decay theory.
- :mod:`repro.core` — the assembled AP receiver (§5.1d flow control).
- :mod:`repro.link` — the streaming closed-loop AP subsystem: continuous
  air, burst segmentation, N-client sessions with live ACK feedback
  (§4.2.2/§4.4 running as an online system).
- :mod:`repro.runner` — the parallel Monte-Carlo runner: declarative
  :class:`~repro.runner.spec.ScenarioSpec`, process fan-out with
  deterministic seeding, and the ``python -m repro`` CLI. This is the
  supported entry point for running experiments at scale.
"""

from repro.core import ClientTable, ReceiverConfig, ZigZagReceiver
from repro.errors import (
    CollisionDetectError,
    ConfigurationError,
    DecodeError,
    FrameError,
    MatchError,
    ReproError,
    ScheduleError,
    SyncError,
    TrackingError,
)
from repro.runner import (
    MonteCarloRunner,
    RunResult,
    ScenarioSpec,
    SenderSpec,
    SweepResult,
)

__version__ = "1.1.0"

__all__ = [
    "ZigZagReceiver",
    "ReceiverConfig",
    "ClientTable",
    "MonteCarloRunner",
    "ScenarioSpec",
    "SenderSpec",
    "RunResult",
    "SweepResult",
    "ReproError",
    "ConfigurationError",
    "FrameError",
    "SyncError",
    "DecodeError",
    "CollisionDetectError",
    "MatchError",
    "ScheduleError",
    "TrackingError",
    "quick_hidden_terminal_demo",
    "__version__",
]


def quick_hidden_terminal_demo(seed: int = 1, snr_db: float = 12.0,
                               payload_bits: int = 256) -> dict:
    """Decode one canonical Fig 1-2 hidden-terminal collision pair.

    Returns a dict with per-packet success flags and bit error rates —
    a one-call sanity check that the whole stack works.
    """
    import numpy as np

    from repro.phy.channel import ChannelParams
    from repro.phy.constellation import BPSK
    from repro.phy.frame import Frame
    from repro.phy.medium import Transmission, synthesize
    from repro.phy.preamble import default_preamble
    from repro.phy.pulse import PulseShaper
    from repro.phy.sync import Synchronizer
    from repro.receiver.frontend import StreamConfig
    from repro.utils.bits import random_bits
    from repro.utils.rng import make_rng
    from repro.zigzag.decoder import ZigZagPairDecoder
    from repro.zigzag.engine import PacketSpec, PlacementParams

    rng = make_rng(seed)
    preamble = default_preamble(32)
    shaper = PulseShaper()
    amplitude = np.sqrt(10.0 ** (snr_db / 10.0))
    frames = {
        "alice": Frame.make(random_bits(payload_bits, rng), src=1,
                            preamble=preamble),
        "bob": Frame.make(random_bits(payload_bits, rng), src=2,
                          preamble=preamble),
    }
    params = {
        name: ChannelParams(
            gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-2e-4, 2e-4)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3)
        for name in frames
    }
    captures = []
    for bob_offset in (160, 60):
        captures.append(synthesize(
            [Transmission.from_symbols(frames["alice"].symbols, shaper,
                                       params["alice"], 0, "alice"),
             Transmission.from_symbols(frames["bob"].symbols, shaper,
                                       params["bob"], bob_offset, "bob")],
            1.0, rng, leading=8, tail=40))
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    placements = []
    for ci, capture in enumerate(captures):
        for t in capture.transmissions:
            est = sync.acquire(capture.samples, t.symbol0,
                               coarse_freq=params[t.label].freq_offset,
                               noise_power=1.0)
            placements.append(PlacementParams(
                t.label, ci, t.symbol0 + est.sampling_offset, est))
    specs = {name: PacketSpec(name, frames[name].n_symbols, BPSK)
             for name in frames}
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=1.0)
    outcome = ZigZagPairDecoder(config).decode(
        [c.samples for c in captures], specs, placements)
    return {
        name: {
            "decoded": outcome.results[name].success,
            "ber": outcome.results[name].ber_against(
                frames[name].body_bits),
        }
        for name in frames
    }
