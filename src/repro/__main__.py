"""``python -m repro`` — the Monte-Carlo runner command line."""

from repro.runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
