"""Analytical companions: capacity region (Fig 1-3), BER theory, and the
error-propagation decay model of §4.3a / Fig 4-4."""

from repro.analysis.capacity import (
    CapacityRegion,
    point_is_decodable,
    rate_pair_for_equal_rates,
)
from repro.analysis.theory import (
    bpsk_ber,
    error_propagation_probability,
    expected_error_run_length,
    qfunc,
)

__all__ = [
    "CapacityRegion",
    "point_is_decodable",
    "rate_pair_for_equal_rates",
    "bpsk_ber",
    "qfunc",
    "error_propagation_probability",
    "expected_error_run_length",
]
