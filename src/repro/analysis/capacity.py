"""The two-user multiple-access capacity region (Fig 1-3).

The classic pentagon: rates (Ra, Rb) are jointly decodable iff

    Ra <= log2(1 + SNRa)
    Rb <= log2(1 + SNRb)
    Ra + Rb <= log2(1 + SNRa + SNRb)

Fig 1-3's argument: if both hidden terminals transmit at the best
single-user rate R = log2(1 + SNR), the sum 2R exceeds the sum-capacity
log2(1 + 2 SNR), so joint decoding / interference cancellation cannot
recover a single collision — while ZigZag's *pair* of collisions averages
the rate down to R per slot, which is decodable and as efficient as TDMA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CapacityRegion", "point_is_decodable",
           "rate_pair_for_equal_rates"]


@dataclass(frozen=True)
class CapacityRegion:
    """The two-user Gaussian MAC pentagon for linear SNRs (not dB)."""

    snr_a: float
    snr_b: float

    def __post_init__(self) -> None:
        if self.snr_a <= 0 or self.snr_b <= 0:
            raise ConfigurationError("SNRs must be positive")

    @property
    def max_rate_a(self) -> float:
        return math.log2(1.0 + self.snr_a)

    @property
    def max_rate_b(self) -> float:
        return math.log2(1.0 + self.snr_b)

    @property
    def sum_capacity(self) -> float:
        return math.log2(1.0 + self.snr_a + self.snr_b)

    def contains(self, rate_a: float, rate_b: float) -> bool:
        if rate_a < 0 or rate_b < 0:
            raise ConfigurationError("rates must be non-negative")
        return (rate_a <= self.max_rate_a + 1e-12
                and rate_b <= self.max_rate_b + 1e-12
                and rate_a + rate_b <= self.sum_capacity + 1e-12)

    def corner_points(self) -> list[tuple[float, float]]:
        """Vertices of the pentagon (excluding the origin edges)."""
        ra, rb, rs = self.max_rate_a, self.max_rate_b, self.sum_capacity
        return [
            (ra, 0.0),
            (ra, rs - ra),
            (rs - rb, rb),
            (0.0, rb),
        ]


def point_is_decodable(snr_a: float, snr_b: float, rate_a: float,
                       rate_b: float) -> bool:
    """Convenience wrapper over :class:`CapacityRegion.contains`."""
    return CapacityRegion(snr_a, snr_b).contains(rate_a, rate_b)


def rate_pair_for_equal_rates(snr: float) -> tuple[float, bool]:
    """(single-user best rate R, is (R, R) inside the symmetric region)?

    Fig 1-3's headline: for any positive SNR the answer is False — the
    rate pair (R, R) with R = log2(1+SNR) always exceeds the sum capacity
    log2(1+2 SNR), so a single collision at full rate is undecodable.
    """
    if snr <= 0:
        raise ConfigurationError("SNR must be positive")
    rate = math.log2(1.0 + snr)
    region = CapacityRegion(snr, snr)
    return rate, region.contains(rate, rate)
