"""BER theory and the §4.3(a) error-propagation decay model (Fig 4-4).

"In the worst case the error causes the AP to add the vector instead of
subtracting it ... the AP will decode yB to the wrong bit only if the
angle between the two vectors yB and yA is less than 60 degrees ... the
error occurs with probability less than 1/6. Thus, in BPSK, errors die
exponentially fast."
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["qfunc", "bpsk_ber", "error_propagation_probability",
           "expected_error_run_length"]


def qfunc(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def bpsk_ber(snr_linear: float) -> float:
    """Uncoded coherent BPSK bit error rate at per-symbol SNR Es/N0.

    BER = Q(sqrt(2 Es/N0)) for a complex-noise channel with noise power
    split across I/Q.
    """
    if snr_linear < 0:
        raise ConfigurationError("SNR must be non-negative")
    return qfunc(math.sqrt(2.0 * snr_linear))


def error_propagation_probability(angle_threshold_deg: float = 60.0) -> float:
    """P(a subtraction error flips the next symbol), BPSK worst case.

    A wrongly-decoded BPSK symbol makes the AP *add* the interferer's
    vector instead of cancelling it; the next decision flips only when the
    angle between the two (independent, uniform-phase) vectors falls in a
    60-degree arc — probability 60/360 = 1/6 (§4.3a, Fig 4-4).
    """
    if not 0 < angle_threshold_deg <= 180:
        raise ConfigurationError("threshold must be in (0, 180] degrees")
    return angle_threshold_deg / 360.0


def expected_error_run_length(p_propagate: float | None = None) -> float:
    """Expected length of an error burst under geometric decay.

    With propagation probability p per hop, a burst lasts 1/(1-p) symbols
    in expectation — about 1.2 symbols for the paper's p = 1/6: errors die
    exponentially fast (Fig 4-4).
    """
    p = error_propagation_probability() if p_propagate is None \
        else p_propagate
    if not 0 <= p < 1:
        raise ConfigurationError("propagation probability must be in [0,1)")
    return 1.0 / (1.0 - p)
