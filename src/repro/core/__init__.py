"""Top-level receiver orchestration — the paper's §5.1(d) flow control.

:class:`~repro.core.api.ZigZagReceiver` glues everything together the way
the prototype AP does: try standard decoding first; on failure run collision
detection; attempt capture-effect SIC; otherwise match against stored
collisions and ZigZag-decode the pair; store unmatched collisions for later.
"""

from repro.core.api import ClientTable, ReceiverConfig, ZigZagReceiver

__all__ = ["ClientTable", "ReceiverConfig", "ZigZagReceiver"]
