"""The ZigZag access point: end-to-end receive-path orchestration.

Implements the paper's implementation flow control (§5.1d):

1. Detect a reception and try the standard decoder; a success ends the
   flow (a correlation spike elsewhere in a cleanly-decoded packet is
   treated as the false positive it almost always is).
2. When standard decoding fails on a two-packet collision dominated by
   one sender, try capture-effect SIC (Fig 4-1e): decode the strong
   packet through the interference, subtract it, recover the weak one.
3. Otherwise, run collision detection (§4.2.1). On a
   collision, search stored collisions for matches (§4.2.2); on a match,
   ZigZag-decode the collision set — pairs per §4.2.3, and k mutually
   hidden senders across k collisions per §4.5, assembling the set from
   the collision buffer's match graph; otherwise store the collision in
   case it helps decode a future one.

The receiver also maintains the per-client coarse frequency-offset table
the paper describes ("the AP can maintain coarse estimates of the frequency
offsets of active clients as obtained at the time of association"), updated
from every successful decode.

For running this receiver over Monte-Carlo experiment campaigns, use the
:mod:`repro.runner` subsystem (its ``receiver_stream`` scenario drives
exactly this flow control); ``python -m repro run scenario.toml`` is the
supported experiment entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import ConfigurationError, ReproError
from repro.phy.constellation import get_constellation
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import HEADER_BITS
from repro.phy.preamble import Preamble, default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.buffer import CollisionBuffer, CollisionRecord, gaps_close
from repro.receiver.decoder import StandardDecoder
from repro.receiver.frontend import StreamConfig
from repro.receiver.result import DecodeResult
from repro.zigzag.decoder import ZigZagMultiDecoder
from repro.zigzag.detect import CollisionDetector
from repro.zigzag.engine import PacketSpec, PlacementParams
from repro.zigzag.match import match_score
from repro.zigzag.sic import SicDecoder

__all__ = ["ClientTable", "ReceiverConfig", "ReceiverStats",
           "ZigZagReceiver"]


@dataclass
class ClientTable:
    """Per-client coarse frequency-offset estimates (§4.2.1, §4.2.4b).

    Updated with an EWMA from every successful decode; the long-run
    accuracy is far better than a single 32-symbol preamble fit, which is
    exactly why the paper leans on it for collision decoding.
    """

    smoothing: float = 0.25
    _freqs: dict[int, float] = field(default_factory=dict)

    def update(self, src: int, freq_offset: float) -> None:
        """Fold a fresh per-decode offset estimate into the EWMA."""
        if src in self._freqs:
            old = self._freqs[src]
            self._freqs[src] = (1 - self.smoothing) * old \
                + self.smoothing * freq_offset
        else:
            self._freqs[src] = freq_offset

    def get(self, src: int, default: float = 0.0) -> float:
        """The current coarse offset estimate for client *src*."""
        return self._freqs.get(src, default)

    def candidates(self) -> list[float]:
        """Frequency hypotheses for collision detection; always includes 0
        so unknown clients can still be found."""
        values = sorted(set(round(v, 9) for v in self._freqs.values()))
        if not values:
            return [0.0]
        return values

    def __len__(self) -> int:
        return len(self._freqs)


@dataclass(frozen=True)
class ReceiverConfig:
    """Knobs of a ZigZag AP."""

    preamble: Preamble = field(default_factory=default_preamble)
    shaper: PulseShaper = field(default_factory=PulseShaper)
    noise_power: float = 1.0
    sync_threshold: float = 0.5
    # Collision detection runs only after standard decoding fails, so a
    # liberal beta is safe: false positives cost compute, not packets
    # (§5.3a), while false negatives forfeit ZigZag opportunities.
    collision_beta: float = 0.42
    match_threshold: float = 0.25
    match_window: int = 256
    use_backward: bool = True
    enable_sic: bool = True
    track_phase: bool = True
    use_equalizer: bool = True
    buffer_capacity: int = 4
    # Age (in receive() calls) after which a stored collision is pruned.
    # 802.11 retransmissions arrive within a few receptions of the
    # original collision (§4.2.2), so a record this old can never match —
    # it only wastes buffer scans. None disables age pruning (the
    # pre-streaming behaviour); the streaming session driver enables it.
    buffer_max_age: int | None = None
    expected_symbols: int | None = None
    # Most packets a single collision may be decomposed into (the k of
    # §4.5). The default keeps the historical pairwise detector: weaker
    # third spikes on a two-packet collision are far more likely to be
    # data sidelobes than real packets. Deployments with k mutually
    # hidden clients (the streaming session derives this from its
    # topology) raise it to k so k-way collision sets can form.
    max_collision_packets: int = 2

    def __post_init__(self) -> None:
        if self.max_collision_packets < 2:
            raise ConfigurationError(
                "max_collision_packets must be >= 2")

    def stream_config(self) -> StreamConfig:
        """The equivalent chunk-decoder configuration."""
        return StreamConfig(
            preamble=self.preamble,
            shaper=self.shaper,
            noise_power=self.noise_power,
            track_phase=self.track_phase,
            use_equalizer=self.use_equalizer,
        )


@dataclass
class ReceiverStats:
    """Running counters of one receiver's life on the air.

    The streaming session driver (:mod:`repro.link`) surfaces these per
    soak run; they are also what distinguishes "ZigZag never engaged"
    from "ZigZag engaged and failed" when a scenario underdelivers.
    """

    captures: int = 0
    clean_decodes: int = 0
    collisions_detected: int = 0
    collisions_stored: int = 0
    zigzag_matches: int = 0
    sic_decodes: int = 0
    short_alignments: int = 0   # stored records skipped as unscoreable
    evictions_capacity: int = 0
    evictions_age: int = 0
    # Match-path observability: every stored record actually scored
    # against a new collision counts one attempt; scores below the match
    # threshold count a reject. "Buffer scanned but nothing cleared the
    # bar" (attempts high, rejects == attempts) is therefore
    # distinguishable from "nothing was ever scoreable" (attempts == 0)
    # in soak runs.
    match_attempts: int = 0
    match_rejects_threshold: int = 0
    # k-way (§4.5) counters: collision sets of three or more captures
    # assembled from the buffer's match graph and handed to the multi
    # decoder, and how many of those resolved at least one packet.
    multiway_attempts: int = 0
    multiway_matches: int = 0
    packets_multiway: int = 0   # packets recovered by k-way decodes


class ZigZagReceiver:
    """A best-effort 802.11 AP receiver with ZigZag collision decoding."""

    def __init__(self, config: ReceiverConfig | None = None) -> None:
        self.config = config or ReceiverConfig()
        cfg = self.config
        self.clients = ClientTable()
        self.stats = ReceiverStats()
        self.buffer = CollisionBuffer(cfg.buffer_capacity)
        self.detector = CollisionDetector(cfg.preamble, cfg.shaper,
                                          beta=cfg.collision_beta)
        self.synchronizer = Synchronizer(cfg.preamble, cfg.shaper,
                                         threshold=cfg.collision_beta)
        self.standard = StandardDecoder(
            cfg.preamble, cfg.shaper, noise_power=cfg.noise_power,
            sync_threshold=cfg.sync_threshold,
            track_phase=cfg.track_phase, use_equalizer=cfg.use_equalizer)
        # One decoder serves every set size: the k-copy MRC only engages
        # at three or more captures, so two-capture decodes are
        # bit-identical to the historical ZigZagPairDecoder path.
        self.multi_decoder = ZigZagMultiDecoder(
            cfg.stream_config(), use_backward=cfg.use_backward)
        self.sic = SicDecoder(cfg.stream_config())

    # ------------------------------------------------------------------
    def receive(self, samples) -> list[DecodeResult]:
        """Process one capture; returns every packet *successfully*
        decoded from it — every returned result has ``success`` True.

        May return packets from *earlier* captures too: a collision that
        matches stored ones resolves the whole collision set at once.
        """
        y = np.asarray(samples, dtype=complex).ravel()
        self.stats.captures += 1
        self._prune_stale()
        verdict = self.detector.inspect(
            y, self.clients.candidates(),
            max_packets=self.config.max_collision_packets)
        if not verdict.peaks:
            return []

        # §5.1(d): always try the standard decoder first — a correlation
        # spike elsewhere in the packet may be a false positive, which
        # "does not prevent correct decoding of that packet".
        strongest = max(verdict.peaks, key=lambda p: p.score)
        result = self.standard.decode(y, start_position=strongest.position)
        if result.success:
            self._learn(result)
            self.stats.clean_decodes += 1
            # Even on success, a genuinely buried second packet may be
            # recoverable (capture scenario); the SIC path inside
            # _handle_collision covers that when decoding *fails*, and a
            # successful standard decode of a clean packet ends here.
            return [result]

        if len(verdict.peaks) >= 2:
            self.stats.collisions_detected += 1
            return self._handle_collision(y, verdict)
        # Single peak, standard decode failed: nothing recovered. (This
        # used to leak the *failed* DecodeResult into the return list
        # whenever it carried bits, breaking the successes-only
        # contract and inflating naive len() packet counts downstream.)
        return []

    def _prune_stale(self) -> None:
        """Age out stored collisions whose match window has passed."""
        max_age = self.config.buffer_max_age
        if max_age is None:
            return
        cutoff = self.stats.captures - max_age
        self.stats.evictions_age += self.buffer.prune(
            lambda record: record.meta.get("rx", cutoff) >= cutoff)

    # ------------------------------------------------------------------
    def _learn(self, result: DecodeResult) -> None:
        if result.success and result.header is not None \
                and result.estimate is not None:
            self.clients.update(result.header.src,
                                result.estimate.freq_offset)

    def _acquire_placements(self, y: np.ndarray, verdict,
                            collision_index: int
                            ) -> list[PlacementParams]:
        """Channel placements for every detected peak in one capture.

        Packet identity is positional: peak *i* (in arrival order) is
        packet ``p{i}`` across every capture of a collision set — the
        per-peak match scores are what validate that correspondence.
        """
        placements = []
        for i, peak in enumerate(verdict.peaks):
            best: ChannelEstimate | None = None
            for freq in self.clients.candidates():
                est = self.synchronizer.acquire(
                    y, peak.position, coarse_freq=freq,
                    noise_power=self.config.noise_power)
                if best is None or abs(est.gain) > abs(best.gain):
                    best = est
            placements.append(PlacementParams(
                packet=f"p{i}", collision=collision_index,
                start=peak.position + best.sampling_offset,
                estimate=best))
        return placements

    def _frame_symbols(self, y: np.ndarray, peak) -> int | None:
        """Frame extent in symbols for the packets of this collision.

        When the deployment pins a uniform frame length
        (``expected_symbols``, as the streaming session does) that is
        authoritative: the PLCP-like header carries no checksum, so a
        header peeked *through* interference can parse into a plausible
        garbage length and poison the whole collision set. Without a
        configured expectation, peek a standard decode at the packet
        start (interference-free headers decode fine).
        """
        if self.config.expected_symbols is not None:
            return self.config.expected_symbols
        try:
            result = self.standard.decode(y, start_position=peak.position)
        except ReproError:
            result = DecodeResult.failure("peek failed")
        if result.header is not None:
            k = get_constellation(result.header.modulation).bits_per_symbol
            tail = result.header.payload_bits + 32
            return (len(self.config.preamble) + HEADER_BITS
                    + (tail + k - 1) // k)
        return None

    def _pair_score(self, record: CollisionRecord,
                    probe: CollisionRecord) -> float:
        """The historical §4.2.2 identity score: align the two captures
        at their second-peak positions and correlate. Raises
        :class:`ConfigurationError` on a short alignment."""
        window = self.config.match_window
        return match_score(record.samples, record.peaks[1].position,
                           probe.samples, probe.peaks[1].position, window)

    def _peak_alignment(self, record: CollisionRecord,
                        probe: CollisionRecord
                        ) -> tuple[float, tuple[int, ...] | None]:
        """Best peak correspondence between two same-k collisions.

        Retransmission jitter freely reorders the senders' arrival
        within a collision, so peak *i* of one capture need not be peak
        *i* of the other. Score every (probe peak, record peak)
        alignment with the §4.2.2 correlation trick and take the
        permutation maximizing the *mean* per-peak score: any wrong
        correspondence misassigns at least two peaks, so the mean
        separates the true permutation far more reliably than the
        weakest single alignment (each aligned window holds the other
        k − 1 packets as interference, leaving every score near 1/k
        with substantial variance).

        Returns ``(score, perm)`` with ``perm[i]`` the record peak index
        carrying probe packet *i*; ``(−1, None)`` when no fully
        scoreable correspondence exists (short alignments).
        """
        window = self.config.match_window
        k = probe.n_peaks
        scores = np.full((k, k), np.nan)
        for i in range(k):
            for j in range(k):
                try:
                    scores[i, j] = match_score(
                        record.samples, record.peaks[j].position,
                        probe.samples, probe.peaks[i].position, window)
                except ConfigurationError:
                    pass  # stays nan: that alignment is unscoreable
        best_score, best_perm = -1.0, None
        for perm in permutations(range(k)):
            chosen = [scores[i, perm[i]] for i in range(k)]
            if any(np.isnan(s) for s in chosen):
                continue  # an unscoreable alignment: skip this perm
            score = float(np.mean(chosen))
            if score > best_score:
                best_score, best_perm = score, perm
        if best_perm is None:
            return -1.0, None
        return best_score, best_perm

    def _set_threshold(self, k: int) -> float:
        """Match threshold for a k-packet collision set.

        The aligned-correlation score of a true match concentrates
        around the matched packet's share of the capture power — about
        1/2 for a pair, 1/k in general — so the configured pairwise
        threshold is scaled by ``2/k`` to keep the same accept margin at
        every k (and exactly ``match_threshold`` at k = 2).
        """
        return self.config.match_threshold * 2.0 / k

    @staticmethod
    def _aligned_offsets(record: CollisionRecord,
                         perm: tuple[int, ...]) -> tuple[int, ...]:
        """Packet start offsets relative to packet 0, in probe packet
        order — what must differ between two captures of a set for the
        schedule to make progress (§4.5)."""
        base = record.peaks[perm[0]].position
        return tuple(record.peaks[p].position - base for p in perm)

    def _direct_matches(self, probe: CollisionRecord
                        ) -> tuple[list[CollisionRecord],
                                   dict[int, tuple[float,
                                                   tuple[int, ...]]]]:
        """Stored records whose identity score against *probe* clears the
        match threshold, newest first (§4.2.2), with match-path stats.

        Returns the matches plus every scored record's
        ``(score, permutation)`` (by ``id``) mapping probe packet order
        onto the record's peaks — below-threshold alignments included,
        so the k-way assembly never recomputes one. Pairs keep the
        historical identity alignment; k >= 3 records are matched under
        the best peak correspondence.

        Counter semantics (soak observability): ``match_attempts`` =
        ``short_alignments`` + ``match_rejects_threshold`` + accepted
        matches; degenerate same-arrival-pattern records are skipped
        before counting, exactly like the pairwise path.
        """
        k = probe.n_peaks
        matches: list[CollisionRecord] = []
        alignments: dict[int, tuple[float, tuple[int, ...]]] = {}
        for record in self.buffer.newest_first():
            if record.n_peaks < 2 or record.n_peaks != k:
                continue
            if k == 2:
                if gaps_close(record, probe):
                    continue  # identical offsets are undecodable (§4.5)
                self.stats.match_attempts += 1
                try:
                    score = self._pair_score(record, probe)
                except ConfigurationError:
                    # A buried peak near the tail of either capture
                    # leaves fewer than the minimum aligned samples to
                    # score — that record simply cannot be matched
                    # against this collision. Treat it as "no match" and
                    # keep scanning instead of aborting the receive call.
                    self.stats.short_alignments += 1
                    continue
                perm: tuple[int, ...] | None = (0, 1)
            else:
                score, perm = self._peak_alignment(record, probe)
                if perm is None:
                    self.stats.match_attempts += 1
                    self.stats.short_alignments += 1
                    continue
                probe_offsets = self._aligned_offsets(
                    probe, tuple(range(k)))
                if all(abs(a - b) < 2 for a, b in zip(
                        self._aligned_offsets(record, perm),
                        probe_offsets)):
                    continue  # same arrival pattern: degenerate (§4.5)
                self.stats.match_attempts += 1
            alignments[id(record)] = (score, perm)
            if score < self._set_threshold(k):
                self.stats.match_rejects_threshold += 1
                continue
            matches.append(record)
        return matches, alignments

    def _acquire_set_placements(self, layers: list[tuple[np.ndarray, list]],
                                max_assignments: int = 2
                                ) -> list[list[PlacementParams]]:
        """Ranked placement hypotheses for a k-way collision set, each
        with one shared frequency assignment per packet.

        The k packets of a set are k *distinct* clients, and packet
        identity is already aligned across captures — so rather than
        letting every peak independently grab the gain-maximizing client
        frequency (which happily assigns the same client's CFO to two
        packets and derails the engine's correction loops), rank the
        injective packet → client-frequency assignments by total fitted
        preamble gain across all captures. Close client CFOs leave that
        statistic with a razor-thin margin (a Δf of 2e-3 cycles/sample
        costs under 3% of coherent preamble gain), so the top
        *max_assignments* hypotheses are returned for the caller to try
        in order. Falls back to a single independent per-peak selection
        when fewer client frequencies are known than packets.
        """
        candidates = self.clients.candidates()
        k = len(layers[0][1])
        estimates: dict[tuple[int, int, int], ChannelEstimate] = {}
        for ci, (samples, peaks) in enumerate(layers):
            for i, peak in enumerate(peaks):
                for fi, freq in enumerate(candidates):
                    estimates[(ci, i, fi)] = self.synchronizer.acquire(
                        samples, peak.position, coarse_freq=freq,
                        noise_power=self.config.noise_power)

        def build(chooser) -> list[PlacementParams]:
            placements = []
            for ci, (samples, peaks) in enumerate(layers):
                for i, peak in enumerate(peaks):
                    est = chooser(ci, i)
                    placements.append(PlacementParams(
                        packet=f"p{i}", collision=ci,
                        start=peak.position + est.sampling_offset,
                        estimate=est))
            return placements

        if len(candidates) < k:
            return [build(lambda ci, i: max(
                (estimates[(ci, i, fi)]
                 for fi in range(len(candidates))),
                key=lambda e: abs(e.gain)))]
        # The objective is separable (one weight per packet × frequency,
        # summed over captures), so this is a linear-assignment problem:
        # solve it exactly rather than enumerating the P(n, k) injective
        # assignments, which blows up as the client table grows. The
        # runner-up is the best of the k re-solves that each forbid one
        # edge of the optimum.
        weights = np.zeros((k, len(candidates)))
        for (ci, i, fi), est in estimates.items():
            weights[i, fi] += abs(est.gain)
        forbidden = -1e12  # finite: scipy rejects inf entries

        def solve(matrix) -> tuple[float, tuple[int, ...]] | None:
            rows, cols = linear_sum_assignment(matrix, maximize=True)
            total = float(matrix[rows, cols].sum())
            if total < 0.5 * forbidden:
                return None  # forced through a forbidden edge
            return total, tuple(int(c) for c in cols)
        _, best = solve(weights)
        assignments = [best]
        runners: list[tuple[float, tuple[int, ...]]] = []
        for i in range(k):
            reduced = weights.copy()
            reduced[i, best[i]] = forbidden
            solved = solve(reduced)
            if solved is not None:
                runners.append(solved)
        for _, assign in sorted(runners, key=lambda entry: -entry[0]):
            if assign not in assignments:
                assignments.append(assign)
            if len(assignments) == max_assignments:
                break
        return [build(lambda ci, i, a=assign: estimates[(ci, i, a[i])])
                for assign in assignments]

    def _decode_collision_set(self, records: list[CollisionRecord],
                              perms: dict[int, tuple[int, ...]],
                              y: np.ndarray, verdict,
                              n_symbols: int) -> list[DecodeResult]:
        """ZigZag-decode stored collisions plus the new one as one set.

        *records* are ordered oldest first; the new capture is the last
        collision index. Each record's peaks are reordered by its
        *perms* entry so packet ``p{i}`` names the same sender in every
        capture. Returns the successful results (consuming the stored
        records) or an empty list.
        """
        k = len(verdict.peaks)
        if k >= 3:
            layers = [
                (record.samples,
                 [record.peaks[p] for p in perms[id(record)]])
                for record in records
            ] + [(y, list(verdict.peaks))]
            hypotheses = self._acquire_set_placements(layers)
        else:
            placements = []
            for ci, record in enumerate(records):
                perm = perms[id(record)]
                ordered = [record.peaks[p] for p in perm]
                placements.extend(self._acquire_placements(
                    record.samples, _VerdictView(ordered), ci))
            placements.extend(self._acquire_placements(
                y, verdict, len(records)))
            hypotheses = [placements]
        captures = [record.samples for record in records] + [y]
        successes: list[DecodeResult] = []
        for placements in hypotheses:
            specs = {p.packet: PacketSpec(p.packet, n_symbols)
                     for p in placements}
            outcome = self.multi_decoder.decode(captures, specs,
                                                placements)
            successes = [r for r in outcome.results.values() if r.success]
            if successes:
                break
        if not successes:
            return []
        for record in records:
            # The remove must run unconditionally (never inside an
            # assert: python -O would strip the side effect and replay
            # consumed collisions forever).
            removed = self.buffer.remove(record)
            assert removed, \
                "matched collision record vanished from the buffer"
        self.stats.zigzag_matches += 1
        if len(captures) >= 3:
            self.stats.multiway_matches += 1
            self.stats.packets_multiway += len(successes)
        for result in successes:
            self._learn(result)
        return successes

    def _link_scorer(self, a: CollisionRecord,
                     b: CollisionRecord) -> float:
        """Identity score between two *stored* collisions, for the
        buffer's match graph. Permutation-invariant for k >= 3; raises
        :class:`ConfigurationError` when unscoreable (cached as such)."""
        if a.n_peaks != b.n_peaks:
            return 0.0
        if a.n_peaks == 2:
            return self._pair_score(a, b)
        score, perm = self._peak_alignment(a, b)
        if perm is None:
            raise ConfigurationError("no scoreable peak correspondence")
        return score

    def _try_multiway(self, probe: CollisionRecord,
                      matches: list[CollisionRecord],
                      alignments: dict[int, tuple[float,
                                                  tuple[int, ...]]],
                      y: np.ndarray,
                      verdict, n_symbols: int) -> list[DecodeResult]:
        """Assemble and decode a k-way collision set (§4.5).

        Grows the direct matches by the buffer's match-graph component
        (collisions transitively linked through pairwise scores), keeps
        the newest candidates whose per-packet arrival patterns are
        pairwise distinct (a degenerate pair can never be disentangled),
        and attempts the decode even when fewer than k - 1 stored
        collisions are available — partial overlap sometimes supports
        resolving the set early, and a failed schedule costs no engine
        time. On failure the new collision simply joins the buffer and
        waits for the next retransmission.
        """
        k = probe.n_peaks
        threshold = self._set_threshold(k)
        component = self.buffer.component(
            matches, self._link_scorer, threshold)
        candidates = sorted(
            (r for r in matches + component if r.n_peaks == k),
            key=lambda r: -r.sequence)
        probe_offsets = self._aligned_offsets(probe, tuple(range(k)))
        direct = {id(record) for record in matches}
        perms: dict[int, tuple[int, ...]] = {}
        chosen: list[CollisionRecord] = []
        offsets_seen = [probe_offsets]
        for record in candidates:
            entry = alignments.get(id(record))
            if entry is None:
                continue  # unscoreable against the probe
            score, perm = entry
            if id(record) not in direct and score < 0.5 * threshold:
                # Transitively linked only: its direct probe alignment
                # still has to clear a sanity bar for the peak
                # correspondence to be trusted.
                continue
            offsets = self._aligned_offsets(record, perm)
            if any(all(abs(a - b) < 2 for a, b in zip(offsets, seen))
                   for seen in offsets_seen):
                continue  # degenerate against the probe or a chosen one
            perms[id(record)] = perm
            chosen.append(record)
            offsets_seen.append(offsets)
            if len(chosen) == k - 1:
                break
        if not chosen:
            return []
        self.stats.multiway_attempts += 1
        # Oldest first, so collision indices follow arrival order.
        chosen.reverse()
        return self._decode_collision_set(chosen, perms, y, verdict,
                                          n_symbols)

    def _handle_collision(self, y: np.ndarray,
                          verdict) -> list[DecodeResult]:
        cfg = self.config
        k = len(verdict.peaks)
        n_symbols = self._frame_symbols(y, verdict.peaks[0])

        # (a) capture-effect SIC on this single collision (Fig 4-1e).
        if cfg.enable_sic and n_symbols is not None and k == 2:
            placements = self._acquire_placements(y, verdict, 0)
            gains = [abs(p.estimate.gain) for p in placements]
            if max(gains) > 2.5 * min(gains):
                specs = {p.packet: PacketSpec(p.packet, n_symbols)
                         for p in placements}
                results = self.sic.decode(y, specs, placements)
                if all(r.success for r in results.values()):
                    self.stats.sic_decodes += 1
                    return list(results.values())

        # (b) match against stored collisions and ZigZag-decode: the
        # k-way set via the buffer's match graph when the collision holds
        # three or more packets, the classic newest-first pair scan for
        # two (each match attempted until one decodes).
        if n_symbols is not None:
            probe = CollisionRecord(samples=y, peaks=list(verdict.peaks),
                                    sequence=-1)
            matches, alignments = self._direct_matches(probe)
            if k >= 3 and matches:
                results = self._try_multiway(probe, matches, alignments,
                                             y, verdict, n_symbols)
                if results:
                    return results
            elif k == 2:
                for record in matches:
                    results = self._decode_collision_set(
                        [record],
                        {id(record): alignments[id(record)][1]},
                        y, verdict, n_symbols)
                    if results:
                        return results

        # (c) no match: store and wait for the retransmissions.
        if len(self.buffer) == self.config.buffer_capacity:
            self.stats.evictions_capacity += 1
        self.buffer.add(y, verdict.peaks, meta={"rx": self.stats.captures})
        self.stats.collisions_stored += 1
        return []


@dataclass
class _VerdictView:
    """Adapter giving stored peaks the .peaks attribute acquire expects."""

    peaks: list
