"""The ZigZag access point: end-to-end receive-path orchestration.

Implements the paper's implementation flow control (§5.1d):

1. Detect a reception and try the standard decoder.
2. Even when standard decoding succeeds, check for a buried second packet
   (capture-effect collision) and try to recover it by SIC.
3. If standard decoding fails, run collision detection (§4.2.1). On a
   collision, search stored collisions for a match (§4.2.2); on a match,
   ZigZag-decode the pair (§4.2.3); otherwise store the collision in case
   it helps decode a future one.

The receiver also maintains the per-client coarse frequency-offset table
the paper describes ("the AP can maintain coarse estimates of the frequency
offsets of active clients as obtained at the time of association"), updated
from every successful decode.

For running this receiver over Monte-Carlo experiment campaigns, use the
:mod:`repro.runner` subsystem (its ``receiver_stream`` scenario drives
exactly this flow control); ``python -m repro run scenario.toml`` is the
supported experiment entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.phy.constellation import get_constellation
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import HEADER_BITS
from repro.phy.preamble import Preamble, default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.buffer import CollisionBuffer
from repro.receiver.decoder import StandardDecoder
from repro.receiver.frontend import StreamConfig
from repro.receiver.result import DecodeResult
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.detect import CollisionDetector
from repro.zigzag.engine import PacketSpec, PlacementParams
from repro.zigzag.match import match_score
from repro.zigzag.sic import SicDecoder

__all__ = ["ClientTable", "ReceiverConfig", "ReceiverStats",
           "ZigZagReceiver"]


@dataclass
class ClientTable:
    """Per-client coarse frequency-offset estimates (§4.2.1, §4.2.4b).

    Updated with an EWMA from every successful decode; the long-run
    accuracy is far better than a single 32-symbol preamble fit, which is
    exactly why the paper leans on it for collision decoding.
    """

    smoothing: float = 0.25
    _freqs: dict[int, float] = field(default_factory=dict)

    def update(self, src: int, freq_offset: float) -> None:
        """Fold a fresh per-decode offset estimate into the EWMA."""
        if src in self._freqs:
            old = self._freqs[src]
            self._freqs[src] = (1 - self.smoothing) * old \
                + self.smoothing * freq_offset
        else:
            self._freqs[src] = freq_offset

    def get(self, src: int, default: float = 0.0) -> float:
        """The current coarse offset estimate for client *src*."""
        return self._freqs.get(src, default)

    def candidates(self) -> list[float]:
        """Frequency hypotheses for collision detection; always includes 0
        so unknown clients can still be found."""
        values = sorted(set(round(v, 9) for v in self._freqs.values()))
        if not values:
            return [0.0]
        return values

    def __len__(self) -> int:
        return len(self._freqs)


@dataclass(frozen=True)
class ReceiverConfig:
    """Knobs of a ZigZag AP."""

    preamble: Preamble = field(default_factory=default_preamble)
    shaper: PulseShaper = field(default_factory=PulseShaper)
    noise_power: float = 1.0
    sync_threshold: float = 0.5
    # Collision detection runs only after standard decoding fails, so a
    # liberal beta is safe: false positives cost compute, not packets
    # (§5.3a), while false negatives forfeit ZigZag opportunities.
    collision_beta: float = 0.42
    match_threshold: float = 0.25
    match_window: int = 256
    use_backward: bool = True
    enable_sic: bool = True
    track_phase: bool = True
    use_equalizer: bool = True
    buffer_capacity: int = 4
    # Age (in receive() calls) after which a stored collision is pruned.
    # 802.11 retransmissions arrive within a few receptions of the
    # original collision (§4.2.2), so a record this old can never match —
    # it only wastes buffer scans. None disables age pruning (the
    # pre-streaming behaviour); the streaming session driver enables it.
    buffer_max_age: int | None = None
    expected_symbols: int | None = None

    def stream_config(self) -> StreamConfig:
        """The equivalent chunk-decoder configuration."""
        return StreamConfig(
            preamble=self.preamble,
            shaper=self.shaper,
            noise_power=self.noise_power,
            track_phase=self.track_phase,
            use_equalizer=self.use_equalizer,
        )


@dataclass
class ReceiverStats:
    """Running counters of one receiver's life on the air.

    The streaming session driver (:mod:`repro.link`) surfaces these per
    soak run; they are also what distinguishes "ZigZag never engaged"
    from "ZigZag engaged and failed" when a scenario underdelivers.
    """

    captures: int = 0
    clean_decodes: int = 0
    collisions_detected: int = 0
    collisions_stored: int = 0
    zigzag_matches: int = 0
    sic_decodes: int = 0
    short_alignments: int = 0   # stored records skipped as unscoreable
    evictions_capacity: int = 0
    evictions_age: int = 0


class ZigZagReceiver:
    """A best-effort 802.11 AP receiver with ZigZag collision decoding."""

    def __init__(self, config: ReceiverConfig | None = None) -> None:
        self.config = config or ReceiverConfig()
        cfg = self.config
        self.clients = ClientTable()
        self.stats = ReceiverStats()
        self.buffer = CollisionBuffer(cfg.buffer_capacity)
        self.detector = CollisionDetector(cfg.preamble, cfg.shaper,
                                          beta=cfg.collision_beta)
        self.synchronizer = Synchronizer(cfg.preamble, cfg.shaper,
                                         threshold=cfg.collision_beta)
        self.standard = StandardDecoder(
            cfg.preamble, cfg.shaper, noise_power=cfg.noise_power,
            sync_threshold=cfg.sync_threshold,
            track_phase=cfg.track_phase, use_equalizer=cfg.use_equalizer)
        self.pair_decoder = ZigZagPairDecoder(
            cfg.stream_config(), use_backward=cfg.use_backward)
        self.sic = SicDecoder(cfg.stream_config())

    # ------------------------------------------------------------------
    def receive(self, samples) -> list[DecodeResult]:
        """Process one capture; returns every packet decoded from it.

        May return packets from *earlier* captures too: a collision that
        matches a stored one resolves both packets at once.
        """
        y = np.asarray(samples, dtype=complex).ravel()
        self.stats.captures += 1
        self._prune_stale()
        verdict = self.detector.inspect(y, self.clients.candidates())
        if not verdict.peaks:
            return []

        # §5.1(d): always try the standard decoder first — a correlation
        # spike elsewhere in the packet may be a false positive, which
        # "does not prevent correct decoding of that packet".
        strongest = max(verdict.peaks, key=lambda p: p.score)
        result = self.standard.decode(y, start_position=strongest.position)
        if result.success:
            self._learn(result)
            self.stats.clean_decodes += 1
            # Even on success, a genuinely buried second packet may be
            # recoverable (capture scenario); the SIC path inside
            # _handle_collision covers that when decoding *fails*, and a
            # successful standard decode of a clean packet ends here.
            return [result]

        if len(verdict.peaks) >= 2:
            self.stats.collisions_detected += 1
            return self._handle_collision(y, verdict)
        return [result] if result.bits.size else []

    def _prune_stale(self) -> None:
        """Age out stored collisions whose match window has passed."""
        max_age = self.config.buffer_max_age
        if max_age is None:
            return
        cutoff = self.stats.captures - max_age
        self.stats.evictions_age += self.buffer.prune(
            lambda record: record.meta.get("rx", cutoff) >= cutoff)

    # ------------------------------------------------------------------
    def _learn(self, result: DecodeResult) -> None:
        if result.success and result.header is not None \
                and result.estimate is not None:
            self.clients.update(result.header.src,
                                result.estimate.freq_offset)

    def _acquire_placements(self, y: np.ndarray, verdict,
                            collision_index: int
                            ) -> list[PlacementParams]:
        placements = []
        for i, peak in enumerate(verdict.peaks[:2]):
            best: ChannelEstimate | None = None
            for freq in self.clients.candidates():
                est = self.synchronizer.acquire(
                    y, peak.position, coarse_freq=freq,
                    noise_power=self.config.noise_power)
                if best is None or abs(est.gain) > abs(best.gain):
                    best = est
            placements.append(PlacementParams(
                packet=f"p{i}", collision=collision_index,
                start=peak.position + best.sampling_offset,
                estimate=best))
        return placements

    def _frame_symbols(self, y: np.ndarray, peak) -> int | None:
        """Peek the frame length from an interference-free header, or fall
        back to the configured expectation."""
        try:
            result = self.standard.decode(y, start_position=peak.position)
        except ReproError:
            result = DecodeResult.failure("peek failed")
        if result.header is not None:
            k = get_constellation(result.header.modulation).bits_per_symbol
            tail = result.header.payload_bits + 32
            return (len(self.config.preamble) + HEADER_BITS
                    + (tail + k - 1) // k)
        return self.config.expected_symbols

    def _handle_collision(self, y: np.ndarray,
                          verdict) -> list[DecodeResult]:
        cfg = self.config
        n_symbols = self._frame_symbols(y, verdict.peaks[0])

        # (a) capture-effect SIC on this single collision (Fig 4-1e).
        if cfg.enable_sic and n_symbols is not None:
            placements = self._acquire_placements(y, verdict, 0)
            gains = [abs(p.estimate.gain) for p in placements]
            if max(gains) > 2.5 * min(gains):
                specs = {p.packet: PacketSpec(p.packet, n_symbols)
                         for p in placements}
                results = self.sic.decode(y, specs, placements)
                if all(r.success for r in results.values()):
                    self.stats.sic_decodes += 1
                    return list(results.values())

        # (b) match against stored collisions and ZigZag-decode.
        for record in self.buffer.newest_first():
            if len(record.peaks) < 2 or n_symbols is None:
                continue
            d_old = record.offset
            d_new = verdict.offset
            if d_new is None or abs(d_new - d_old) < 2:
                continue  # identical offsets are undecodable (§4.5)
            try:
                score = match_score(
                    record.samples, record.peaks[1].position,
                    y, verdict.peaks[1].position, cfg.match_window)
            except ConfigurationError:
                # A second peak near the tail of either capture leaves
                # fewer than the minimum aligned samples to score — that
                # record simply cannot be matched against this collision.
                # Treat it as "no match" and keep scanning instead of
                # aborting the whole receive call.
                self.stats.short_alignments += 1
                continue
            if score < cfg.match_threshold:
                continue
            old_placements = self._acquire_placements(
                record.samples, _VerdictView(record.peaks), 0)
            new_placements = self._acquire_placements(y, verdict, 1)
            placements = old_placements + new_placements
            specs = {p.packet: PacketSpec(p.packet, n_symbols)
                     for p in old_placements}
            outcome = self.pair_decoder.decode(
                [record.samples, y], specs, placements)
            if any(r.success for r in outcome.results.values()):
                assert self.buffer.remove(record), \
                    "matched collision record vanished from the buffer"
                self.stats.zigzag_matches += 1
                for result in outcome.results.values():
                    self._learn(result)
                return list(outcome.results.values())

        # (c) no match: store and wait for the retransmissions.
        if len(self.buffer) == self.config.buffer_capacity:
            self.stats.evictions_capacity += 1
        self.buffer.add(y, verdict.peaks, meta={"rx": self.stats.captures})
        self.stats.collisions_stored += 1
        return []


@dataclass
class _VerdictView:
    """Adapter giving stored peaks the .peaks attribute acquire expects."""

    peaks: list
