"""Exception hierarchy for the ZigZag reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish decode failures (expected, operational)
from configuration mistakes (programming errors).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A parameter or combination of parameters is invalid.

    Raised eagerly at construction time so misconfiguration never shows up
    later as a silently-wrong result.
    """


class FrameError(ReproError):
    """A PHY frame could not be built or parsed."""


class SyncError(ReproError):
    """Packet-start synchronization failed (no preamble found)."""


class DecodeError(ReproError):
    """A packet failed to decode (checksum mismatch, lost lock, ...).

    This is an *operational* failure: it is the normal signal that a
    reception was not decodable, not a bug.
    """


class CollisionDetectError(ReproError):
    """Collision detection could not run (e.g. signal shorter than preamble)."""


class MatchError(ReproError):
    """No matching prior collision was found for a received collision."""


class ScheduleError(ReproError):
    """The greedy chunk scheduler could not find a complete decode order.

    Corresponds to the paper's "failure" events in Fig 4-7: the collision
    pattern does not satisfy the pairwise different-offset condition of
    Assertion 4.5.1 (or its N-sender analogue).
    """


class TrackingError(ReproError):
    """A tracking loop (phase / timing) diverged beyond recoverable bounds."""
