"""Exception hierarchy for the ZigZag reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish decode failures (expected, operational)
from configuration mistakes (programming errors).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A parameter or combination of parameters is invalid.

    Raised eagerly at construction time so misconfiguration never shows up
    later as a silently-wrong result.
    """


class FrameError(ReproError):
    """A PHY frame could not be built or parsed."""


class SyncError(ReproError):
    """Packet-start synchronization failed (no preamble found)."""


class DecodeError(ReproError):
    """A packet failed to decode (checksum mismatch, lost lock, ...).

    This is an *operational* failure: it is the normal signal that a
    reception was not decodable, not a bug.
    """


class CollisionDetectError(ReproError):
    """Collision detection could not run (e.g. signal shorter than preamble)."""


class MatchError(ReproError):
    """No matching prior collision was found for a received collision."""


class ScheduleError(ReproError):
    """The greedy chunk scheduler could not find a complete decode order.

    Corresponds to the paper's "failure" events in Fig 4-7: the collision
    pattern does not satisfy the pairwise different-offset condition of
    Assertion 4.5.1 (or its N-sender analogue).
    """


class TrackingError(ReproError):
    """A tracking loop (phase / timing) diverged beyond recoverable bounds."""


class FaultInjectionError(ReproError):
    """An error raised on purpose by the chaos-injection harness.

    Never raised outside a run whose spec carries a ``[faults]`` table;
    its appearance in a failure report means the supervisor saw exactly
    the fault the harness injected.
    """


class TrialTimeoutError(ReproError):
    """A trial exceeded the supervisor's per-batch watchdog timeout."""


class WorkerCrashError(ReproError):
    """A worker process died mid-batch (OOM kill, segfault, ``os._exit``).

    The supervisor raises this only after pool respawns and the inline
    fallback have both been exhausted for the affected trials.
    """


class CaptureTransportError(ReproError):
    """A shared-memory capture failed checksum verification on arrival.

    The batched engine treats this as a transport fault, not a trial
    failure: the affected trial is re-synthesized inline from its own
    :class:`~numpy.random.SeedSequence`, so the recovered result is
    bit-identical to an uncorrupted run.
    """


class RunAbortedError(ReproError):
    """A run stopped early under the ``fail_fast`` failure policy.

    Carries the :class:`~repro.runner.resilience.TrialFailure` records
    collected before the abort in :attr:`failures`.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)


def error_class(exc: BaseException) -> str:
    """The taxonomy label for an exception: its most-derived class name.

    :class:`ReproError` subclasses *are* the taxonomy; anything else
    (``ValueError`` from numpy, ``MemoryError``, ...) reports its builtin
    class name so failure accounting still groups meaningfully.
    """
    return type(exc).__name__
