"""Streaming closed-loop AP subsystem: continuous air -> bursts -> ACKs.

The online system of §4.2.2/§4.4: a bounded-memory sample stream
(:mod:`~repro.link.air`), a streaming burst segmenter
(:mod:`~repro.link.segmenter`), design-agnostic AP adapters
(:mod:`~repro.link.aps`) and the N-client closed-loop session driver
(:mod:`~repro.link.session`). The runner's ``ap_stream`` and
``offered_load`` scenarios are built on :class:`LinkSession`.
"""

from repro.link.air import AirConfig, ContinuousAir
from repro.link.aps import StandardAp, ZigZagAp, build_ap
from repro.link.events import EventEngine, EventQueue, RadioState
from repro.link.multicell import (
    MultiCellConfig,
    MultiCellReport,
    MultiCellSession,
)
from repro.link.segmenter import Burst, BurstSegmenter, SegmenterConfig
from repro.link.topology import Topology
from repro.link.session import (
    LinkSession,
    SessionConfig,
    SessionReport,
    StreamClient,
)

__all__ = [
    "AirConfig",
    "Burst",
    "BurstSegmenter",
    "ContinuousAir",
    "EventEngine",
    "EventQueue",
    "LinkSession",
    "MultiCellConfig",
    "MultiCellReport",
    "MultiCellSession",
    "RadioState",
    "SegmenterConfig",
    "SessionConfig",
    "SessionReport",
    "StandardAp",
    "StreamClient",
    "Topology",
    "ZigZagAp",
    "build_ap",
]
