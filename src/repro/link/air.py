"""Bounded-memory continuous air: the medium as a sample *stream*.

The one-shot :func:`repro.phy.medium.synthesize` materializes a whole
capture at once, which caps an experiment at "one collision per call". A
real AP front end instead sees an endless sample stream in which packets
start whenever their senders' MACs fire. :class:`ContinuousAir` models
exactly that: transmissions are scheduled at absolute sample offsets, and
the receiver side pulls fixed-size chunks — noise plus whatever scheduled
waveforms overlap the chunk. Only waveforms that still overlap un-emitted
samples stay resident, so memory is bounded by the longest in-flight
transmission plus one chunk, never by session length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.impairments import ImpairmentPipeline
from repro.phy.medium import Transmission, channel_waveform
from repro.phy.noise import awgn

__all__ = ["AirConfig", "ContinuousAir"]


@dataclass(frozen=True)
class AirConfig:
    """Knobs of the streamed medium."""

    noise_power: float = 1.0
    chunk_samples: int = 2048
    # Optional AP front-end pipeline (clipping, quantization, IQ
    # imbalance, interferers), applied per chunk with the chunk's absolute
    # start index so index-parameterized stages stay continuous across
    # chunk boundaries.
    impairments: ImpairmentPipeline | None = None

    def __post_init__(self) -> None:
        if self.noise_power <= 0:
            raise ConfigurationError("noise_power must be positive")
        if self.chunk_samples < 1:
            raise ConfigurationError("chunk_samples must be >= 1")


class ContinuousAir:
    """Schedules transmissions and emits the received stream in chunks.

    ``schedule`` accepts a :class:`~repro.phy.medium.Transmission` whose
    ``offset`` is an *absolute* sample index on the session clock; the
    sender's channel realization (gain phase, phase noise, tx EVM,
    per-sender impairments) is drawn immediately, anchored at that offset.
    ``emit`` then produces the next chunk of received samples: complex
    AWGN plus every overlapping waveform. Scheduling into already-emitted
    time is an error — the stream is causal.
    """

    def __init__(self, config: AirConfig,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self._active: list[tuple[int, np.ndarray]] = []  # (start, waveform)
        self._cursor = 0            # absolute index of the next new sample
        self.samples_emitted = 0
        self.samples_skipped = 0
        self.samples_injected = 0
        self.samples_clipped = 0
        self.max_resident_samples = 0
        # Optional observer called as ``on_schedule(transmission,
        # waveform)`` for every scheduled transmission — how a
        # multi-cell coordinator learns the realized waveforms it must
        # exchange as inter-cell interference.
        self.on_schedule = None

    # ------------------------------------------------------------------
    @property
    def cursor(self) -> int:
        """Absolute index of the first not-yet-emitted sample."""
        return self._cursor

    @property
    def horizon(self) -> int:
        """Absolute end of the last scheduled waveform (>= cursor)."""
        if not self._active:
            return self._cursor
        return max(start + wave.size for start, wave in self._active)

    @property
    def resident_samples(self) -> int:
        """Waveform samples currently held (the memory bound)."""
        return sum(wave.size for _, wave in self._active)

    # ------------------------------------------------------------------
    def schedule(self, transmission: Transmission) -> int:
        """Place a transmission on the air; returns its waveform length.

        The transmission's channel is realized now, so callers get the
        airtime the packet will actually occupy (pulse-shaping tails and
        channel dispersion included).
        """
        if transmission.offset < self._cursor:
            raise ConfigurationError(
                f"transmission at {transmission.offset} predates emitted "
                f"air (cursor {self._cursor})")
        waveform = channel_waveform(transmission, self.rng)
        self._active.append((transmission.offset, waveform))
        self.max_resident_samples = max(self.max_resident_samples,
                                        self.resident_samples)
        if self.on_schedule is not None:
            self.on_schedule(transmission, waveform)
        return waveform.size

    def inject(self, start: int, waveform: np.ndarray) -> tuple[int, int]:
        """Add an externally-realized waveform (inter-cell interference).

        Unlike :meth:`schedule`, no channel is drawn — the samples land
        as given — and *start* may predate the cursor: interference
        exchanged at a horizon boundary can reach into air this cell
        already emitted, so the already-emitted prefix is clipped away
        (the stream stays causal) and only ``[max(start, cursor),
        start + len)`` is placed on the air. Returns the effective
        ``(start, end)`` span; ``end <= start`` means the waveform fell
        entirely into the past and nothing was placed.
        """
        wave = np.ascontiguousarray(waveform)
        end = start + wave.size
        lo = max(int(start), self._cursor)
        self.samples_clipped += min(max(lo - start, 0), wave.size)
        if lo >= end:
            return (lo, lo)
        self._active.append((lo, wave[lo - start:]))
        self.samples_injected += end - lo
        self.max_resident_samples = max(self.max_resident_samples,
                                        self.resident_samples)
        return (lo, end)

    def skip(self, n_samples: int) -> None:
        """Advance the cursor past *n_samples* of idle air in O(1).

        The span must be silent — no scheduled waveform may overlap it.
        No noise is synthesized and no RNG state is consumed, which is
        what lets the event-driven session core make wall time scale
        with *burst* samples instead of *simulated* samples. The skipped
        span is gone for good: it can never be emitted afterwards.
        """
        if n_samples < 0:
            raise ConfigurationError("skip needs a non-negative count")
        t1 = self._cursor + n_samples
        for start, wave in self._active:
            if start < t1 and self._cursor < start + wave.size:
                raise ConfigurationError(
                    f"cannot skip [{self._cursor}, {t1}): a scheduled "
                    f"waveform at {start} overlaps it")
        self._cursor = t1
        self.samples_skipped += n_samples

    def emit(self, n_samples: int | None = None) -> np.ndarray:
        """The next *n_samples* (default one chunk) of received signal."""
        n = self.config.chunk_samples if n_samples is None else n_samples
        if n < 1:
            raise ConfigurationError("emit needs a positive sample count")
        t0, t1 = self._cursor, self._cursor + n
        chunk = awgn(n, self.config.noise_power, self.rng)
        finished = []
        for slot, (start, wave) in enumerate(self._active):
            end = start + wave.size
            if start < t1 and t0 < end:
                lo = max(start, t0)
                hi = min(end, t1)
                chunk[lo - t0:hi - t0] += wave[lo - start:hi - start]
            if end <= t1:
                finished.append(slot)
        for slot in reversed(finished):
            del self._active[slot]
        front = self.config.impairments
        if front is not None and not front.is_identity:
            chunk = front.apply(chunk, self.rng, t0)
        self._cursor = t1
        self.samples_emitted += n
        return chunk
