"""Access-point adapters: one burst-level interface, two receiver designs.

The session driver is design-agnostic — it hands each segmented burst to
an AP object and acts on the decode results. Two adapters implement the
interface:

- :class:`ZigZagAp` wraps the full :class:`~repro.core.ZigZagReceiver`
  flow control (§5.1d): standard decode first, capture-effect SIC,
  collision-buffer matching and ZigZag pair decoding.
- :class:`StandardAp` is the Current-802.11 baseline (§5.1e): it syncs on
  preamble spikes and applies the plain standard decoder to the strongest
  candidates, with no collision buffer and no interference cancellation.
  Capture-effect receptions emerge naturally when one sender dominates.

Both keep the per-client coarse frequency table the paper's AP maintains
from association time (§4.2.1); the session seeds it.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import (
    ClientTable,
    ReceiverConfig,
    ReceiverStats,
    ZigZagReceiver,
)
from repro.errors import ReproError
from repro.phy.sync import Synchronizer
from repro.receiver.decoder import StandardDecoder
from repro.receiver.result import DecodeResult
from repro.zigzag.detect import CollisionDetector

__all__ = ["ZigZagAp", "StandardAp", "build_ap"]


class ZigZagAp:
    """The paper's AP: ZigZagReceiver behind the burst interface."""

    design = "zigzag"

    def __init__(self, config: ReceiverConfig) -> None:
        self.receiver = ZigZagReceiver(config)

    @property
    def clients(self) -> ClientTable:
        return self.receiver.clients

    @property
    def stats(self) -> ReceiverStats:
        return self.receiver.stats

    def receive(self, samples) -> list[DecodeResult]:
        """Successful decodes from one burst (possibly from earlier
        bursts too: a matched collision resolves its whole set).

        ``ZigZagReceiver.receive`` guarantees successes-only, so the
        results pass through unfiltered — it used to leak a failed
        DecodeResult on the single-peak decode-failure path, which this
        adapter had to filter defensively.
        """
        try:
            return self.receiver.receive(samples)
        except ReproError:
            return []


class StandardAp:
    """Current 802.11: per-spike standard decoding, nothing else."""

    design = "802.11"

    def __init__(self, config: ReceiverConfig) -> None:
        self.config = config
        self.clients = ClientTable()
        self.stats = ReceiverStats()
        # Packet-start detection at the *standard* sync threshold — a
        # plain AP does not hunt for buried preambles.
        self._detector = CollisionDetector(config.preamble, config.shaper,
                                           beta=config.sync_threshold)
        self._sync = Synchronizer(config.preamble, config.shaper,
                                  threshold=config.sync_threshold)
        self._decoder = StandardDecoder(
            config.preamble, config.shaper,
            noise_power=config.noise_power,
            sync_threshold=config.sync_threshold,
            track_phase=config.track_phase,
            use_equalizer=config.use_equalizer)

    def receive(self, samples) -> list[DecodeResult]:
        y = np.asarray(samples, dtype=complex).ravel()
        self.stats.captures += 1
        try:
            peaks = self._detector.find_packets(y, self.clients.candidates())
        except ReproError:
            return []   # burst shorter than the preamble waveform
        if not peaks:
            return []
        strongest = sorted(peaks, key=lambda p: -p.score)[:2]
        if len(strongest) >= 2:
            self.stats.collisions_detected += 1
        results: list[DecodeResult] = []
        seen_src: set[int] = set()
        for peak in strongest:
            best = None
            for freq in self.clients.candidates():
                est = self._sync.acquire(
                    y, peak.position, coarse_freq=freq,
                    noise_power=self.config.noise_power)
                if best is None or abs(est.gain) > abs(best.gain):
                    best = est
            try:
                result = self._decoder.decode(
                    y, start_position=peak.position, estimate=best)
            except ReproError:
                continue
            if not result.success or result.header is None:
                continue
            if result.header.src in seen_src:
                continue
            seen_src.add(result.header.src)
            self.clients.update(result.header.src,
                                result.estimate.freq_offset)
            self.stats.clean_decodes += 1
            results.append(result)
        return results


def build_ap(design: str, config: ReceiverConfig) -> "ZigZagAp | StandardAp":
    """The adapter for a ``spec.design`` name (zigzag / 802.11)."""
    if design == "zigzag":
        return ZigZagAp(config)
    if design == "802.11":
        return StandardAp(config)
    raise ReproError(
        f"no streaming AP for design {design!r}; use 'zigzag' or '802.11'")
