"""Event-driven session core: symbolic MAC time, DSP only where signal is.

The slot-clocked :meth:`~repro.link.session.LinkSession.run` loop walks
``now`` forward one slot at a time, so wall time scales with *simulated
air* even when the medium is idle.  This module replaces that walk with a
heap-ordered event loop in the style of SimPy networking stacks: client
arrivals, backoff expiries, TX starts/ends, ACK deliveries and ACK
timeouts are discrete events carrying absolute sample indices, and the
medium advances *lazily* — noise and burst segmentation are synthesized
only over chunks that overlap a scheduled waveform (or an open burst),
while idle gaps are skipped symbolically in O(1) via
:meth:`ContinuousAir.skip` / :meth:`BurstSegmenter.skip`.

Timing semantics are kept bit-compatible with the slot-clocked core:

- every MAC decision still lands on the global slot grid (events are
  pushed at the smallest slot boundary >= their raw time, exactly where
  the slot loop would have observed the condition);
- at one boundary, chunk processing runs before ACK delivery, which runs
  before client decisions — the same intra-slot order as the ``run``
  loop (emit -> ``_deliver_acks`` -> ``step``);
- carrier sense uses the slot-consistent snapshot rule: a transmission
  occupies ``[start, tx_end)`` and is sensed at boundary ``t`` iff
  ``start < t < tx_end``, so same-boundary decisions are independent of
  client order.

What is *not* preserved is the RNG draw order (idle noise is never
drawn), so an event-driven session equals its slot-clocked twin
statistically, not sample-for-sample — the equivalence suite pins the
reports of both cores on identically-seeded scenarios.
"""

from __future__ import annotations

import heapq
from enum import IntEnum

__all__ = ["RadioState", "EventQueue", "EventEngine",
           "ARRIVAL", "TX_START", "TX_END", "ACK_TIMEOUT",
           "ACK_DELIVERY", "AIR_CHUNK",
           "PRIO_AIR", "PRIO_ACK", "PRIO_CLIENT"]


class RadioState(IntEnum):
    """Per-client MAC radio state (IDLE/CONTEND/TX/AWAIT_ACK machine).

    The numeric order matches the session's historical constants, so
    slot-clocked code comparing states keeps working unchanged.
    """

    IDLE = 0        # no packet pending; waiting for the next arrival
    CONTEND = 1     # backoff counting down on idle slot boundaries
    TX = 2          # waveform on the air until ``tx_end``
    AWAIT_ACK = 3   # transmitted; ACK must land before ``ack_deadline``
    DONE = 4        # all of this client's packets resolved


# Event kinds.
ARRIVAL = "arrival"          # a client's next packet arrives
TX_START = "tx_start"        # backoff expired on an idle boundary
TX_END = "tx_end"            # waveform left the air
ACK_TIMEOUT = "ack_timeout"  # no ACK within the timeout window
ACK_DELIVERY = "ack"         # a planned ACK reaches its sender
AIR_CHUNK = "air_chunk"      # synthesize/segment one chunk of medium

# Same-boundary ordering, mirroring the slot loop's intra-slot order
# (chunk emission, then _deliver_acks, then client steps in list order).
PRIO_AIR, PRIO_ACK, PRIO_CLIENT = range(3)


class EventQueue:
    """A heap of ``(time, priority, tiebreak, seq, kind, data)`` events.

    ``time`` is an absolute sample index; ``priority`` orders co-timed
    events across layers (air < ACK < client); ``tiebreak`` orders
    co-timed events inside a layer (client list index, or chunk end for
    air events — the slot loop's sequential-step order); ``seq`` makes
    the ordering total and FIFO-stable.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self.pushed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, priority: int, tiebreak: int,
             kind: str, data=None) -> None:
        heapq.heappush(self._heap,
                       (time, priority, tiebreak, self._seq, kind, data))
        self._seq += 1
        self.pushed += 1

    def pop(self) -> tuple:
        return heapq.heappop(self._heap)

    def peek_time(self) -> int | None:
        """Absolute time of the earliest queued event (None when empty)."""
        return self._heap[0][0] if self._heap else None


class EventEngine:
    """Drive one :class:`~repro.link.session.LinkSession` by events.

    The engine owns the event heap and the lazy-air bookkeeping; all
    domain state (client states, flows, counters, the AP, the air, the
    segmenter, ACK planning) lives on the session and is shared verbatim
    with the slot-clocked core.
    """

    def __init__(self, session) -> None:
        self.s = session
        self.q = EventQueue()
        self.slot = session.config.slot_samples
        self.chunk = session.config.chunk_samples
        self.now = 0
        # Client list index -> (start, tx_end) of its in-flight waveform.
        self.active_tx: dict[int, tuple[int, int]] = {}
        # Chunk-end indices with a pending AIR_CHUNK event.
        self.pending_chunks: set[int] = set()
        self.done = sum(1 for c in session.clients
                        if c.state == RadioState.DONE)
        seg = session.segmenter.config
        # Noise context synthesized around each waveform: enough history
        # ahead of the edge for the open detector's reach-back, enough
        # tail for the hang window to confirm silence and close.
        self._lead = seg.open_window + seg.pad
        self._tail = 2 * seg.hang_window

    # ------------------------------------------------------------------
    def _boundary(self, t: int) -> int:
        """Smallest slot-grid boundary >= *t* (where the slot loop would
        first observe a condition raised at raw time *t*)."""
        return -(-int(t) // self.slot) * self.slot

    # ------------------------------------------------------------------
    def run(self, started: float):
        self.start()
        self.step_until(None)
        return self.finish(started)

    def start(self) -> None:
        """Arm the engine: seed initial arrivals, derive the runaway cap.

        Splitting the old monolithic ``run`` into ``start`` /
        :meth:`step_until` / :meth:`finish` lets a multi-cell
        coordinator interleave several engines on one shared horizon;
        ``run`` composes the three for the single-cell case.
        """
        s = self.s
        self.max_samples = s._max_samples()
        self.timed_out = False
        self.finished = self.done >= len(s.clients)
        for c in s.clients:
            if c.state == RadioState.IDLE:
                self.q.push(max(self._boundary(c.next_arrival), 0),
                            PRIO_CLIENT, c.index, ARRIVAL, (c.index, c.gen))

    def next_time(self) -> int | None:
        """Earliest pending event time (None when finished or drained)."""
        if self.finished:
            return None
        return self.q.peek_time()

    def step_until(self, t_stop: int | None) -> bool:
        """Dispatch every event with time < *t_stop* (all, when None).

        Returns True while the session is still live (events at or past
        *t_stop* remain); False once every client resolved, the queue
        drained, or the runaway cap fired — after which only
        :meth:`finish` remains to be called.
        """
        s = self.s
        while not self.finished:
            if self.done >= len(s.clients) or not len(self.q):
                self.finished = True
                break
            if t_stop is not None and self.q.peek_time() >= t_stop:
                return True
            time_, _prio, _tie, _seq, kind, data = self.q.pop()
            if time_ >= self.max_samples:
                self.timed_out = True
                self.now = self._boundary(self.max_samples)
                self.finished = True
                break
            self.now = max(self.now, time_)
            if kind == AIR_CHUNK:
                self._on_chunk(data, self.now)
            elif kind == ACK_DELIVERY:
                self._on_ack(data, self.now)
            elif kind == ARRIVAL:
                self._on_arrival(data, self.now)
            elif kind == TX_START:
                self._on_tx_start(data, self.now)
            elif kind == TX_END:
                self._on_tx_end(data, self.now)
            elif kind == ACK_TIMEOUT:
                self._on_ack_timeout(data, self.now)
        return False

    def finish(self, started: float):
        """Close the session out (flush, late ACKs, cap accounting)."""
        return self.s._finalize(self.now, self.timed_out, started)

    # ------------------------------------------------------------------
    # Medium: lazy synthesis over covered chunks only.
    def _schedule_chunk(self, chunk_end: int) -> None:
        if chunk_end in self.pending_chunks \
                or chunk_end <= self.s.air.cursor:
            return
        self.pending_chunks.add(chunk_end)
        self.q.push(max(self._boundary(chunk_end), self.now),
                    PRIO_AIR, chunk_end, AIR_CHUNK, chunk_end)

    def cover_air(self, start: int, end: int) -> None:
        """Schedule synthesis for every chunk a waveform (plus noise
        context) touches; everything between stays symbolic.

        Public because it is the injection contract of the multi-cell
        coordinator: after :meth:`ContinuousAir.inject` lands foreign
        energy on ``[start, end)``, the owning engine must synthesize
        the touched chunks instead of skipping them symbolically.
        """
        lo = max((start - self._lead) // self.chunk, 0)
        hi = (end + self._tail) // self.chunk
        for k in range(lo, hi + 1):
            self._schedule_chunk((k + 1) * self.chunk)

    # Backward-compatible alias for the pre-public spelling.
    _cover_air = cover_air

    def _on_chunk(self, chunk_end: int, now: int) -> None:
        s = self.s
        self.pending_chunks.discard(chunk_end)
        if chunk_end <= s.air.cursor:
            return
        gap = chunk_end - self.chunk - s.air.cursor
        if gap > 0:
            if s.segmenter.is_open:
                # An open burst must see a gapless stream; synthesize the
                # uncovered span instead of skipping it. (Continuation
                # scheduling makes this path unreachable in practice.)
                while s.air.cursor < chunk_end - self.chunk:
                    step = min(self.chunk,
                               chunk_end - self.chunk - s.air.cursor)
                    self._feed(s.air.emit(step), now)
            else:
                s.air.skip(gap)
                s.segmenter.skip(gap)
        self._feed(s.air.emit(self.chunk), now)
        if s.segmenter.is_open:
            # A burst outlived its scheduled coverage (e.g. back-to-back
            # collisions): keep the air flowing until it closes.
            self._schedule_chunk(chunk_end + self.chunk)

    def _feed(self, samples, now: int) -> None:
        s = self.s
        for burst in s.segmenter.push(samples):
            s._process_burst(burst, now)
        # _process_burst plans ACKs onto the session's time-ordered
        # queue; lift them onto the event heap (delivered at the first
        # boundary >= their air time, like _deliver_acks would).
        while s._ack_queue:
            at, src, seq = heapq.heappop(s._ack_queue)
            self.q.push(max(self._boundary(at), now), PRIO_ACK, 0,
                        ACK_DELIVERY, (src, seq))

    # ------------------------------------------------------------------
    # MAC events.
    def _on_ack(self, key: tuple[int, int], now: int) -> None:
        s = self.s
        if key not in s.truth:
            return              # stale ACK for a resolved key: dropped
        s.acked.add(key)
        client = s._by_src.get(key[0])
        if client is None or client.key != key:
            return
        if client.state in (RadioState.CONTEND, RadioState.AWAIT_ACK):
            self._resolve(client, now)
        # In TX the client acts on the ACK at its own TX_END boundary.

    def _on_arrival(self, data: tuple[int, int], now: int) -> None:
        idx, gen = data
        client = self.s.clients[idx]
        if client.gen != gen or client.state != RadioState.IDLE:
            return
        client._begin_packet(now)
        self._schedule_tx(client, now)

    def _on_tx_start(self, data: tuple[int, int], now: int) -> None:
        s = self.s
        idx, gen = data
        client = s.clients[idx]
        if client.gen != gen or client.state != RadioState.CONTEND:
            return
        client._transmit(now)
        self.active_tx[idx] = (now, client.tx_end)
        self.q.push(self._boundary(client.tx_end), PRIO_CLIENT, idx,
                    TX_END, (idx, client.gen))
        self.cover_air(now, client.tx_end)
        # Freeze the backoff of contenders that sense this transmission.
        # Snapshot rule: the new waveform is not sensed at its own start
        # boundary, so a pending same-boundary TX_START still fires (a
        # genuine same-slot collision) and decrements through *now* have
        # already happened.
        for other in s.clients:
            if other.index == idx \
                    or other.state != RadioState.CONTEND \
                    or not s._sense[other.index, idx] \
                    or other.pending_tx_time <= now:
                continue
            consumed = 0
            if now >= other.contend_anchor:
                consumed = (now - other.contend_anchor) // self.slot + 1
            other.backoff = max(other.backoff - consumed, 0)
            self._schedule_tx(other, now)

    def _on_tx_end(self, data: tuple[int, int], now: int) -> None:
        s = self.s
        idx, gen = data
        client = s.clients[idx]
        if client.gen != gen or client.state != RadioState.TX:
            return
        self.active_tx.pop(idx, None)
        if client.key in s.acked:       # ACK landed mid-transmission
            self._resolve(client, now)
            return
        client.state = RadioState.AWAIT_ACK
        client.ack_deadline = client.tx_end + s.ack_timeout
        self.q.push(self._boundary(client.ack_deadline), PRIO_CLIENT, idx,
                    ACK_TIMEOUT, (idx, client.gen))

    def _on_ack_timeout(self, data: tuple[int, int], now: int) -> None:
        s = self.s
        idx, gen = data
        client = s.clients[idx]
        if client.gen != gen or client.state != RadioState.AWAIT_ACK:
            return
        if client.key in s.acked:       # pragma: no cover - ACK events
            self._resolve(client, now)  # at this boundary resolve first
            return
        s.counters["ack_timeouts"] += 1
        client.attempt += 1
        if client.attempt >= s.config.max_attempts:
            s.counters["packets_dropped"] += 1
            self._resolve(client, now)
        else:
            client.backoff = s.config.backoff.pick(client.attempt, s.rng)
            client.state = RadioState.CONTEND
            self._schedule_tx(client, now)

    # ------------------------------------------------------------------
    def _busy_until(self, client) -> int:
        """Absolute end of the latest in-flight transmission this client
        senses (0 when its medium is idle)."""
        s = self.s
        ends = [end for idx, (_start, end) in self.active_tx.items()
                if s._sense[client.index, idx]]
        return max(ends, default=0)

    def _schedule_tx(self, client, now: int) -> None:
        """(Re)compute when *client*'s backoff expires and push TX_START.

        The first decrement boundary is the first boundary after *now*
        at which the client's sensed medium is idle (boundary >= every
        sensed transmission's end); with ``backoff`` decrements left the
        transmission fires ``backoff`` slots after that. Any sensed TX
        starting in between re-invokes this with the decrements consumed
        so far subtracted — the frozen-backoff rule, computed in O(1)
        instead of slot by slot.
        """
        anchor = now + self.slot
        busy_until = self._busy_until(client)
        if busy_until > anchor:
            anchor = self._boundary(busy_until)
        client.contend_anchor = anchor
        client.pending_tx_time = anchor + client.backoff * self.slot
        client.gen += 1
        self.q.push(client.pending_tx_time, PRIO_CLIENT, client.index,
                    TX_START, (client.index, client.gen))

    def _resolve(self, client, now: int) -> None:
        """Close the client's current packet and schedule what follows."""
        client.gen += 1             # invalidate in-flight MAC events
        client._resolve(now)
        if client.state == RadioState.DONE:
            self.done += 1
            return
        self.q.push(max(self._boundary(client.next_arrival),
                        now + self.slot),
                    PRIO_CLIENT, client.index, ARRIVAL,
                    (client.index, client.gen))
