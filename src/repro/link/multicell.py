"""Multi-cell coordinator: one EventEngine per AP, one shared horizon.

Scales the closed-loop session from one AP to a city block: every cell
of a :class:`~repro.testbed.deployment.Deployment` runs its own
:class:`~repro.link.session.LinkSession` (own clients, own
:class:`~repro.link.air.ContinuousAir`, own AP) driven by its own
:class:`~repro.link.events.EventEngine`, and a coordinator advances all
engines in lockstep windows of a common *event horizon* (a fixed number
of air chunks). At each horizon boundary the cells exchange inter-cell
interference: every waveform scheduled during the window is injected
into each other cell whose AP hears that client above a floor, scaled
by the cross-link/home-link SNR ratio with a fresh carrier phase (the
cross channel is a different path), via :meth:`ContinuousAir.inject`.

Two deliberate approximations, both consequences of exchanging at
horizon boundaries rather than per sample:

- interference that reaches into air a victim cell already emitted is
  clipped at the victim's cursor (counted in ``samples_clipped``);
  shrink ``horizon_chunks`` to tighten the exchange;
- cross-cell *carrier sense* is not modeled — by construction a
  deployment's cells are separated beyond carrier-sense range, so
  cross-cell energy appears at the victim **AP** as decode-degrading
  interference, not at its clients as channel-busy.

Each engine keeps its own runaway cap, so a stuck cell times out alone
without stalling the block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.link.events import EventEngine
from repro.link.session import LinkSession, SessionReport

__all__ = ["MultiCellConfig", "MultiCellReport", "MultiCellSession"]


@dataclass(frozen=True)
class MultiCellConfig:
    """Knobs of the coordinator."""

    # Horizon window length, in air chunks: engines run independently
    # inside a window and exchange interference at its end.
    horizon_chunks: int = 4
    # Inject a cross-cell waveform only when the transmitting client's
    # SNR at the victim AP is at least this (dB); weaker cross links
    # stay below the noise the victim already synthesizes.
    interference_floor_db: float = -2.0

    def __post_init__(self) -> None:
        if self.horizon_chunks < 1:
            raise ConfigurationError("horizon_chunks must be >= 1")


@dataclass
class MultiCellReport:
    """What one coordinated multi-cell run produced, block-wide."""

    design: str
    cells: dict[int, SessionReport]     # keyed by AP index
    counters: dict[str, float]
    elapsed_s: float = 0.0

    @property
    def total_delivered(self) -> int:
        return sum(r.total_delivered for r in self.cells.values())

    @property
    def timed_out_cells(self) -> int:
        return sum(1 for r in self.cells.values() if r.timed_out)

    @property
    def samples_elapsed(self) -> int:
        """Block time: the latest cell's elapsed medium time."""
        return max((r.samples_elapsed for r in self.cells.values()),
                   default=0)

    @property
    def max_resident_samples(self) -> float:
        """Sum of per-cell resident-sample peaks (the memory bound)."""
        return sum(r.counters["max_resident_samples"]
                   for r in self.cells.values())

    def throughput(self) -> float:
        """Block throughput: the sum of per-cell throughputs (cells are
        parallel media; each is normalized by its own elapsed time)."""
        return sum(r.throughput() for r in self.cells.values())


@dataclass
class _CellRuntime:
    """One cell's live state inside the coordinator."""

    plan: object                        # CellPlan
    session: LinkSession
    engine: EventEngine
    # name -> (global client index, SNR at the serving AP)
    lookup: dict[str, tuple[int, float]] = field(default_factory=dict)
    # Waveforms scheduled during the current window:
    # (offset, waveform, global client index, home-link snr_db).
    window: list = field(default_factory=list)
    report: SessionReport | None = None


class MultiCellSession:
    """Drive every cell of a deployment to completion, coupled.

    *cells* pairs each :class:`~repro.testbed.deployment.CellPlan` with
    a ready-built :class:`LinkSession` whose clients carry the plan's
    names and serving-AP SNRs (see
    ``repro.runner.builders.build_cell_session``). Sessions must use the
    event engine — the slot-clocked core has no step-wise API.
    """

    def __init__(self, deployment, cells, *,
                 config: MultiCellConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if not cells:
            raise ConfigurationError(
                "multi-cell session needs at least one cell")
        self.deployment = deployment
        self.config = config or MultiCellConfig()
        # Coordinator randomness: the fresh carrier phase of every
        # injected cross-cell waveform (a different propagation path
        # than the home link realized).
        self.rng = rng or np.random.default_rng(0)
        self.cells: list[_CellRuntime] = []
        seen = set()
        for plan, session in cells:
            if plan.ap in seen:
                raise ConfigurationError(
                    f"duplicate cell for AP {plan.ap}")
            seen.add(plan.ap)
            if session.config.engine != "event":
                raise ConfigurationError(
                    "multi-cell coordination needs engine='event' "
                    "sessions (the slot core has no step-wise API)")
            lookup = {}
            for state in session.clients:
                name = state.client.name
                lookup[name] = (plan.client_index(name),
                                state.client.snr_db)
            self.cells.append(_CellRuntime(
                plan=plan, session=session,
                engine=EventEngine(session), lookup=lookup))
        # The shared horizon rides the largest chunk size in the block.
        chunk = max(rt.session.config.chunk_samples for rt in self.cells)
        self.horizon = self.config.horizon_chunks * chunk
        self.counters: dict[str, float] = {
            "windows": 0, "injections": 0, "injections_skipped": 0,
            "samples_injected": 0, "samples_clipped": 0,
        }

    # ------------------------------------------------------------------
    def _exchange(self, live: list[_CellRuntime]) -> None:
        """Inject every window-scheduled waveform into the other cells
        whose AP hears its transmitter above the interference floor."""
        floor = self.config.interference_floor_db
        for src in self.cells:
            for offset, wave, client, snr_home in src.window:
                for dst in live:
                    if dst is src:
                        continue
                    snr_vic = self.deployment.ap_client_snr(
                        dst.plan.ap, client)
                    if snr_vic < floor:
                        continue
                    # Amplitude re-scaled from the home link to the
                    # cross link; fresh phase for the different path.
                    scale = 10.0 ** ((snr_vic - snr_home) / 20.0) \
                        * np.exp(1j * self.rng.uniform(0, 2 * np.pi))
                    air = dst.session.air
                    clipped_before = air.samples_clipped
                    lo, end = air.inject(offset, wave * scale)
                    self.counters["samples_clipped"] += \
                        air.samples_clipped - clipped_before
                    if end <= lo:
                        self.counters["injections_skipped"] += 1
                        continue
                    self.counters["injections"] += 1
                    self.counters["samples_injected"] += end - lo
                    # The victim engine must synthesize the touched
                    # chunks (plus segmenter context) instead of
                    # skipping them symbolically.
                    dst.engine._cover_air(lo, end)
            src.window.clear()

    def run(self) -> MultiCellReport:
        started = time.perf_counter()
        for rt in self.cells:
            recorder = self._make_recorder(rt)
            rt.session.air.on_schedule = recorder
            rt.engine.start()
        live = [rt for rt in self.cells if not rt.engine.finished]
        for rt in self.cells:
            if rt.engine.finished and rt.report is None:
                rt.report = rt.engine.finish(started)
        window_end = 0
        while live:
            self.counters["windows"] += 1
            # Advance to the window containing the earliest pending
            # event, so a block-wide idle span costs one iteration, not
            # one iteration per horizon.
            pending = [t for t in (rt.engine.next_time() for rt in live)
                       if t is not None]
            window_end += self.horizon
            if pending:
                aligned = (min(pending) // self.horizon) * self.horizon
                window_end = max(window_end, aligned + self.horizon)
            for rt in live:
                if not rt.engine.step_until(window_end):
                    rt.report = rt.engine.finish(started)
            # Exchange after every cell reached the boundary — including
            # the final window of a cell that just finished, whose last
            # transmissions still interfere with its neighbours.
            live = [rt for rt in self.cells if rt.report is None]
            self._exchange(live)
        for rt in self.cells:
            rt.session.air.on_schedule = None
        return MultiCellReport(
            design=self.cells[0].session.design,
            cells={rt.plan.ap: rt.report for rt in self.cells},
            counters=dict(self.counters),
            elapsed_s=time.perf_counter() - started,
        )

    def _make_recorder(self, rt: _CellRuntime):
        def record(transmission, waveform) -> None:
            client, snr_home = rt.lookup[transmission.label]
            rt.window.append(
                (transmission.offset, waveform, client, snr_home))
        return record
