"""Multi-cell coordinator: one EventEngine per AP, one shared horizon.

Scales the closed-loop session from one AP to a city block: every cell
of a :class:`~repro.testbed.deployment.Deployment` runs its own
:class:`~repro.link.session.LinkSession` (own clients, own
:class:`~repro.link.air.ContinuousAir`, own AP) driven by its own
:class:`~repro.link.events.EventEngine`, and a coordinator advances all
engines in lockstep windows of a common *event horizon* (a fixed number
of air chunks). At each horizon boundary the cells exchange inter-cell
interference: every waveform scheduled during the window is injected
into each other cell whose AP hears that client above a floor, scaled
by the cross-link/home-link SNR ratio with a fresh carrier phase (the
cross channel is a different path), via :meth:`ContinuousAir.inject`.

The exchange is **order-independent by construction**: every injected
carrier phase is derived from a :class:`numpy.random.SeedSequence`
keyed by ``(window, src AP, dst AP, transmission seq)`` rather than
drawn from a shared sequential stream, and the victim set of each
transmitter is precomputed once from the deployment SNR matrix. That
makes the coordinator's output a pure function of the per-cell sessions
plus the keys — which is what lets the process-parallel execution mode
(``MultiCellConfig.workers > 1``, see :mod:`repro.link.parallel`)
produce *bit-identical* reports at any worker count.

Two deliberate approximations, both consequences of exchanging at
horizon boundaries rather than per sample:

- interference that reaches into air a victim cell already emitted is
  clipped at the victim's cursor (counted in ``samples_clipped``);
  shrink ``horizon_chunks`` to tighten the exchange;
- cross-cell *carrier sense* is not modeled — by construction a
  deployment's cells are separated beyond carrier-sense range, so
  cross-cell energy appears at the victim **AP** as decode-degrading
  interference, not at its clients as channel-busy.

Each engine keeps its own runaway cap, so a stuck cell times out alone
without stalling the block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.link.events import EventEngine
from repro.link.session import LinkSession, SessionReport

__all__ = ["MultiCellConfig", "MultiCellReport", "MultiCellSession",
           "apply_injection"]


@dataclass(frozen=True)
class MultiCellConfig:
    """Knobs of the coordinator."""

    # Horizon window length, in air chunks: engines run independently
    # inside a window and exchange interference at its end.
    horizon_chunks: int = 4
    # Inject a cross-cell waveform only when the transmitting client's
    # SNR at the victim AP is at least this (dB); weaker cross links
    # stay below the noise the victim already synthesizes.
    interference_floor_db: float = -2.0
    # Cell worker processes: 1 steps every cell sequentially in this
    # process, N > 1 pins cells to N persistent workers that step each
    # window concurrently (see repro.link.parallel), 0 means one worker
    # per cell. Results are bit-identical at any value.
    workers: int = 1
    # Barrier watchdog: a worker that takes longer than this to reach a
    # horizon boundary (or to apply its injections) is presumed hung;
    # the pool is torn down and the block reruns sequentially.
    step_timeout_s: float = 60.0
    # Optional chaos injection inside cell workers (a
    # repro.runner.chaos.FaultSpec); used by the resilience tests to
    # prove the degrade-to-sequential path.
    faults: object | None = None

    def __post_init__(self) -> None:
        if self.horizon_chunks < 1:
            raise ConfigurationError("horizon_chunks must be >= 1")
        if self.workers < 0:
            raise ConfigurationError("workers must be >= 0 (0 = auto)")
        if self.step_timeout_s <= 0:
            raise ConfigurationError("step_timeout_s must be > 0")


@dataclass
class MultiCellReport:
    """What one coordinated multi-cell run produced, block-wide.

    ``workers`` and ``degraded`` are execution metadata — *how* the run
    was driven, not what it computed — and are excluded from the
    bit-identity contract between the sequential and parallel modes.
    """

    design: str
    cells: dict[int, SessionReport]     # keyed by AP index
    counters: dict[str, float]
    elapsed_s: float = 0.0
    workers: int = 1
    degraded: bool = False

    @property
    def total_delivered(self) -> int:
        return sum(r.total_delivered for r in self.cells.values())

    @property
    def timed_out_cells(self) -> int:
        return sum(1 for r in self.cells.values() if r.timed_out)

    @property
    def samples_elapsed(self) -> int:
        """Block time: the latest cell's elapsed medium time."""
        return max((r.samples_elapsed for r in self.cells.values()),
                   default=0)

    @property
    def max_resident_samples(self) -> float:
        """Sum of per-cell resident-sample peaks (the memory bound)."""
        return sum(r.counters["max_resident_samples"]
                   for r in self.cells.values())

    def throughput(self) -> float:
        """Block throughput: the sum of per-cell throughputs (cells are
        parallel media; each is normalized by its own elapsed time)."""
        return sum(r.throughput() for r in self.cells.values())


@dataclass
class _CellRuntime:
    """One cell's live state inside the coordinator."""

    index: int                          # position in the cell list
    plan: object                        # CellPlan
    session: LinkSession
    engine: EventEngine
    # name -> (global client index, SNR at the serving AP)
    lookup: dict[str, tuple[int, float]] = field(default_factory=dict)
    # Waveforms scheduled during the current window:
    # (offset, waveform, global client index, home-link snr_db).
    window: list = field(default_factory=list)
    report: SessionReport | None = None


def apply_injection(session, engine, offset: int, wave, scale,
                    counters: dict[str, float]) -> None:
    """Inject ``wave * scale`` at *offset* into one victim cell.

    The one true injection path, shared by the sequential coordinator
    and the parallel cell workers so their accounting (and their float
    arithmetic) cannot drift apart: clip accounting, skip-vs-live
    counters, and the forced chunk coverage that makes the victim
    engine synthesize what it would otherwise skip symbolically.
    """
    air = session.air
    clipped_before = air.samples_clipped
    lo, end = air.inject(offset, wave * scale)
    counters["samples_clipped"] += air.samples_clipped - clipped_before
    if end <= lo:
        counters["injections_skipped"] += 1
        return
    counters["injections"] += 1
    counters["samples_injected"] += end - lo
    engine.cover_air(lo, end)


class MultiCellSession:
    """Drive every cell of a deployment to completion, coupled.

    *cells* pairs each :class:`~repro.testbed.deployment.CellPlan` with
    a ready-built :class:`LinkSession` whose clients carry the plan's
    names and serving-AP SNRs (see
    ``repro.runner.builders.build_cell_session``). Sessions must use the
    event engine — the slot-clocked core has no step-wise API.

    With ``config.workers != 1`` the block is stepped by a pool of
    persistent cell-worker processes (:mod:`repro.link.parallel`); a
    hung or crashed worker degrades the run to sequential stepping with
    identical results (the parent's sessions are never mutated until a
    mode commits).
    """

    def __init__(self, deployment, cells, *,
                 config: MultiCellConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if not cells:
            raise ConfigurationError(
                "multi-cell session needs at least one cell")
        self.deployment = deployment
        self.config = config or MultiCellConfig()
        # Coordinator randomness: a single entropy draw that keys the
        # fresh carrier phase of every injected cross-cell waveform (a
        # different propagation path than the home link realized). The
        # phases themselves come from SeedSequences keyed by
        # (window, src AP, dst AP, transmission seq), so they are
        # independent of cell iteration order — and of execution mode.
        self.rng = rng or np.random.default_rng(0)
        self._phase_entropy = int(self.rng.integers(1 << 63))
        self.cells: list[_CellRuntime] = []
        seen = set()
        for plan, session in cells:
            if plan.ap in seen:
                raise ConfigurationError(
                    f"duplicate cell for AP {plan.ap}")
            seen.add(plan.ap)
            if session.config.engine != "event":
                raise ConfigurationError(
                    "multi-cell coordination needs engine='event' "
                    "sessions (the slot core has no step-wise API)")
            lookup = {}
            for state in session.clients:
                name = state.client.name
                lookup[name] = (plan.client_index(name),
                                state.client.snr_db)
            self.cells.append(_CellRuntime(
                index=len(self.cells), plan=plan, session=session,
                engine=EventEngine(session), lookup=lookup))
        # The shared horizon rides the largest chunk size in the block.
        chunk = max(rt.session.config.chunk_samples for rt in self.cells)
        self.horizon = self.config.horizon_chunks * chunk
        self.counters: dict[str, float] = {
            "windows": 0, "injections": 0, "injections_skipped": 0,
            "samples_injected": 0, "samples_clipped": 0,
        }
        # Victim prefilter: for every transmitting client, the cells
        # whose AP hears it above the interference floor — resolved
        # once from the deployment SNR matrix instead of per waveform.
        floor = self.config.interference_floor_db
        self._victims: dict[int, tuple[tuple[int, float], ...]] = {}
        for src in self.cells:
            for client, _snr_home in src.lookup.values():
                hearers = []
                for dst in self.cells:
                    if dst.index == src.index:
                        continue
                    snr_vic = float(self.deployment.ap_client_snr(
                        dst.plan.ap, client))
                    if snr_vic >= floor:
                        hearers.append((dst.index, snr_vic))
                self._victims[client] = tuple(hearers)
        # Set when a parallel run degraded to sequential (diagnostics).
        self.degrade_reason: str | None = None

    # ------------------------------------------------------------------
    # Exchange planning (shared by the sequential and parallel modes)
    # ------------------------------------------------------------------
    def _injected_phase(self, window: int, src_ap: int, dst_ap: int,
                        seq: int) -> float:
        """The carrier phase of one cross-cell injection, keyed — not
        drawn from a shared stream — so any evaluation order (or
        process) produces the same value."""
        sequence = np.random.SeedSequence(
            entropy=self._phase_entropy,
            spawn_key=(int(window), int(src_ap), int(dst_ap), int(seq)))
        return float(np.random.default_rng(sequence)
                     .uniform(0.0, 2.0 * np.pi))

    def _iter_exchange(self, window: int, meta, live_mask):
        """Yield ``(src_idx, seq, dst_idx, offset, scale)`` in canonical
        order: source cells in block order, each source's transmissions
        in schedule order, victims in block order.

        ``meta[src_idx]`` is that cell's window metadata — a sequence of
        ``(offset, global client index, home snr_db)`` — which is all
        the planner needs; the waveform samples themselves stay wherever
        the executing mode keeps them (in-process lists, or the shared
        waveform arena).
        """
        for src_idx, entries in enumerate(meta):
            src_ap = self.cells[src_idx].plan.ap
            for seq, (offset, client, snr_home) in enumerate(entries):
                for dst_idx, snr_vic in self._victims.get(client, ()):
                    if not live_mask[dst_idx]:
                        continue
                    # Amplitude re-scaled from the home link to the
                    # cross link; fresh phase for the different path.
                    dst_ap = self.cells[dst_idx].plan.ap
                    scale = 10.0 ** ((snr_vic - snr_home) / 20.0) \
                        * np.exp(1j * self._injected_phase(
                            window, src_ap, dst_ap, seq))
                    yield src_idx, seq, dst_idx, offset, scale

    def _exchange(self, live: list[_CellRuntime]) -> None:
        """Inject every window-scheduled waveform into the other cells
        whose AP hears its transmitter above the interference floor."""
        window = int(self.counters["windows"])
        live_mask = [rt in live for rt in self.cells]
        meta = [[(offset, client, snr_home)
                 for offset, _wave, client, snr_home in rt.window]
                for rt in self.cells]
        for src_idx, seq, dst_idx, offset, scale in \
                self._iter_exchange(window, meta, live_mask):
            wave = self.cells[src_idx].window[seq][1]
            dst = self.cells[dst_idx]
            apply_injection(dst.session, dst.engine, offset, wave,
                            scale, self.counters)
        for rt in self.cells:
            rt.window.clear()

    def _aligned_window_end(self, window_end: int,
                            pending: list[int]) -> int:
        """Advance to the window containing the earliest pending event,
        so a block-wide idle span costs one iteration, not one per
        horizon. Shared verbatim with the parallel coordinator."""
        window_end += self.horizon
        if pending:
            aligned = (min(pending) // self.horizon) * self.horizon
            window_end = max(window_end, aligned + self.horizon)
        return window_end

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def effective_workers(self) -> int:
        """The worker-process count ``run`` will actually use."""
        workers = self.config.workers
        if workers == 0:
            workers = len(self.cells)
        return max(1, min(workers, len(self.cells)))

    def run(self) -> MultiCellReport:
        workers = self.effective_workers()
        if workers > 1:
            from repro.link import parallel
            try:
                return parallel.run_parallel(self, workers)
            except parallel.ParallelDegraded as exc:
                # The pool is gone but this process's sessions were
                # never stepped; rerun the whole block sequentially —
                # bit-identical by construction, just slower.
                self.degrade_reason = str(exc)
                return self._run_sequential(workers=workers,
                                            degraded=True)
        return self._run_sequential()

    def _run_sequential(self, *, workers: int = 1,
                        degraded: bool = False) -> MultiCellReport:
        started = time.perf_counter()
        for rt in self.cells:
            recorder = self._make_recorder(rt)
            rt.session.air.on_schedule = recorder
            rt.engine.start()
        live = [rt for rt in self.cells if not rt.engine.finished]
        for rt in self.cells:
            if rt.engine.finished and rt.report is None:
                rt.report = rt.engine.finish(started)
        window_end = 0
        while live:
            self.counters["windows"] += 1
            pending = [t for t in (rt.engine.next_time() for rt in live)
                       if t is not None]
            window_end = self._aligned_window_end(window_end, pending)
            for rt in live:
                if not rt.engine.step_until(window_end):
                    rt.report = rt.engine.finish(started)
            # Exchange after every cell reached the boundary — including
            # the final window of a cell that just finished, whose last
            # transmissions still interfere with its neighbours.
            live = [rt for rt in self.cells if rt.report is None]
            self._exchange(live)
        for rt in self.cells:
            rt.session.air.on_schedule = None
        return MultiCellReport(
            design=self.cells[0].session.design,
            cells={rt.plan.ap: rt.report for rt in self.cells},
            counters=dict(self.counters),
            elapsed_s=time.perf_counter() - started,
            workers=workers,
            degraded=degraded,
        )

    def _make_recorder(self, rt: _CellRuntime):
        def record(transmission, waveform) -> None:
            client, snr_home = rt.lookup[transmission.label]
            rt.window.append(
                (transmission.offset, waveform, client, snr_home))
        return record
