"""Process-parallel multi-cell execution: pinned cell workers, one
barrier per horizon window, zero-copy waveform exchange.

The sequential :class:`~repro.link.multicell.MultiCellSession` steps
every cell's :class:`~repro.link.events.EventEngine` inside one process,
so a 10-AP coupled block costs ~10x a single cell. This module runs the
same block on a persistent pool of **cell workers**: each cell is pinned
to one worker for its lifetime (its engine, air and rng state never
move), workers step their cells to each horizon boundary concurrently,
and the parent coordinator — which keeps all exchange *planning* —
synchronizes them at a barrier per window:

1. **step** — every worker advances its live cells to ``window_end``,
   writes the window's scheduled waveforms into its own region of a
   shared-memory :class:`~repro.runner.shm.WaveformArena` (bump
   allocator, CRC-stamped refs, inline-pickle overflow fallback) and
   replies with metadata only: ``(offset, client, snr_home, ref)``.
2. **inject** — the parent plans the exchange with
   ``MultiCellSession._iter_exchange`` (victim prefilter + keyed
   phases, canonical order) and sends each worker the ordered injection
   list for its cells; workers resolve refs straight out of the arena
   (zero-copy), apply them through the shared
   :func:`~repro.link.multicell.apply_injection` path, and reply with
   counter deltas and refreshed next-event times.

Because the exchange is order-independent (phases are keyed, not drawn
sequentially) and each victim's injections are applied in the canonical
sequential order, the parallel block is **bit-identical** to the
sequential coordinator at any worker count — same flows, same counters,
same float arithmetic.

Resilience follows :class:`repro.runner.resilience.PoolSupervisor`'s
watchdog idiom rather than its pool: every barrier wait carries
``MultiCellConfig.step_timeout_s``; a worker that hangs (e.g. a
``chaos.FaultSpec`` injected hang), crashes, or reports an error raises
:class:`ParallelDegraded`, the pool and arena are torn down, and the
caller reruns the block **sequentially from the parent's untouched
sessions** — workers only ever mutate their own (forked or pickled)
copies, so degradation costs wall-clock, never correctness. The parent
owns the arena, so even a chaos-killed run leaks no shm segments.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field

from repro.link.events import EventEngine
from repro.link.multicell import MultiCellReport, apply_injection
from repro.runner.shm import WaveformArena

__all__ = ["ParallelDegraded", "run_parallel"]

# Per-waveform slack over packet_samples for channel dispersion, and
# scheduled-waveforms-per-client-per-window headroom for the region
# budget. Undershooting either only costs inline-pickle fallbacks.
_WAVE_SLACK = 256
_WAVES_PER_CLIENT = 4


class ParallelDegraded(RuntimeError):
    """The parallel mode gave up (hang/crash/corruption); rerun
    sequentially from the parent's pristine sessions."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
@dataclass
class _CellHost:
    """One cell living inside a worker process."""

    index: int
    lookup: dict
    session: object
    engine: EventEngine
    window: list = field(default_factory=list)
    report: object | None = None


def _make_recorder(host: _CellHost):
    def record(transmission, waveform) -> None:
        client, snr_home = host.lookup[transmission.label]
        host.window.append(
            (transmission.offset, waveform, client, snr_home))
    return record


def _corrupt_one(arena: WaveformArena, entries: list) -> None:
    """Chaos hook: flip one sample of the first arena-backed waveform
    so its CRC no longer matches (exercises the transport checksum)."""
    for _offset, _client, _snr, ref in entries:
        if ref.region >= 0 and ref.size > 0:
            view = arena.view(ref.region, ref.offset, ref.size)
            view[0] += 1.0 + 1.0j
            return


def _worker_main(conn, worker_id: int, cells: list, arena_name: str,
                 n_regions: int, region_samples: int, faults) -> None:
    """One pinned cell worker: owns its cells' engines start to finish.

    Protocol (parent -> worker): ``("step", window, window_end)``,
    ``("inject", {cell: [(offset, ref, scale), ...]})``, ``("finish",)``,
    ``("stop",)``. Any exception becomes an ``("error", repr)`` reply;
    the parent degrades the run instead of deadlocking the barrier.
    """
    injector = None
    if faults is not None and not getattr(faults, "is_empty", True):
        # Runtime import: repro.link must not pull repro.runner in at
        # module load from the worker's unpickling path.
        from repro.runner.chaos import ChaosInjector
        injector = ChaosInjector(faults)
    arena = None
    hosts: list[_CellHost] = []
    by_index: dict[int, _CellHost] = {}
    started = time.perf_counter()
    try:
        try:
            arena = WaveformArena.attach(arena_name, n_regions,
                                         region_samples)
            for index, lookup, session in cells:
                host = _CellHost(index=index, lookup=lookup,
                                 session=session,
                                 engine=EventEngine(session))
                session.air.on_schedule = _make_recorder(host)
                host.engine.start()
                if host.engine.finished:
                    host.report = host.engine.finish(started)
                hosts.append(host)
                by_index[index] = host
            conn.send(("ready", {
                h.index: (h.report is None,
                          h.engine.next_time() if h.report is None
                          else None)
                for h in hosts}))
        except Exception as exc:
            conn.send(("error", f"worker setup failed: {exc!r}"))
            return
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            cmd = msg[0]
            if cmd == "stop":
                return
            try:
                if cmd == "step":
                    _cmd, window, window_end = msg
                    # The previous window's refs were all consumed at
                    # the last barrier; reclaim this worker's region.
                    arena.reset(worker_id)
                    out = {}
                    for host in hosts:
                        if host.report is not None:
                            out[host.index] = (False, [])
                            continue
                        if injector is not None:
                            injector.pre_trial(host.index, window)
                        if not host.engine.step_until(window_end):
                            host.report = host.engine.finish(started)
                        entries = []
                        for offset, wave, client, snr_home in host.window:
                            ref = arena.write(worker_id, wave,
                                              checksum=True)
                            entries.append((offset, client, snr_home,
                                            ref))
                        host.window.clear()
                        if injector is not None and injector.corrupt_slot(
                                host.index, window):
                            _corrupt_one(arena, entries)
                        out[host.index] = (host.report is None, entries)
                    conn.send(("stepped", out))
                elif cmd == "inject":
                    plan = msg[1]
                    # Integer-valued deltas: cross-worker merge order
                    # cannot perturb them, and the merged counters
                    # match the sequential coordinator's exactly.
                    deltas = {"injections": 0, "injections_skipped": 0,
                              "samples_injected": 0,
                              "samples_clipped": 0}
                    for index, entries in plan.items():
                        host = by_index[index]
                        for offset, ref, scale in entries:
                            wave = ref.resolve(arena)
                            apply_injection(host.session, host.engine,
                                            offset, wave, scale, deltas)
                    conn.send(("injected", {
                        h.index: h.engine.next_time()
                        for h in hosts if h.report is None}, deltas))
                elif cmd == "finish":
                    for host in hosts:
                        host.session.air.on_schedule = None
                    conn.send(("reports",
                               {h.index: h.report for h in hosts}))
                else:
                    conn.send(("error", f"unknown command {cmd!r}"))
            except Exception as exc:
                try:
                    conn.send(("error", repr(exc)))
                except (BrokenPipeError, OSError):
                    return
    finally:
        if arena is not None:
            arena.close()
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    id: int
    process: multiprocessing.Process
    conn: object
    cell_indices: list[int]


class _CellWorkerPool:
    """Parent handle on the pinned cell workers and the shared arena."""

    def __init__(self, mc, n_workers: int) -> None:
        self.timeout = mc.config.step_timeout_s
        # Cells pinned round-robin: cell i lives on worker i % N for
        # the whole run.
        self.owner_of = {rt.index: rt.index % n_workers
                         for rt in mc.cells}
        region_samples = 1
        for wid in range(n_workers):
            budget = sum(
                _WAVES_PER_CLIENT * max(1, len(rt.session.clients))
                * (rt.session.packet_samples + _WAVE_SLACK)
                for rt in mc.cells if self.owner_of[rt.index] == wid)
            region_samples = max(region_samples, budget)
        self.arena = WaveformArena.create(n_workers, region_samples)
        ctx = multiprocessing.get_context()
        self.workers: list[_Worker] = []
        try:
            for wid in range(n_workers):
                payload = [(rt.index, rt.lookup, rt.session)
                           for rt in mc.cells
                           if self.owner_of[rt.index] == wid]
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, wid, payload, self.arena.name,
                          n_workers, region_samples, mc.config.faults),
                    daemon=True)
                process.start()
                child_conn.close()
                self.workers.append(_Worker(
                    id=wid, process=process, conn=parent_conn,
                    cell_indices=[c[0] for c in payload]))
        except Exception:
            self.shutdown()
            raise

    def _recv(self, worker: _Worker, expected: str) -> tuple:
        if not worker.conn.poll(self.timeout):
            raise ParallelDegraded(
                f"cell worker {worker.id} unresponsive at the "
                f"'{expected}' barrier (> {self.timeout:.1f}s)")
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError) as exc:
            raise ParallelDegraded(
                f"cell worker {worker.id} died: {exc!r}") from exc
        if msg[0] == "error":
            raise ParallelDegraded(
                f"cell worker {worker.id} failed: {msg[1]}")
        if msg[0] != expected:
            raise ParallelDegraded(
                f"cell worker {worker.id} answered {msg[0]!r} at the "
                f"'{expected}' barrier")
        return msg

    def _broadcast(self, message: tuple) -> None:
        for worker in self.workers:
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError) as exc:
                raise ParallelDegraded(
                    f"cell worker {worker.id} unreachable: "
                    f"{exc!r}") from exc

    def shutdown(self) -> None:
        """Tear everything down; never raises, never leaks the arena."""
        for worker in self.workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        if self.arena is not None:
            self.arena.close()
            self.arena = None


def run_parallel(mc, n_workers: int) -> MultiCellReport:
    """Run *mc*'s block on *n_workers* pinned cell workers.

    Bit-identical to ``mc._run_sequential()``. Raises
    :class:`ParallelDegraded` — with the pool and arena already torn
    down and ``mc`` untouched — when any worker hangs, dies, or reports
    an error; the caller falls back to sequential stepping.
    """
    started = time.perf_counter()
    pool = _CellWorkerPool(mc, n_workers)
    try:
        try:
            return _coordinate(mc, pool, started, n_workers)
        except ParallelDegraded:
            raise
        except Exception as exc:
            raise ParallelDegraded(
                f"parallel coordinator failed: {exc!r}") from exc
    finally:
        pool.shutdown()


def _coordinate(mc, pool: _CellWorkerPool, started: float,
                n_workers: int) -> MultiCellReport:
    """The parent's barrier loop — the sequential ``run`` loop with the
    stepping and injection legs remoted to the workers."""
    n_cells = len(mc.cells)
    live: set[int] = set()
    next_map: dict[int, int] = {}
    for worker in pool.workers:
        _tag, status = pool._recv(worker, "ready")
        for index, (alive, next_time) in status.items():
            if alive:
                live.add(index)
                next_map[index] = next_time
    # Fresh counters: merged into mc only when the parallel run
    # commits, so a degraded rerun starts from a clean slate.
    counters = {key: 0 for key in mc.counters}
    window_end = 0
    while live:
        counters["windows"] += 1
        window = int(counters["windows"])
        pending = [t for t in (next_map[i] for i in sorted(live))
                   if t is not None]
        window_end = mc._aligned_window_end(window_end, pending)
        pool._broadcast(("step", window, window_end))
        meta = [[] for _ in range(n_cells)]
        refs = [[] for _ in range(n_cells)]
        for worker in pool.workers:
            _tag, stepped = pool._recv(worker, "stepped")
            for index, (alive, entries) in stepped.items():
                if not alive:
                    live.discard(index)
                    next_map.pop(index, None)
                meta[index] = [(offset, client, snr_home)
                               for offset, client, snr_home, _r in entries]
                refs[index] = [entry[3] for entry in entries]
        # Plan the exchange exactly as the sequential coordinator
        # would, then route each victim's ordered injection list to the
        # worker that owns it.
        live_mask = [index in live for index in range(n_cells)]
        plans: dict[int, dict[int, list]] = {
            worker.id: {} for worker in pool.workers}
        for src_idx, seq, dst_idx, offset, scale in \
                mc._iter_exchange(window, meta, live_mask):
            plans[pool.owner_of[dst_idx]].setdefault(dst_idx, []).append(
                (offset, refs[src_idx][seq], scale))
        for worker in pool.workers:
            worker.conn.send(("inject", plans[worker.id]))
        for worker in pool.workers:
            _tag, nexts, deltas = pool._recv(worker, "injected")
            for key, value in deltas.items():
                counters[key] += value
            next_map.update(nexts)
    pool._broadcast(("finish",))
    reports: dict[int, object] = {}
    for worker in pool.workers:
        _tag, cell_reports = pool._recv(worker, "reports")
        reports.update(cell_reports)
    if len(reports) != n_cells or any(r is None for r in reports.values()):
        raise ParallelDegraded("incomplete cell reports from workers")
    for key, value in counters.items():
        mc.counters[key] = value
    return MultiCellReport(
        design=mc.cells[0].session.design,
        cells={mc.cells[index].plan.ap: reports[index]
               for index in range(n_cells)},
        counters=dict(counters),
        elapsed_s=time.perf_counter() - started,
        workers=n_workers,
        degraded=False,
    )
