"""Streaming burst segmentation: carving captures out of continuous air.

The AP's receive chain (collision detection, standard decode, ZigZag)
operates on *captures* — sample buffers that each hold one reception or
collision. On a continuous stream someone has to find those buffers:
:class:`BurstSegmenter` watches chunk after chunk of received samples,
opens a burst when short-window power rises above the noise floor, and
closes it when a longer hang window of near-noise samples confirms the
air went quiet (two thresholds, so envelope dips inside a packet don't
split it). Bursts that straddle chunk boundaries are carried over; the
only state kept between chunks is the open burst (capped at
``max_burst_samples``) plus a small tail of history for the moving
averages and leading pad — the full stream is never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SegmenterConfig", "Burst", "BurstSegmenter"]


@dataclass(frozen=True)
class SegmenterConfig:
    """Energy-hysteresis knobs, all relative to the known noise floor."""

    noise_power: float = 1.0
    open_factor: float = 3.0    # short-window power to open a burst
    close_factor: float = 1.8   # hang-window power to close it again
    open_window: int = 16
    hang_window: int = 64
    pad: int = 16               # leading context samples kept per burst
    max_burst_samples: int = 1 << 17

    def __post_init__(self) -> None:
        if self.noise_power <= 0:
            raise ConfigurationError("noise_power must be positive")
        if not 0 < self.close_factor < self.open_factor:
            raise ConfigurationError(
                "need 0 < close_factor < open_factor (hysteresis)")
        if min(self.open_window, self.hang_window, self.pad) < 1:
            raise ConfigurationError("windows and pad must be >= 1")
        if self.max_burst_samples < 4 * self.hang_window:
            raise ConfigurationError("max_burst_samples too small")


@dataclass(frozen=True)
class Burst:
    """One segmented capture: samples plus its place on the stream."""

    samples: np.ndarray
    start: int              # absolute index of samples[0]
    truncated: bool = False  # force-closed at max_burst_samples

    @property
    def end(self) -> int:
        return self.start + self.samples.size


class BurstSegmenter:
    """Push chunks in, get completed bursts out.

    ``push`` returns every burst *completed* by that chunk (possibly
    none, possibly several); ``flush`` closes a still-open burst at end
    of stream. Samples are float-compared against two causal moving
    averages of instantaneous power — an ``open_window`` mean crossing
    ``open_factor × noise`` opens, a ``hang_window`` mean dropping below
    ``close_factor × noise`` closes, so the close point trails the true
    packet end by roughly one hang window of silence (which the decode
    chain wants as tail context anyway).
    """

    def __init__(self, config: SegmenterConfig) -> None:
        self.config = config
        k = max(config.open_window, config.hang_window) + config.pad
        self._history = np.zeros(0, dtype=complex)  # last k stream samples
        self._history_len = k
        self._pos = 0               # absolute index of the next pushed sample
        self._open: list[np.ndarray] | None = None
        self._open_len = 0
        self._open_start = 0
        self._prev_end = 0          # absolute end of the last closed burst
        self.bursts_emitted = 0
        self.forced_closes = 0
        self.max_resident_samples = 0

    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._open is not None

    @property
    def resident_samples(self) -> int:
        return self._history.size + self._open_len

    # ------------------------------------------------------------------
    def _causal_mean(self, power: np.ndarray, window: int,
                     n_out: int) -> np.ndarray:
        """Causal *window*-sample mean for the last *n_out* positions."""
        cs = np.concatenate(([0.0], np.cumsum(power)))
        idx = np.arange(power.size - n_out, power.size)
        lo = np.maximum(idx + 1 - window, 0)
        return (cs[idx + 1] - cs[lo]) / np.maximum(idx + 1 - lo, 1)

    def push(self, chunk) -> list[Burst]:
        """Consume one chunk; return bursts completed inside it."""
        cfg = self.config
        chunk = np.asarray(chunk, dtype=complex).ravel()
        if chunk.size == 0:
            return []
        joined = np.concatenate([self._history, chunk])
        carry = joined.size - chunk.size      # history samples prepended
        power = np.abs(joined) ** 2
        open_cond = (self._causal_mean(power, cfg.open_window, chunk.size)
                     >= cfg.open_factor * cfg.noise_power)
        close_cond = (self._causal_mean(power, cfg.hang_window, chunk.size)
                      < cfg.close_factor * cfg.noise_power)

        out: list[Burst] = []
        i = 0
        while i < chunk.size:
            if self._open is None:
                hits = np.flatnonzero(open_cond[i:])
                if hits.size == 0:
                    break
                j = i + int(hits[0])
                # Reach back for leading context: the detector fired one
                # open-window after the packet edge, so pull window + pad
                # samples of history (never into the previous burst).
                back = cfg.open_window + cfg.pad
                # Never reach past retained history (after a skip() the
                # stream before ``_pos - carry`` was never materialized).
                start_abs = max(self._pos + j - back, self._prev_end,
                                self._pos - carry)
                lead_lo = carry + j - (self._pos + j - start_abs)
                self._open = [joined[lead_lo:carry + j + 1].copy()]
                self._open_len = self._open[0].size
                self._open_start = start_abs
                i = j + 1
            else:
                # Don't allow the leading silence still inside the hang
                # window to close a burst that just opened.
                guard = self._open_start + cfg.hang_window - self._pos
                lo = max(i, guard, 0)
                hits = np.flatnonzero(close_cond[lo:]) \
                    if lo < chunk.size else np.zeros(0, int)
                # The open burst never exceeds max_burst_samples: appends
                # are capped at the remaining room and the leftover chunk
                # samples are re-fed as a fresh burst-open scan.
                room = cfg.max_burst_samples - self._open_len
                if hits.size == 0:
                    take = min(chunk.size - i, room)
                    self._open.append(chunk[i:i + take].copy())
                    self._open_len += take
                    i += take
                    if self._open_len >= cfg.max_burst_samples:
                        out.append(self._close(truncated=True))
                elif lo + int(hits[0]) + 1 - i > room:
                    # Cap reached before the close point.
                    self._open.append(chunk[i:i + room].copy())
                    self._open_len += room
                    i += room
                    out.append(self._close(truncated=True))
                else:
                    j = lo + int(hits[0])
                    self._open.append(chunk[i:j + 1].copy())
                    self._open_len += j + 1 - i
                    out.append(self._close(truncated=False))
                    i = j + 1
        self._pos += chunk.size
        self._history = joined[-self._history_len:].copy()
        self.max_resident_samples = max(self.max_resident_samples,
                                        self.resident_samples)
        return out

    def skip(self, n_samples: int) -> None:
        """Advance past *n_samples* of known-idle air without scanning.

        The event-driven session core uses this to jump over stretches
        of the stream that hold nothing but noise: the position advances
        in O(1) and the moving-average history resets to empty (the next
        pushed chunk warms it up from its own samples). Skipping is only
        legal while no burst is open.
        """
        if n_samples < 0:
            raise ConfigurationError("skip needs a non-negative count")
        if self._open is not None:
            raise ConfigurationError(
                "cannot skip stream samples while a burst is open")
        self._pos += n_samples
        self._history = np.zeros(0, dtype=complex)

    def flush(self) -> list[Burst]:
        """Close any still-open burst at end of stream."""
        if self._open is None:
            return []
        return [self._close(truncated=False)]

    # ------------------------------------------------------------------
    def _close(self, truncated: bool) -> Burst:
        burst = Burst(samples=np.concatenate(self._open),
                      start=self._open_start, truncated=truncated)
        self._prev_end = burst.end
        self._open = None
        self._open_len = 0
        self.bursts_emitted += 1
        if truncated:
            self.forced_closes += 1
        return burst
