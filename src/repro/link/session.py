"""The closed-loop AP session: N clients, continuous air, live feedback.

This is the paper's §4.2.2/§4.4 system actually *running as a system*:
clients contend for the medium with slotted DCF-style backoff (hidden
pairs cannot sense each other and collide), their packets land on a
:class:`~repro.link.air.ContinuousAir` stream, a
:class:`~repro.link.segmenter.BurstSegmenter` carves receptions out of
the stream, and the AP decodes each burst. Decoded packets are ACKed a
SIFS after the burst — for ZigZag-resolved pairs only when the offset
between the colliding packets admits the synchronous-ACK scheme of
Lemma 4.4.1 (otherwise the earlier-finishing sender misses its ACK and
retransmits; the AP recognizes the duplicate and ACKs it then). Senders
that miss an ACK retransmit the *same* frame with fresh backoff jitter —
which is exactly what lands the retransmission back in the AP's
collision-buffer match path and lets ZigZag resolve the stored collision.

Everything is sample-clocked: MAC slots, SIFS/ACK durations
(:mod:`repro.mac.timing` scaled onto the sample clock), packet airtime,
and ACK timeouts. Memory stays bounded for arbitrarily long sessions —
the air holds only in-flight waveforms, the segmenter only the open
burst, and the collision buffer ages out stale records.

Two interchangeable cores drive the loop (``SessionConfig.engine``):
the event-driven scheduler of :mod:`repro.link.events` (the default —
symbolic MAC time, DSP only over actual burst extents, wall time scales
with *busy* air) and the original slot-clocked ``while`` loop (every
slot boundary visited explicitly — the reference semantics the event
core is pinned against). Both share every piece of domain logic below;
only the advancement of time differs.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import ReceiverConfig, ReceiverStats
from repro.errors import ConfigurationError
from repro.link.air import AirConfig, ContinuousAir
from repro.link.aps import build_ap
from repro.link.events import EventEngine, RadioState
from repro.link.segmenter import BurstSegmenter, SegmenterConfig
from repro.link.topology import Topology, max_clique_size
from repro.mac.ack import plan_synchronous_acks
from repro.mac.backoff import BackoffPicker, FixedWindowBackoff
from repro.mac.timing import TIMING_80211G, Timing
from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.impairments import ImpairmentPipeline
from repro.phy.medium import Transmission
from repro.phy.preamble import Preamble, default_preamble
from repro.phy.pulse import PulseShaper
from repro.testbed.metrics import BER_DELIVERY_THRESHOLD, FlowStats
from repro.utils.bits import random_bits

__all__ = ["StreamClient", "SessionConfig", "SessionReport", "LinkSession"]

# Client MAC states: the RadioState machine, under the session's
# historical private names (numeric order is preserved).
_WAIT = RadioState.IDLE
_CONTEND = RadioState.CONTEND
_TX = RadioState.TX
_AWAIT_ACK = RadioState.AWAIT_ACK
_DONE = RadioState.DONE


# Kept under the session's historical private name; the implementation
# moved to repro.link.topology alongside the rest of the topology logic.
_max_clique_size = max_clique_size


@dataclass(frozen=True)
class StreamClient:
    """One associated client: identity, link budget, traffic model."""

    name: str
    src: int
    snr_db: float
    freq_offset: float = 0.0
    # Fraction of one packet-airtime this client offers per packet-airtime
    # (Poisson arrivals with mean gap ``packet_samples / offered_load``);
    # None means saturated — a fresh packet the instant the previous one
    # resolves.
    offered_load: float | None = None

    def __post_init__(self) -> None:
        if self.offered_load is not None and not 0 < self.offered_load <= 1:
            raise ConfigurationError("offered_load must be in (0, 1]")


@dataclass(frozen=True)
class SessionConfig:
    """Knobs of one closed-loop session."""

    payload_bits: int = 240
    n_packets: int = 6               # packets per client
    max_attempts: int = 6            # transmissions per packet before drop
    noise_power: float = 1.0
    slot_samples: int = 20
    timing: Timing = TIMING_80211G
    backoff: BackoffPicker = field(
        default_factory=lambda: FixedWindowBackoff(16))
    phase_noise_std: float = 1e-3
    tx_evm: float = 0.03
    coarse_freq_error: float = 1.5e-5
    sense_probability: float = 0.0   # pairwise, drawn once per session
    # The preferred way to declare who senses whom: a
    # :class:`~repro.link.topology.Topology` (explicit, probabilistic,
    # or derived from a deployment's geometry). When None, the legacy
    # fields below are routed through the matching Topology constructor
    # — bit-compatible with the historical inline code paths.
    topology: Topology | None = None
    # Legacy explicit topology: client-name pairs that can NOT sense
    # each other, with every other pair sensing perfectly. Overrides
    # sense_probability. This is how a "hidden-pair-dominated" scenario
    # is pinned down deterministically.
    hidden_pairs: tuple[tuple[str, str], ...] | None = None
    # Hidden *cliques*: groups of n mutually-hidden clients (each listed
    # group expands to all its pairs, on top of hidden_pairs). An
    # n-clique is the §4.5 N-collision regime — its collisions carry n
    # packets, and the receiver's k-way collision-set matcher resolves
    # them across n stored collisions. The AP's max_collision_packets is
    # derived from the largest mutually-hidden group.
    hidden_cliques: tuple[tuple[str, ...], ...] | None = None
    # k of the AP's k-way collision resolution. None: derived as the
    # largest mutually-hidden group in the *explicit* topology
    # (hidden_pairs + hidden_cliques); random sense_probability
    # topologies keep the pairwise default unless this is set.
    max_collision_packets: int | None = None
    modulation: str = "bpsk"
    preamble_length: int = 32
    chunk_samples: int = 1024
    buffer_max_age: int = 24         # receiver prunes older stored collisions
    segmenter: SegmenterConfig | None = None   # None: derived defaults
    sender_impairments: ImpairmentPipeline | None = None
    capture_impairments: ImpairmentPipeline | None = None
    ack_timeout_samples: int | None = None     # None: derived (see below)
    max_samples: int | None = None             # safety cap; None: derived
    # Which core drives the loop: "event" (heap-ordered scheduler, idle
    # air skipped symbolically) or "slot" (the reference per-slot walk).
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.n_packets < 1 or self.max_attempts < 1:
            raise ConfigurationError("counts must be positive")
        if self.engine not in ("event", "slot"):
            raise ConfigurationError(
                f"engine must be 'event' or 'slot', got {self.engine!r}")
        if self.slot_samples < 1 or self.chunk_samples < 1:
            raise ConfigurationError("sample counts must be positive")
        if self.max_collision_packets is not None \
                and self.max_collision_packets < 2:
            raise ConfigurationError(
                "max_collision_packets must be >= 2")
        if self.topology is not None and (
                self.hidden_pairs is not None
                or self.hidden_cliques is not None
                or self.sense_probability != 0.0):
            raise ConfigurationError(
                "give either topology= or the legacy hidden_pairs/"
                "hidden_cliques/sense_probability fields, not both")

    def effective_topology(self) -> Topology:
        """The session's topology, with the legacy fields routed through
        the matching (bit-compatible) Topology constructor."""
        if self.topology is not None:
            return self.topology
        if self.hidden_pairs is not None or self.hidden_cliques is not None:
            return Topology.explicit(self.hidden_pairs, self.hidden_cliques)
        return Topology.probabilistic(self.sense_probability)

    def hidden_edges(self) -> set[frozenset[str]]:
        """Every deterministically-hidden client pair, as name sets."""
        return self.effective_topology().hidden_edges()

    def collision_packets(self) -> int:
        """The AP's k: explicit override, or the largest mutually-hidden
        group in the declared topology (at least the pairwise 2)."""
        if self.max_collision_packets is not None:
            return self.max_collision_packets
        return self.effective_topology().collision_packets()


@dataclass
class SessionReport:
    """What one session produced, AP-side."""

    design: str
    flows: dict[str, FlowStats]
    samples_elapsed: int
    packet_samples: int
    receiver_stats: ReceiverStats
    counters: dict[str, float]
    timed_out: bool = False
    elapsed_s: float = 0.0

    @property
    def airtime_packets(self) -> float:
        """Session length in packet-airtime units (the throughput base)."""
        return self.samples_elapsed / max(self.packet_samples, 1)

    @property
    def total_delivered(self) -> int:
        return sum(s.delivered for s in self.flows.values())

    def throughput(self, name: str | None = None) -> float:
        """Delivered packets per packet-airtime of elapsed medium time."""
        shared = max(self.airtime_packets, 1e-9)
        if name is None:
            return self.total_delivered / shared
        return self.flows[name].delivered / shared


class _ClientState:
    """Mutable MAC state of one client inside a running session."""

    def __init__(self, client: StreamClient, session: "LinkSession",
                 index: int = 0) -> None:
        self.client = client
        self.session = session
        self.index = index          # position in the session's client list
        self.state = _WAIT
        self.packets_done = 0
        self.seq = -1
        self.frame: Frame | None = None
        self.attempt = 0
        self.attempts_used = 0
        self.backoff = 0
        self.tx_end = 0
        self.ack_deadline = 0
        self.next_arrival = 0
        # Event-engine bookkeeping (unused by the slot-clocked core):
        # generation counter invalidating stale heap events, and the
        # anchor/expiry of the currently-scheduled backoff countdown.
        self.gen = 0
        self.contend_anchor = 0
        self.pending_tx_time = 0

    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple[int, int]:
        # Wrapped like the on-air header's seq field, so AP-side decode
        # keys (which come from parsed headers) keep matching past 4096
        # packets. Only one packet per client is in flight at a time, and
        # per-packet state is pruned at resolution, so reuse is safe.
        return (self.client.src, self.seq % 4096)

    def _begin_packet(self, now: int) -> None:
        s = self.session
        self.seq += 1
        payload = random_bits(s.config.payload_bits, s.rng)
        self.frame = Frame.make(payload, src=self.client.src,
                                seq=self.seq % 4096,
                                modulation=s.config.modulation,
                                preamble=s.preamble)
        s.truth[self.key] = self.frame.body_bits
        self.attempt = 0
        self.attempts_used = 0
        self.backoff = s.config.backoff.pick(0, s.rng)
        self.state = _CONTEND
        if self.client.offered_load is not None:
            gap = s.rng.exponential(
                s.packet_samples / self.client.offered_load)
            self.next_arrival = self.next_arrival + int(gap)

    def _resolve(self, now: int) -> None:
        """Close out the current packet (acked, dropped, or cut off)."""
        s = self.session
        ber = s.decode_ber.pop(self.key, 1.0)
        s.flows[self.client.name].record(ber, airtime=self.attempts_used)
        if ber >= BER_DELIVERY_THRESHOLD:
            s.counters["packets_lost"] += 1
        # Per-packet bookkeeping dies with the packet — sessions stay
        # bounded in memory no matter how long they run (late ACKs and
        # duplicate decodes for a resolved key are simply ignored).
        s.truth.pop(self.key, None)
        s.tx_log.pop(self.key, None)
        s.acked.discard(self.key)
        self.packets_done += 1
        self.frame = None
        if self.packets_done >= s.config.n_packets:
            self.state = _DONE
        else:
            self.state = _WAIT

    def step(self, now: int) -> None:
        s = self.session
        if self.state == _DONE:
            return
        if self.state == _WAIT:
            if now >= self.next_arrival:
                self._begin_packet(now)
            return
        if self.state == _CONTEND:
            if self.key in s.acked:       # late ACK beat the retransmission
                self._resolve(now)
                return
            if s.medium_busy_for(self):
                return                    # freeze backoff, medium sensed busy
            if self.backoff > 0:
                self.backoff -= 1
                return
            self._transmit(now)
            return
        if self.state == _TX:
            if now >= self.tx_end:
                if self.key in s.acked:   # ACK landed mid-transmission
                    self._resolve(now)
                else:
                    self.state = _AWAIT_ACK
                    self.ack_deadline = self.tx_end + s.ack_timeout
            return
        if self.state == _AWAIT_ACK:
            if self.key in s.acked:
                self._resolve(now)
                return
            if now >= self.ack_deadline:
                s.counters["ack_timeouts"] += 1
                self.attempt += 1
                if self.attempt >= s.config.max_attempts:
                    s.counters["packets_dropped"] += 1
                    self._resolve(now)
                else:
                    self.backoff = s.config.backoff.pick(self.attempt, s.rng)
                    self.state = _CONTEND

    def _transmit(self, now: int) -> None:
        s = self.session
        cfg = s.config
        amplitude = np.sqrt(10.0 ** (self.client.snr_db / 10.0)
                            * cfg.noise_power)
        params = ChannelParams(
            gain=amplitude * np.exp(1j * s.rng.uniform(0, 2 * np.pi)),
            freq_offset=self.client.freq_offset,
            sampling_offset=float(s.rng.uniform(0, 1)),
            phase_noise_std=cfg.phase_noise_std,
            tx_evm=cfg.tx_evm,
            impairments=cfg.sender_impairments,
        )
        tx = Transmission.from_symbols(self.frame.symbols, s.shaper,
                                       params, now, self.client.name)
        length = s.air.schedule(tx)
        self.tx_end = now + length
        self.attempts_used += 1
        s.tx_log[self.key] = (now, self.tx_end)
        s.counters["transmissions"] += 1
        self.state = _TX


class LinkSession:
    """Drive one closed-loop session to completion (see module docstring)."""

    def __init__(self, config: SessionConfig, clients: list[StreamClient],
                 design: str = "zigzag",
                 rng: np.random.Generator | None = None,
                 preamble: Preamble | None = None,
                 shaper: PulseShaper | None = None) -> None:
        if not clients:
            raise ConfigurationError("session needs at least one client")
        if len({c.src for c in clients}) != len(clients):
            raise ConfigurationError("client src ids must be unique")
        self.config = config
        self.design = design
        self.rng = rng or np.random.default_rng(0)
        if preamble is not None and len(preamble) != config.preamble_length:
            raise ConfigurationError(
                "injected preamble length differs from config")
        self.preamble = preamble or default_preamble(config.preamble_length)
        self.shaper = shaper or PulseShaper()

        # Sample-clocked 802.11 timing.
        spu = config.slot_samples / config.timing.slot_us
        self.sifs = max(1, round(config.timing.sifs_us * spu))
        self.ack_air = max(1, round(config.timing.ack_us * spu))

        # Every packet in a session is the same length: probe it once.
        probe = Frame.make(np.zeros(config.payload_bits, dtype=np.uint8),
                           src=1, modulation=config.modulation,
                           preamble=self.preamble)
        self.packet_samples = self.shaper.shape(probe.symbols).size
        self.expected_symbols = probe.n_symbols

        seg_cfg = config.segmenter or SegmenterConfig(
            noise_power=config.noise_power)
        if config.ack_timeout_samples is not None:
            self.ack_timeout = config.ack_timeout_samples
        else:
            # Worst-case ACK lag: the colliding partner may finish up to a
            # contention window later, the segmenter closes a hang window
            # after silence, and the burst is only processed at the next
            # chunk boundary.
            jitter = config.backoff.window(0) * config.slot_samples
            self.ack_timeout = (jitter + seg_cfg.hang_window
                                + config.chunk_samples + self.sifs
                                + self.ack_air + 4 * config.slot_samples)

        self.air = ContinuousAir(
            AirConfig(noise_power=config.noise_power,
                      chunk_samples=config.chunk_samples,
                      impairments=config.capture_impairments), self.rng)
        self.segmenter = BurstSegmenter(seg_cfg)
        # k-way reception: the AP decomposes collisions into as many
        # packets as the topology's largest mutually-hidden group, and
        # buffers enough collisions to assemble a full k-way set.
        k = config.collision_packets()
        self.ap = build_ap(design, ReceiverConfig(
            preamble=self.preamble, shaper=self.shaper,
            noise_power=config.noise_power,
            expected_symbols=self.expected_symbols,
            buffer_max_age=config.buffer_max_age,
            buffer_capacity=max(4, 2 * (k - 1)),
            max_collision_packets=k))
        self._spu = spu

        # Association (§4.2.1): the AP holds a coarse frequency estimate
        # for every client, as obtained at association time.
        for client in clients:
            self.ap.clients.update(
                client.src,
                client.freq_offset
                + float(self.rng.normal(0, config.coarse_freq_error)))

        self.clients = [_ClientState(c, self, i)
                        for i, c in enumerate(clients)]
        self._by_src = {c.client.src: c for c in self.clients}

        # Pairwise sensing, fixed for the whole session: hidden pairs
        # (and cliques of n mutually-hidden clients) stay hidden, which
        # is the paper's topology model. The Topology object owns both
        # the legacy-compatible paths and the geometry-derived one.
        names = [c.name for c in clients]
        self.topology = config.effective_topology()
        self._sense = self.topology.sense_matrix(names, self.rng)
        self._index = {c.client.src: i for i, c in enumerate(self.clients)}

        self.flows = {c.name: FlowStats() for c in clients}
        self.truth: dict[tuple[int, int], np.ndarray] = {}
        self.decode_ber: dict[tuple[int, int], float] = {}
        self.acked: set[tuple[int, int]] = set()
        self.tx_log: dict[tuple[int, int], tuple[int, int]] = {}
        self._ack_queue: list[tuple[int, int, int]] = []  # (time, src, seq)
        self.counters: dict[str, float] = {
            "transmissions": 0, "bursts": 0, "acks": 0, "acks_dropped": 0,
            "acks_infeasible": 0, "duplicate_decodes": 0,
            "ack_timeouts": 0, "packets_dropped": 0, "packets_lost": 0,
            "unresolved_at_cap": 0, "packets_unoffered_at_cap": 0,
        }
        # Slot-consistent carrier-sense snapshot (list indices of clients
        # transmitting at the current boundary), refreshed once per slot
        # before any client steps.
        self._tx_snapshot: set[int] = set()

    # ------------------------------------------------------------------
    def _refresh_tx_snapshot(self, now: int) -> None:
        """Fix the set of in-flight transmissions for this boundary.

        A transmission occupies ``[start, tx_end)``: a client still in
        ``_TX`` whose ``tx_end <= now`` has already left the air at this
        boundary (it just has not stepped yet), so it is excluded. All
        clients then sense against this one snapshot, making the outcome
        independent of the order in which they step within the slot.
        """
        self._tx_snapshot = {c.index for c in self.clients
                             if c.state == _TX and c.tx_end > now}

    def medium_busy_for(self, state: _ClientState) -> bool:
        i = state.index
        return any(self._sense[i, j] for j in self._tx_snapshot if j != i)

    # ------------------------------------------------------------------
    def _process_burst(self, burst, now: int) -> None:
        self.counters["bursts"] += 1
        results = [r for r in self.ap.receive(burst.samples)
                   if r.header is not None
                   and r.header.src in self._by_src]
        if not results:
            return
        for result in results:
            key = (result.header.src, result.header.seq)
            truth = self.truth.get(key)
            if truth is None:
                continue
            ber = result.ber_against(truth)
            if key in self.decode_ber:
                # The AP already holds this packet from an earlier burst
                # — the §4.4 infeasible-ACK path: the sender missed its
                # ACK and retransmitted, and the AP recognizes the
                # duplicate (and will ACK it below).
                self.counters["duplicate_decodes"] += 1
            self.decode_ber[key] = min(self.decode_ber.get(key, 1.0), ber)

        ackable = self._plan_acks(results)
        base = max(now, burst.end + self.sifs)
        for rank, key in enumerate(ackable):
            # Successive ACKs are serialized on the air (Fig 4-5): SIFS +
            # ACK per earlier ACK of the same burst.
            at = base + rank * (self.sifs + self.ack_air)
            heapq.heappush(self._ack_queue, (at, key[0], key[1]))
            self.counters["acks"] += 1

    def _plan_acks(self, results) -> list[tuple[int, int]]:
        """Which decoded packets can be synchronously ACKed (§4.4).

        Lemma 4.4.1, generalized to a k-way resolved set: the
        last-finishing packet is always ACKable (nothing drowns its
        ACK); an earlier-finishing packet can be ACKed only while the
        last packet is still transmitting, so its ACK slot — SIFS + ACK,
        serialized after any earlier ACK of the same set — must fit in
        the last packet's remaining tail. For a pair this is exactly the
        lemma's offset >= SIFS + ACK condition.
        """
        keys = [(r.header.src, r.header.seq) for r in results]
        if len(keys) < 2:
            return keys
        # Use the MAC truth of each sender's latest transmission.
        spans = [self.tx_log.get(key) for key in keys]
        if any(span is None for span in spans):
            return keys
        order = sorted(range(len(keys)), key=lambda i: spans[i][1])
        last = order[-1]
        ackable = {last}
        # The serialization rule lives in mac.ack (single source of
        # truth with the Lemma 4.4.1 analysis); here it runs on the
        # sample clock like everything else in the session.
        flags = plan_synchronous_acks(
            [spans[i][1] for i in order[:-1]], spans[last][1],
            self.sifs, self.ack_air)
        for i, feasible in zip(order[:-1], flags):
            if feasible:
                ackable.add(i)
            else:
                # This sender misses its ACK (still-transmitting
                # neighbours drown it); it will retransmit and the AP,
                # already holding the packet, ACKs the duplicate
                # immediately.
                self.counters["acks_infeasible"] += 1
        return [keys[i] for i in range(len(keys)) if i in ackable]

    def _deliver_acks(self, now: int) -> None:
        while self._ack_queue and self._ack_queue[0][0] <= now:
            _, src, seq = heapq.heappop(self._ack_queue)
            # ACKs for already-resolved packets are dropped rather than
            # remembered: a stale entry would otherwise satisfy the same
            # (src, seq mod 4096) key when it is reused much later.
            if (src, seq) in self.truth:
                self.acked.add((src, seq))

    # ------------------------------------------------------------------
    def _max_samples(self) -> int:
        """The runaway cap: explicit, or derived from worst-case MAC
        arithmetic (every packet retried to the limit, each attempt
        paying full airtime, timeout and contention)."""
        cfg = self.config
        if cfg.max_samples is not None:
            return cfg.max_samples
        per_attempt = (self.packet_samples + self.ack_timeout
                       + cfg.backoff.window(0) * cfg.slot_samples)
        total_attempts = (len(self.clients) * cfg.n_packets
                          * cfg.max_attempts)
        return 2 * total_attempts * per_attempt + 8 * cfg.chunk_samples

    def run(self) -> SessionReport:
        started = time.perf_counter()
        if self.config.engine == "event":
            return EventEngine(self).run(started)
        return self._run_slot(started)

    def _run_slot(self, started: float) -> SessionReport:
        """The reference core: visit every slot boundary explicitly."""
        cfg = self.config
        slot = cfg.slot_samples
        now = 0
        next_chunk_end = cfg.chunk_samples
        max_samples = self._max_samples()
        timed_out = False
        while any(c.state != _DONE for c in self.clients):
            if now >= max_samples:
                timed_out = True
                break
            self._deliver_acks(now)
            self._refresh_tx_snapshot(now)
            for client in self.clients:
                client.step(now)
            now += slot
            while now >= next_chunk_end:
                chunk = self.air.emit(cfg.chunk_samples)
                for burst in self.segmenter.push(chunk):
                    self._process_burst(burst, now)
                next_chunk_end += cfg.chunk_samples
        return self._finalize(now, timed_out, started)

    def _finalize(self, now: int, timed_out: bool,
                  started: float) -> SessionReport:
        """Shared end-of-session accounting for both cores.

        Order matters: flush the segmenter first (a still-open burst may
        decode and plan ACKs), then deliver-or-drop everything queued,
        then let in-flight clients act on late ACKs — and only then
        charge whatever is still unresolved to the cap.
        """
        for burst in self.segmenter.flush():
            self._process_burst(burst, now)
        # Late ACKs (including ones the flush just planned) are delivered
        # out of band; entries for already-resolved keys are explicitly
        # dropped rather than left queued.
        while self._ack_queue:
            _, src, seq = heapq.heappop(self._ack_queue)
            if (src, seq) in self.truth:
                self.acked.add((src, seq))
            else:
                self.counters["acks_dropped"] += 1
        for client in self.clients:
            if client.state in (_CONTEND, _TX, _AWAIT_ACK) \
                    and client.key in self.acked:
                client._resolve(now)
        if timed_out:
            for client in self.clients:
                if client.state == _DONE:
                    continue
                # Every client cut off by the cap is accounted for —
                # including ones idling in _WAIT between arrivals, whose
                # remaining traffic would otherwise silently vanish from
                # the offered-load bookkeeping.
                self.counters["unresolved_at_cap"] += 1
                pending = self.config.n_packets - client.packets_done
                if client.frame is not None:
                    client._resolve(now)
                    pending -= 1
                self.counters["packets_unoffered_at_cap"] += max(pending, 0)
                client.packets_done = self.config.n_packets
                client.state = _DONE

        stats = self.ap.stats
        counters = dict(self.counters)
        counters["max_resident_samples"] = float(
            self.air.max_resident_samples
            + self.segmenter.max_resident_samples)
        counters["samples_emitted"] = float(self.air.samples_emitted)
        counters["samples_skipped"] = float(self.air.samples_skipped)
        counters["forced_closes"] = float(self.segmenter.forced_closes)
        return SessionReport(
            design=self.design,
            flows=self.flows,
            samples_elapsed=now,
            packet_samples=self.packet_samples,
            receiver_stats=stats,
            counters=counters,
            timed_out=timed_out,
            elapsed_s=time.perf_counter() - started,
        )
