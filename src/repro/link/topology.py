"""Who can sense whom: the session's pairwise carrier-sense topology.

Historically :class:`~repro.link.session.SessionConfig` carried three
loose fields — ``hidden_pairs``, ``hidden_cliques``,
``sense_probability`` — and the session hand-rolled a sense matrix from
them. :class:`Topology` packages the same information behind three
constructors:

- :meth:`Topology.explicit` — hand-declared hidden pairs/cliques, every
  other pair sensing perfectly. Bit-compatible with the legacy fields:
  building the matrix consumes **no** rng draws.
- :meth:`Topology.probabilistic` — each unordered pair senses with one
  shared probability, drawn once per session. Bit-compatible with the
  legacy ``sense_probability`` path: one ``rng.uniform()`` per ``i < j``
  pair in index order, *including* the degenerate 0.0/1.0 endpoints.
- :meth:`Topology.from_cell` / :meth:`Topology.from_deployment` —
  *derived from geometry*: per-pair sense probabilities computed from a
  :class:`~repro.testbed.deployment.Deployment`'s inter-client SNRs.
  Deterministic pairs (probability 0 or 1) consume no randomness;
  partial pairs draw once per session.

The session keeps its legacy fields working by routing them through the
matching constructor, so every existing scenario is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Topology", "max_clique_size"]

EXPLICIT = "explicit"
PROBABILISTIC = "probabilistic"
DERIVED = "derived"


def max_clique_size(names, edges: set[frozenset[str]]) -> int:
    """Largest mutually-hidden group in a hidden-edge graph.

    Exact branch-and-bound search; a session holds at most a few dozen
    clients and hidden graphs are sparse, so this is instant.
    """
    names = list(names)
    if not names:
        return 0
    best = 1

    def extend(size: int, candidates: list[str]) -> None:
        nonlocal best
        best = max(best, size)
        for idx, name in enumerate(candidates):
            if size + len(candidates) - idx <= best:
                return  # bound: cannot beat the incumbent
            extend(size + 1,
                   [other for other in candidates[idx + 1:]
                    if frozenset((name, other)) in edges])

    extend(0, names)
    return best


@dataclass(frozen=True)
class Topology:
    """Pairwise carrier-sense relations among a session's clients."""

    mode: str
    hidden_pairs: tuple[tuple[str, str], ...] | None = None
    hidden_cliques: tuple[tuple[str, ...], ...] | None = None
    sense_probability: float = 0.0
    # Derived mode: every known pair with its sense probability, as
    # ``(name_a, name_b, p)``; pairs not listed sense perfectly.
    pair_probabilities: tuple[tuple[str, str, float], ...] = ()
    # Provenance label for reports/debugging ("deployment seed=7 ap=3").
    source: str = ""

    def __post_init__(self) -> None:
        if self.mode not in (EXPLICIT, PROBABILISTIC, DERIVED):
            raise ConfigurationError(
                f"unknown topology mode {self.mode!r}")
        if not 0.0 <= self.sense_probability <= 1.0:
            raise ConfigurationError(
                "sense_probability must be in [0, 1]")

    # -- constructors ---------------------------------------------------
    @classmethod
    def explicit(cls, hidden_pairs=None, hidden_cliques=None) -> "Topology":
        """Hand-declared topology: listed pairs (and every pair inside
        each clique) are hidden; all other pairs sense perfectly."""
        return cls(mode=EXPLICIT,
                   hidden_pairs=(tuple(tuple(p) for p in hidden_pairs)
                                 if hidden_pairs is not None else None),
                   hidden_cliques=(tuple(tuple(c) for c in hidden_cliques)
                                   if hidden_cliques is not None else None))

    @classmethod
    def probabilistic(cls, sense_probability: float) -> "Topology":
        """Each unordered pair senses with one shared probability,
        drawn once per session in client-index order."""
        return cls(mode=PROBABILISTIC,
                   sense_probability=float(sense_probability))

    @classmethod
    def from_cell(cls, plan) -> "Topology":
        """The geometry-derived topology of one deployment cell
        (:class:`~repro.testbed.deployment.CellPlan`)."""
        return cls(mode=DERIVED,
                   pair_probabilities=tuple(plan.pair_probabilities),
                   source=f"deployment ap={plan.ap}")

    @classmethod
    def from_deployment(cls, deployment, ap: int) -> "Topology":
        """Shorthand for ``Topology.from_cell(deployment.cell(ap))``."""
        return cls.from_cell(deployment.cell(ap))

    # -- queries --------------------------------------------------------
    def hidden_edges(self) -> set[frozenset[str]]:
        """Every *deterministically* hidden client pair, as name sets.

        Explicit mode: the declared pairs plus expanded cliques.
        Derived mode: pairs whose sense probability is 0. Probabilistic
        mode: empty (nothing is pinned before the per-session draw).
        """
        if self.mode == PROBABILISTIC:
            return set()
        if self.mode == DERIVED:
            return {frozenset((a, b))
                    for a, b, p in self.pair_probabilities if p <= 0.0}
        edges = {frozenset(pair) for pair in (self.hidden_pairs or ())}
        for clique in (self.hidden_cliques or ()):
            if len(clique) < 2:
                raise ConfigurationError(
                    "hidden cliques need at least two clients")
            edges.update(frozenset((a, b))
                         for i, a in enumerate(clique)
                         for b in clique[i + 1:])
        return edges

    def collision_packets(self) -> int:
        """The AP's k: the largest mutually-hidden group among the
        deterministic hidden edges (at least the pairwise 2)."""
        edges = self.hidden_edges()
        names = sorted({name for edge in edges for name in edge})
        return max(2, max_clique_size(names, edges))

    def _check_names(self, known: set[str], used: set[str]) -> None:
        unknown = used - known
        if unknown:
            raise ConfigurationError(
                f"hidden topology names unknown clients: "
                f"{sorted(unknown)}")

    def sense_matrix(self, names: list[str],
                     rng: np.random.Generator) -> np.ndarray:
        """The symmetric boolean can-sense matrix over *names*.

        Explicit mode consumes no rng draws; probabilistic mode draws
        one uniform per ``i < j`` pair in order (bit-compatible with the
        legacy session paths); derived mode draws only for partial
        (0 < p < 1) pairs, in ``i < j`` order.
        """
        n = len(names)
        if self.mode == EXPLICIT:
            hidden = self.hidden_edges()
            self._check_names(set(names),
                              {name for pair in hidden for name in pair})
            sense = np.ones((n, n), dtype=bool)
            for i in range(n):
                for j in range(i + 1, n):
                    if frozenset((names[i], names[j])) in hidden:
                        sense[i, j] = sense[j, i] = False
            return sense
        if self.mode == PROBABILISTIC:
            sense = np.zeros((n, n), dtype=bool)
            for i in range(n):
                for j in range(i + 1, n):
                    sense[i, j] = sense[j, i] = \
                        rng.uniform() < self.sense_probability
            return sense
        # Derived: per-pair probabilities; unlisted pairs sense
        # perfectly (co-cell pairs are always listed by from_cell).
        lookup = {frozenset((a, b)): p
                  for a, b, p in self.pair_probabilities}
        self._check_names(set(names),
                          {name for pair in lookup for name in pair})
        sense = np.ones((n, n), dtype=bool)
        for i in range(n):
            for j in range(i + 1, n):
                p = lookup.get(frozenset((names[i], names[j])), 1.0)
                if p >= 1.0:
                    continue
                if p <= 0.0:
                    sense[i, j] = sense[j, i] = False
                else:
                    sense[i, j] = sense[j, i] = rng.uniform() < p
        return sense
