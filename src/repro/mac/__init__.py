"""802.11 MAC substrate: DCF timing, backoff, retransmissions, ACKs.

Used three ways in the reproduction:

- Monte-Carlo evaluation of the greedy decoder's failure probability versus
  the number of colliding senders (Fig 4-7), driven by
  :mod:`~repro.mac.backoff` slot picks;
- the synchronous-ACK feasibility analysis of Lemma 4.4.1
  (:mod:`~repro.mac.ack`);
- the slotted DCF simulator (:mod:`~repro.mac.dcf`) that generates the
  §5.2-style CSMA traces replayed at the signal level by the testbed
  experiments.
"""

from repro.mac.timing import Timing, TIMING_80211A, TIMING_80211B, TIMING_80211G
from repro.mac.backoff import BackoffPicker, ExponentialBackoff, FixedWindowBackoff
from repro.mac.ack import (
    AckPlanner,
    ack_offset_lower_bound,
    ack_offset_probability,
    plan_synchronous_acks,
)
from repro.mac.dcf import DcfConfig, DcfSimulator, TransmissionEvent, DcfTrace
from repro.mac.hidden import HiddenScenario, collision_offset_pairs

__all__ = [
    "Timing",
    "TIMING_80211A",
    "TIMING_80211B",
    "TIMING_80211G",
    "BackoffPicker",
    "FixedWindowBackoff",
    "ExponentialBackoff",
    "ack_offset_probability",
    "ack_offset_lower_bound",
    "plan_synchronous_acks",
    "AckPlanner",
    "DcfConfig",
    "DcfSimulator",
    "TransmissionEvent",
    "DcfTrace",
    "HiddenScenario",
    "collision_offset_pairs",
]
