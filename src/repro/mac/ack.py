"""Synchronous ACKs for ZigZag-decoded collisions (§4.4, Lemma 4.4.1).

The AP acks Alice a SIFS after both packets decode (her radio is
transmitting, so Bob's ongoing tail does not disturb her ack), then pads
the channel and acks Bob when he finishes. This works iff the offset
between the colliding packets exceeds SIFS + ACK. Lemma 4.4.1: with both
senders drawing slots from a window of ``2 CW`` on the retransmission, the
probability the offset suffices is at least ``1 - (SIFS+ACK)/(S * 2CW)``
— ≥ 93.75% for 802.11g (S=20us, SIFS=10us, ACK=30us, CW=16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.timing import TIMING_80211G, Timing

__all__ = ["ack_offset_lower_bound", "ack_offset_probability",
           "plan_synchronous_acks", "AckPlanner"]


def plan_synchronous_acks(end_times, last_end, sifs, ack) -> list[bool]:
    """Which earlier-finishing packets of a resolved collision set can be
    synchronously ACKed — Lemma 4.4.1 generalized to k packets.

    Unit-agnostic (microseconds or samples, as long as all four inputs
    share a clock). *end_times* are the earlier packets' end times in
    ascending order; *last_end* is the last-finishing packet's end. Each
    ACK starts ``sifs`` after its packet ends, is pushed past the end of
    any earlier ACK of the same set (ACKs serialize on the air), and is
    feasible iff it completes by *last_end* — the still-transmitting
    last sender is what shields it from the hidden neighbours. For a
    single earlier packet this reduces to the lemma's
    ``offset >= SIFS + ACK`` condition.

    Returns one feasibility flag per entry of *end_times*, in order.
    """
    feasible: list[bool] = []
    prev_ack_end = None
    for end in end_times:
        start = end + sifs
        if prev_ack_end is not None:
            start = max(start, prev_ack_end)
        ok = start + ack <= last_end
        feasible.append(ok)
        if ok:
            prev_ack_end = start + ack
    return feasible


def ack_offset_lower_bound(timing: Timing = TIMING_80211G,
                           cw: int | None = None) -> float:
    """The paper's analytic lower bound on P(offset >= SIFS + ACK).

    Appendix A: the probability that Alice picks a slot within
    ``SIFS + ACK`` *after* Bob's is upper bounded by
    ``(SIFS + ACK) / (S * 2CW)``; one minus that bounds the success
    probability. For 802.11g this evaluates to exactly 0.9375.
    """
    cw = cw if cw is not None else timing.cw_min
    if cw < 1:
        raise ConfigurationError("cw must be >= 1")
    blocking = (timing.sifs_us + timing.ack_us) / (timing.slot_us * 2 * cw)
    return 1.0 - blocking


def ack_offset_probability(timing: Timing = TIMING_80211G,
                           cw: int | None = None, *,
                           n_trials: int = 100_000,
                           rng: np.random.Generator | None = None) -> float:
    """Monte-Carlo estimate of P(|offset| >= SIFS + ACK).

    Both colliding senders pick a slot uniformly in ``[0, 2CW)`` for the
    retransmission; the offset between their packets is the slot
    difference times the slot duration. This is the exact two-sided event
    the synchronous-ack scheme needs, slightly stricter than the paper's
    one-sided bound.
    """
    cw = cw if cw is not None else timing.cw_min
    if cw < 1:
        raise ConfigurationError("cw must be >= 1")
    if n_trials < 1:
        raise ConfigurationError("n_trials must be positive")
    rng = rng or np.random.default_rng(0)
    slots_a = rng.integers(0, 2 * cw, size=n_trials)
    slots_b = rng.integers(0, 2 * cw, size=n_trials)
    offsets = np.abs(slots_a - slots_b) * timing.slot_us
    needed = timing.sifs_us + timing.ack_us
    return float(np.mean(offsets >= needed))


@dataclass(frozen=True)
class AckPlan:
    """Timeline of the Fig 4-5 ack scheme, in microseconds from the end of
    the first (earlier-finishing) packet."""

    feasible: bool
    ack_first_at: float
    padding_us: float
    ack_second_at: float


@dataclass
class AckPlanner:
    """Plan synchronous acks for a decoded collision pair (Fig 4-5)."""

    timing: Timing = TIMING_80211G

    def plan(self, offset_us: float, first_duration_us: float,
             second_duration_us: float) -> AckPlan:
        """*offset_us* is the second packet's start minus the first's.

        The first ack must fit between the first packet's end and the
        second packet's end: feasible iff the tail of the second packet is
        longer than SIFS + ACK.
        """
        if min(first_duration_us, second_duration_us) <= 0:
            raise ConfigurationError("durations must be positive")
        if offset_us < 0:
            raise ConfigurationError(
                "offset must be measured to the later packet")
        t = self.timing
        first_end = first_duration_us
        second_end = offset_us + second_duration_us
        tail = second_end - first_end
        feasible = tail >= t.sifs_us + t.ack_us
        ack_first_at = first_end + t.sifs_us
        padding = max(0.0, second_end - (ack_first_at + t.ack_us))
        ack_second_at = second_end + t.sifs_us
        return AckPlan(feasible, ack_first_at, padding, ack_second_at)
