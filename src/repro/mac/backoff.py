"""802.11 backoff slot pickers.

Two policies, matching Fig 4-7's two panels: a fixed congestion window
(every retransmission draws from the same cw), and standard exponential
backoff — "doubling the congestion window every time there is a collision,
starting with a minimum congestion window CWmin = 31 ... not allowed to
exceed CWmax = 1023" (paper §4.5, footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BackoffPicker", "FixedWindowBackoff", "ExponentialBackoff"]


class BackoffPicker:
    """Interface: draw the backoff slot for a given retransmission attempt."""

    def window(self, attempt: int) -> int:
        raise NotImplementedError

    def pick(self, attempt: int, rng: np.random.Generator) -> int:
        """Slot number in [0, window(attempt)] for the given attempt
        (attempt 0 is the first transmission)."""
        w = self.window(attempt)
        return int(rng.integers(0, w + 1))


@dataclass(frozen=True)
class FixedWindowBackoff(BackoffPicker):
    """Every attempt draws from the same congestion window ``cw``."""

    cw: int

    def __post_init__(self) -> None:
        if self.cw < 1:
            raise ConfigurationError("cw must be >= 1")

    def window(self, attempt: int) -> int:
        if attempt < 0:
            raise ConfigurationError("attempt must be non-negative")
        return self.cw


@dataclass(frozen=True)
class ExponentialBackoff(BackoffPicker):
    """Standard 802.11 exponential backoff: cw doubles per failed attempt."""

    cw_min: int = 31
    cw_max: int = 1023

    def __post_init__(self) -> None:
        if not 0 < self.cw_min <= self.cw_max:
            raise ConfigurationError("need 0 < cw_min <= cw_max")

    def window(self, attempt: int) -> int:
        if attempt < 0:
            raise ConfigurationError("attempt must be non-negative")
        return min(self.cw_min * (2 ** attempt) + (2 ** attempt - 1),
                   self.cw_max)
