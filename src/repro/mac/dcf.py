"""A slotted 802.11 DCF simulator with configurable carrier sensing.

Generates transmission/collision traces for arbitrary sensing topologies —
in particular hidden terminals, where two senders never sense each other
and therefore collide repeatedly on the same packets. The testbed layer
replays these traces at the signal level, exactly mirroring the paper's
§5.2 methodology (802.11 cards provide the MAC trace, USRPs replay it).

The simulator is intentionally slot-quantized: transmissions start on slot
boundaries after DIFS + backoff, which also produces the random start-time
jitter between successive collisions that ZigZag depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.timing import TIMING_80211G, Timing

__all__ = ["DcfConfig", "TransmissionEvent", "DcfTrace", "DcfSimulator"]


@dataclass(frozen=True)
class DcfConfig:
    """Parameters of one DCF simulation."""

    timing: Timing = TIMING_80211G
    packet_duration_us: float = 500.0
    max_attempts: int = 7
    cw_min: int = 31
    cw_max: int = 1023

    def __post_init__(self) -> None:
        if self.packet_duration_us <= 0:
            raise ConfigurationError("packet duration must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")


@dataclass(frozen=True)
class TransmissionEvent:
    """One on-air transmission attempt."""

    sender: int
    packet_id: int
    attempt: int
    start_us: float
    end_us: float

    def overlaps(self, other: "TransmissionEvent") -> bool:
        return self.start_us < other.end_us and other.start_us < self.end_us


@dataclass
class DcfTrace:
    """Everything that happened on the medium during a run."""

    events: list[TransmissionEvent] = field(default_factory=list)
    delivered: dict = field(default_factory=dict)   # (sender, pkt) -> bool
    dropped: dict = field(default_factory=dict)

    def collision_groups(self) -> list[list[TransmissionEvent]]:
        """Maximal groups of mutually-overlapping transmissions (>= 2)."""
        groups: list[list[TransmissionEvent]] = []
        ordered = sorted(self.events, key=lambda e: e.start_us)
        current: list[TransmissionEvent] = []
        current_end = -1.0
        for event in ordered:
            if current and event.start_us < current_end:
                current.append(event)
                current_end = max(current_end, event.end_us)
            else:
                if len(current) >= 2:
                    groups.append(current)
                current = [event]
                current_end = event.end_us
        if len(current) >= 2:
            groups.append(current)
        return groups

    def clean_events(self) -> list[TransmissionEvent]:
        """Transmissions that overlapped nothing."""
        collided = {id(e) for g in self.collision_groups() for e in g}
        return [e for e in self.events if id(e) not in collided]


class DcfSimulator:
    """Slot-stepped DCF with an arbitrary sense matrix.

    ``sense[i][j]`` is True when sender i can hear sender j — hidden
    terminals have ``sense[i][j] = sense[j][i] = False``. The AP hears
    everyone; a transmission is *delivered* when no other transmission
    overlaps it (the signal-level replay refines this with capture and
    ZigZag decoding).
    """

    def __init__(self, n_senders: int, sense: np.ndarray,
                 config: DcfConfig = DcfConfig(),
                 rng: np.random.Generator | None = None) -> None:
        sense = np.asarray(sense, dtype=bool)
        if sense.shape != (n_senders, n_senders):
            raise ConfigurationError("sense matrix shape mismatch")
        self.n = n_senders
        self.sense = sense
        self.config = config
        self.rng = rng or np.random.default_rng(0)

    def run(self, packets_per_sender: int) -> DcfTrace:
        if packets_per_sender < 1:
            raise ConfigurationError("packets_per_sender must be >= 1")
        cfg = self.config
        t = cfg.timing
        trace = DcfTrace()

        next_packet = [0] * self.n
        attempt = [0] * self.n
        cw = [cfg.cw_min] * self.n
        backoff = [int(self.rng.integers(0, cfg.cw_min + 1))
                   for _ in range(self.n)]
        # Ongoing transmission end time per sender (or None).
        tx_end = [None] * self.n
        tx_event: list[TransmissionEvent | None] = [None] * self.n
        now = 0.0
        slot = t.slot_us

        def busy_for(i: int) -> bool:
            return any(tx_end[j] is not None and self.sense[i][j]
                       for j in range(self.n) if j != i)

        guard = 0
        max_iterations = packets_per_sender * self.n * 50_000
        while any(next_packet[i] < packets_per_sender
                  for i in range(self.n)):
            guard += 1
            if guard > max_iterations:
                raise ConfigurationError("DCF simulation did not terminate")
            # Finish transmissions ending at or before `now`.
            for i in range(self.n):
                if tx_end[i] is not None and tx_end[i] <= now + 1e-9:
                    event = tx_event[i]
                    overlapped = any(
                        e.overlaps(event) for e in trace.events
                        if e is not event)
                    key = (i, event.packet_id)
                    if not overlapped:
                        trace.delivered[key] = True
                        next_packet[i] += 1
                        attempt[i] = 0
                        cw[i] = cfg.cw_min
                        backoff[i] = int(self.rng.integers(0, cw[i] + 1))
                    else:
                        attempt[i] += 1
                        if attempt[i] >= cfg.max_attempts:
                            trace.dropped[key] = True
                            next_packet[i] += 1
                            attempt[i] = 0
                            cw[i] = cfg.cw_min
                        else:
                            cw[i] = min(2 * cw[i] + 1, cfg.cw_max)
                        backoff[i] = int(self.rng.integers(0, cw[i] + 1))
                    tx_end[i] = None
                    tx_event[i] = None
            # Senders with pending packets count down / transmit.
            for i in range(self.n):
                if tx_end[i] is not None:
                    continue
                if next_packet[i] >= packets_per_sender:
                    continue
                if busy_for(i):
                    continue  # freeze backoff while medium sensed busy
                if backoff[i] > 0:
                    backoff[i] -= 1
                    continue
                event = TransmissionEvent(
                    sender=i,
                    packet_id=next_packet[i],
                    attempt=attempt[i],
                    start_us=now,
                    end_us=now + cfg.packet_duration_us,
                )
                trace.events.append(event)
                tx_end[i] = event.end_us
                tx_event[i] = event
            # Advance: to the next transmission end if the medium is
            # globally busy for everyone relevant, else one slot.
            pending_ends = [e for e in tx_end if e is not None]
            if pending_ends:
                next_end = min(pending_ends)
                # Idle senders continue their backoff in slot steps even
                # while hidden transmissions are in flight.
                now = min(next_end, now + slot)
            else:
                now += slot
        return trace
