"""Hidden-terminal scenario helpers.

Provides the canonical Fig 1-1 two-sender scenario plus utilities for
drawing the random inter-collision offsets that 802.11 jitter produces —
"802.11 senders jitter every transmission by a short random interval, and
hence collisions start with a random stretch of interference free bits".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.backoff import BackoffPicker, FixedWindowBackoff
from repro.mac.timing import TIMING_80211G, Timing

__all__ = ["HiddenScenario", "collision_offset_pairs", "slot_to_samples"]


def slot_to_samples(timing: Timing, bitrate_bps: float,
                    samples_per_symbol: int = 2,
                    bits_per_symbol: int = 1) -> int:
    """How many receiver samples one backoff slot spans.

    At the paper's 500 kb/s BPSK with 2 samples/symbol, a 20 us slot is
    20e-6 * 500e3 = 10 bits -> 10 symbols -> 20 samples.
    """
    if bitrate_bps <= 0:
        raise ConfigurationError("bitrate must be positive")
    bits = timing.slot_us * 1e-6 * bitrate_bps
    symbols = bits / bits_per_symbol
    return max(1, int(round(symbols * samples_per_symbol)))


def collision_offset_pairs(rng: np.random.Generator, *,
                           n_pairs: int,
                           picker: BackoffPicker | None = None,
                           slot_samples: int = 20,
                           attempt_base: int = 0) -> list[tuple[int, int]]:
    """Draw (Δ1, Δ2) sample offsets for successive collisions of a packet
    pair, from backoff jitter.

    Each collision's offset is ``|slotA - slotB| * slot_samples``; pairs
    where Δ1 == Δ2 are kept (they are genuine undecodable events whose
    probability the evaluation must preserve).
    """
    if n_pairs < 1:
        raise ConfigurationError("n_pairs must be >= 1")
    picker = picker or FixedWindowBackoff(cw=16)
    out = []
    for _ in range(n_pairs):
        offsets = []
        for attempt in (attempt_base, attempt_base + 1):
            slot_a = picker.pick(attempt, rng)
            slot_b = picker.pick(attempt, rng)
            offsets.append(abs(slot_a - slot_b) * slot_samples)
        out.append((offsets[0], offsets[1]))
    return out


@dataclass
class HiddenScenario:
    """The Fig 1-1 setup: senders that cannot hear each other, one AP.

    ``n_senders`` mutually-hidden senders all transmit to the AP; every
    round they draw independent jitters, producing one multi-packet
    collision per round. ``collision_offsets`` returns per-round start
    offsets (in samples) for each sender — the input both to the symbolic
    Fig 4-7 analysis and to signal-level synthesis.
    """

    n_senders: int = 2
    slot_samples: int = 20
    picker: BackoffPicker = field(default_factory=lambda: FixedWindowBackoff(16))
    timing: Timing = TIMING_80211G

    def __post_init__(self) -> None:
        if self.n_senders < 2:
            raise ConfigurationError("a hidden scenario needs >= 2 senders")

    def collision_offsets(self, rng: np.random.Generator,
                          n_rounds: int) -> list[list[int]]:
        """Per-round absolute start offsets (samples), smallest first at 0.

        Round r uses attempt number r (so exponential backoff widens the
        window as retransmissions accumulate, as in Fig 4-7b).
        """
        if n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        rounds = []
        for r in range(n_rounds):
            slots = [self.picker.pick(r, rng) for _ in range(self.n_senders)]
            base = min(slots)
            rounds.append([(s - base) * self.slot_samples for s in slots])
        return rounds
