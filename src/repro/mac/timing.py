"""802.11 PHY/MAC timing constants.

Values follow the standard amendments; the Lemma 4.4.1 analysis uses the
backward-compatible 802.11g set (slot 20us, SIFS 10us, ACK 30us) exactly as
the paper's Appendix A does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Timing", "TIMING_80211A", "TIMING_80211B", "TIMING_80211G"]


@dataclass(frozen=True)
class Timing:
    """Timing parameters of one 802.11 flavour (microseconds)."""

    name: str
    slot_us: float
    sifs_us: float
    ack_us: float
    cw_min: int
    cw_max: int

    def __post_init__(self) -> None:
        if min(self.slot_us, self.sifs_us, self.ack_us) <= 0:
            raise ConfigurationError("timing durations must be positive")
        if not 0 < self.cw_min <= self.cw_max:
            raise ConfigurationError("need 0 < cw_min <= cw_max")

    @property
    def difs_us(self) -> float:
        """DIFS = SIFS + 2 slots."""
        return self.sifs_us + 2.0 * self.slot_us

    def backoff_us(self, slots: int) -> float:
        if slots < 0:
            raise ConfigurationError("slots must be non-negative")
        return slots * self.slot_us


# Backward-compatible 802.11g (the paper's Appendix A parameter set:
# S = 20us, ACK = 30us, SIFS = 10us).
TIMING_80211G = Timing("802.11g", slot_us=20.0, sifs_us=10.0, ack_us=30.0,
                       cw_min=16, cw_max=1024)

# 802.11a (OFDM, short slots). The §4.5 simulation "of the 802.11a MAC".
TIMING_80211A = Timing("802.11a", slot_us=9.0, sifs_us=16.0, ack_us=24.0,
                       cw_min=16, cw_max=1024)

# Classic 802.11b DSSS timing.
TIMING_80211B = Timing("802.11b", slot_us=20.0, sifs_us=10.0, ack_us=112.0,
                       cw_min=32, cw_max=1024)
