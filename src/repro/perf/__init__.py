"""Tracked performance benchmarks and pre-optimization reference kernels.

``repro.perf.bench`` times every vectorized DSP hot path against the
original scalar implementation preserved in ``repro.perf.reference`` and
writes ``BENCH_perf.json``; run it with ``python -m repro perf`` or
``make perfbench``. See ``docs/performance.md`` for methodology and the
report schema.
"""

from repro.perf.bench import main, run_perf_suite, write_report

__all__ = ["main", "run_perf_suite", "write_report"]
