"""Tracked performance benchmarks for the symbol-rate DSP hot paths.

Two layers:

- **Kernel microbenches** — each optimized kernel timed against its
  preserved pre-optimization implementation (:mod:`repro.perf.reference`)
  on identical seeded inputs; reported as ns/symbol (or ns/bit, ns/step)
  plus the speedup ratio.
- **End-to-end** — a full hidden-pair ZigZag decode (build collision,
  schedule, decode forward+backward) in trials/sec, and a single-process
  :class:`~repro.runner.runner.MonteCarloRunner` sweep over the ``pair``
  scenario, both before (reference kernels patched in) and after.

``run_perf_suite`` returns the JSON-ready payload; the ``repro perf`` CLI
subcommand and ``make perfbench`` write it to ``BENCH_perf.json`` at the
repo root. The schema is documented in ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.perf import reference
from repro.phy.batch import BatchedMatchedSampler, BatchedPhaseTracker
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.constellation import BPSK
from repro.phy.correlation import find_correlation_peaks
from repro.phy.estimation import ChannelEstimate
from repro.phy.preamble import default_preamble
from repro.phy.pulse import MatchedSampler, PulseShaper
from repro.phy.tracking import MuellerMullerTracker, PhaseTracker
from repro.receiver.frontend import StreamConfig
from repro.runner.builders import hidden_pair_scenario
from repro.runner.runner import MonteCarloRunner
from repro.runner.spec import ScenarioSpec
from repro.utils.bits import random_bits
from repro.zigzag.batch import BatchedPairDecoder
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.reencode import Reencoder

__all__ = ["run_perf_suite", "write_report", "main"]

SCHEMA_VERSION = 1
DEFAULT_REPORT = "BENCH_perf.json"


# ----------------------------------------------------------------------
# Timing primitives
# ----------------------------------------------------------------------
def best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-*repeats* wall time of ``fn()`` in seconds (1 warmup run)."""
    fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@dataclass(frozen=True)
class KernelBench:
    """One microbenchmark: optimized vs reference on identical inputs."""

    name: str
    unit: str                       # what n_units counts (symbol, bit, ...)
    n_units: int
    run_after: Callable[[], object]
    run_before: Callable[[], object]

    def measure(self, repeats: int) -> dict:
        after = best_time(self.run_after, repeats)
        before = best_time(self.run_before, repeats)
        return {
            "unit": self.unit,
            "n_units": self.n_units,
            "ns_per_unit_before": before / self.n_units * 1e9,
            "ns_per_unit_after": after / self.n_units * 1e9,
            "seconds_before": before,
            "seconds_after": after,
            "speedup": before / after if after > 0 else float("inf"),
        }


# ----------------------------------------------------------------------
# Kernel microbenches (deterministic seeded inputs)
# ----------------------------------------------------------------------
def _build_kernel_benches(n_symbols: int) -> list[KernelBench]:
    rng = np.random.default_rng(20260728)
    shaper = PulseShaper()
    sampler = MatchedSampler(shaper)
    preamble = default_preamble(32)
    code = ConvolutionalCode()

    # Noisy rotated BPSK segment shared by the tracker benches.
    clean = BPSK.modulate(rng.integers(0, 2, n_symbols))
    rotated = clean * np.exp(1j * (0.3 + 2e-3 * np.arange(n_symbols)))
    noisy = rotated + (rng.normal(scale=0.05, size=n_symbols)
                       + 1j * rng.normal(scale=0.05, size=n_symbols))

    def tracker_dd_after():
        PhaseTracker().process(noisy, BPSK)

    def tracker_dd_before():
        reference.phase_tracker_process(PhaseTracker(), noisy, BPSK)

    def tracker_da_after():
        PhaseTracker().process(noisy, BPSK, known=clean)

    def tracker_da_before():
        reference.phase_tracker_process(PhaseTracker(), noisy, BPSK,
                                        known=clean)

    def tracker_off_after():
        PhaseTracker(enabled=False, freq=1e-3).process(noisy, BPSK)

    def tracker_off_before():
        reference.phase_tracker_process(
            PhaseTracker(enabled=False, freq=1e-3), noisy, BPSK)

    wave = shaper.shape(clean)
    start = shaper.delay + 0.37
    # Chunk-sized calls, the shape the stream decoder actually issues
    # (ZigZag decodes tens-to-hundreds of symbols per chunk, not whole
    # captures at once).
    chunk_len = 160
    n_chunks = max(1, n_symbols // chunk_len)

    def sampler_after():
        for c in range(n_chunks):
            sampler.sample(wave, start + c * chunk_len * shaper.sps,
                           chunk_len)

    def sampler_before():
        for c in range(n_chunks):
            reference.matched_sampler_sample(
                sampler, wave, start + c * chunk_len * shaper.sps,
                chunk_len)

    info_bits = random_bits(max(64, n_symbols // 2), rng)
    coded = code.encode(info_bits)
    soft = (1.0 - 2.0 * coded.astype(float)
            + rng.normal(scale=0.3, size=coded.size))
    n_steps = soft.size // code.rate_inverse

    def viterbi_after():
        code.decode_soft(soft)

    def viterbi_before():
        reference.convolutional_decode_soft(code, soft)

    encode_bits = random_bits(4 * n_symbols, rng)

    def encode_after():
        code.encode(encode_bits)

    def encode_before():
        reference.convolutional_encode(code, encode_bits)

    decisions = BPSK.slice_symbols(noisy)

    def mm_after():
        MuellerMullerTracker().process(noisy, decisions)

    def mm_before():
        reference.mueller_muller_process(MuellerMullerTracker(), noisy,
                                         decisions)

    chunk = clean[:min(256, n_symbols)]
    estimate = ChannelEstimate(gain=1.4 * np.exp(0.5j), freq_offset=2e-4,
                               sampling_offset=0.37, snr_db=12.0)

    def _fresh_reencoder() -> Reencoder:
        return Reencoder(shaper=shaper, estimate=estimate, start=41.37)

    reenc_after = _fresh_reencoder()
    reenc_before = _fresh_reencoder()

    def reencode_after():
        reenc_after.image(chunk, 16)

    def reencode_before():
        reference.reencoder_image(reenc_before, chunk, 16)

    # Satellite: single-pass correlation peak finding, against the
    # verbatim pre-PR implementation preserved in repro.perf.reference.
    signal = np.concatenate([
        np.zeros(50, complex),
        shaper.shape(preamble.symbols),
        np.zeros(max(0, n_symbols - 50), complex),
    ]) + (rng.normal(scale=0.1, size=50 + shaper.waveform_length(
        len(preamble)) + max(0, n_symbols - 50))
        + 1j * rng.normal(scale=0.1, size=50 + shaper.waveform_length(
            len(preamble)) + max(0, n_symbols - 50)))

    def peaks_after():
        find_correlation_peaks(signal, preamble, threshold=0.3)

    def peaks_before():
        reference.find_correlation_peaks(signal, preamble, threshold=0.3)

    # Trial-axis batched kernels vs their loop-of-scalar baselines (the
    # batched engines didn't replace scalar code; N scalar dispatches ARE
    # the before side).
    # Chunk length matches the hidden-pair schedule's typical step (the
    # inter-arrival gap in symbols, ~20-50): per-call dispatch overhead
    # is exactly what the trial axis amortizes, so benching at e.g. 160
    # symbols/chunk would understate (even invert) the engine's win.
    lanes = max(4, min(64, n_symbols // 128 * 16))
    lane_chunk = 48
    batch_wave = np.zeros(
        (lanes, shaper.waveform_length(lane_chunk) + 2 * shaper.taps.size),
        dtype=complex)
    batch_wave[:, shaper.taps.size:-shaper.taps.size] = np.stack([
        shaper.shape(BPSK.modulate(rng.integers(0, 2, lane_chunk)))
        for _ in range(lanes)])
    batch_starts = shaper.delay + rng.uniform(-0.5, 0.5, lanes)
    batch_sampler = BatchedMatchedSampler(shaper)

    def batched_sampler_after():
        batch_sampler.sample(batch_wave, shaper.taps.size, batch_starts,
                             lane_chunk)

    def batched_sampler_before():
        reference.batched_matched_sampler_loop(
            shaper, batch_wave, shaper.taps.size, batch_starts, lane_chunk)

    lane_clean = BPSK.modulate(rng.integers(0, 2, (lanes * lane_chunk)))\
        .reshape(lanes, lane_chunk)
    lane_noisy = (lane_clean
                  * np.exp(1j * (0.2 + 1e-3 * np.arange(lane_chunk)))
                  + rng.normal(scale=0.05, size=(lanes, lane_chunk))
                  + 1j * rng.normal(scale=0.05, size=(lanes, lane_chunk)))
    zero_state = np.zeros(lanes)

    def batched_tracker_after():
        BatchedPhaseTracker(kp=0.12, ki=0.01, phase=zero_state,
                            freq=zero_state).process(lane_noisy, BPSK)

    def batched_tracker_before():
        reference.batched_phase_tracker_loop(0.12, 0.01, zero_state,
                                             zero_state, lane_noisy, BPSK)

    lane_info = rng.integers(0, 2, (lanes, max(32, n_symbols // 16)))
    lane_coded = np.stack([code.encode(row) for row in lane_info])
    lane_soft = (1.0 - 2.0 * lane_coded.astype(float)
                 + rng.normal(scale=0.3, size=lane_coded.shape))
    lane_steps = lanes * (lane_coded.shape[1] // code.rate_inverse)

    def batched_viterbi_after():
        code.decode_soft_batch(lane_soft)

    def batched_viterbi_before():
        reference.batched_viterbi_loop(code, lane_soft)

    return [
        KernelBench("phase_tracker_decision_directed", "symbol", n_symbols,
                    tracker_dd_after, tracker_dd_before),
        KernelBench("phase_tracker_data_aided", "symbol", n_symbols,
                    tracker_da_after, tracker_da_before),
        KernelBench("phase_tracker_disabled", "symbol", n_symbols,
                    tracker_off_after, tracker_off_before),
        KernelBench("matched_sampler", "symbol", n_chunks * chunk_len,
                    sampler_after, sampler_before),
        KernelBench("viterbi_decode_soft", "trellis_step", n_steps,
                    viterbi_after, viterbi_before),
        KernelBench("convolutional_encode", "bit", encode_bits.size,
                    encode_after, encode_before),
        KernelBench("mueller_muller", "symbol", n_symbols,
                    mm_after, mm_before),
        KernelBench("reencoder_image", "symbol", chunk.size,
                    reencode_after, reencode_before),
        KernelBench("find_correlation_peaks", "sample", signal.size,
                    peaks_after, peaks_before),
        KernelBench("batched_matched_sampler", "symbol",
                    lanes * lane_chunk,
                    batched_sampler_after, batched_sampler_before),
        KernelBench("batched_phase_tracker", "symbol",
                    lanes * lane_chunk,
                    batched_tracker_after, batched_tracker_before),
        KernelBench("batched_viterbi", "trellis_step", lane_steps,
                    batched_viterbi_after, batched_viterbi_before),
    ]


# ----------------------------------------------------------------------
# End-to-end benches
# ----------------------------------------------------------------------
def _decode_outcome_fingerprint(seed: int, payload_bits: int) -> dict:
    """One full trial: synthesize a hidden-terminal collision pair, run
    the complete ZigZag decode (forward + backward + MRC), and return the
    per-packet outcome — the golden-equivalence test compares these
    fingerprints bit-for-bit across kernel implementations."""
    rng = np.random.default_rng(seed)
    preamble = default_preamble(32)
    shaper = PulseShaper()
    config = StreamConfig(preamble=preamble, shaper=shaper, noise_power=1.0)
    captures, frames, specs, placements = hidden_pair_scenario(
        rng, preamble, shaper, snr_db=12.0, payload_bits=payload_bits,
        noise_power=1.0)
    outcome = ZigZagPairDecoder(config, use_backward=True).decode(
        [c.samples for c in captures], specs, placements)
    return {name: {"success": outcome.results[name].success,
                   "bits": np.array(outcome.results[name].bits, copy=True)}
            for name in frames}


def _decode_hidden_pair_trial(seed: int, payload_bits: int) -> bool:
    result = _decode_outcome_fingerprint(seed, payload_bits)
    return all(row["success"] for row in result.values())


def _interleaved_best(fn, repeats: int) -> tuple[float, float]:
    """Best-of-*repeats* wall times of ``fn`` with optimized and reference
    kernels, alternating per round so transient machine load hits both
    measurements equally instead of biasing the ratio."""
    fn()  # warmup, optimized paths
    with reference.use_reference_kernels():
        fn()  # warmup, reference paths
    after = before = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        after = min(after, time.perf_counter() - t0)
        with reference.use_reference_kernels():
            t0 = time.perf_counter()
            fn()
            before = min(before, time.perf_counter() - t0)
    return before, after


def _bench_end_to_end(n_trials: int, payload_bits: int,
                      repeats: int = 2) -> dict:
    def run_trials():
        for i in range(n_trials):
            _decode_hidden_pair_trial(7000 + i, payload_bits)

    before, after = _interleaved_best(run_trials, repeats)
    return {
        "scenario": "hidden_pair_decode",
        "mode": "loop",
        "n_trials": n_trials,
        "payload_bits": payload_bits,
        "trials_per_sec_before": n_trials / before,
        "trials_per_sec_after": n_trials / after,
        "seconds_before": before,
        "seconds_after": after,
        "speedup": before / after if after > 0 else float("inf"),
    }


def _bench_batched_end_to_end(batch_size: int, payload_bits: int,
                              repeats: int = 3) -> dict:
    """Trial-axis batched decode vs the per-trial loop on one shared
    batch of hidden-pair captures.

    Synthesis happens once outside the timed region (the runner moves it
    to the worker pool); the timing isolates decode throughput, which is
    what ``batch_size`` buys. Both sides are measured warm (one full
    untimed pass first) — the first pass through either path pays one-off
    cache fills (pulse kernels, scrambler PN, schedule objects) that
    steady-state Monte-Carlo sweeps never see again.
    """
    preamble = default_preamble(32)
    shaper = PulseShaper()
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=1.0)
    trials = []
    for i in range(batch_size):
        rng = np.random.default_rng(7000 + i)
        captures, _, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, snr_db=12.0,
            payload_bits=payload_bits, noise_power=1.0)
        trials.append(([c.samples for c in captures], specs, placements))

    decoder = BatchedPairDecoder(config)
    scalar = ZigZagPairDecoder(config)

    def run_batched():
        decoder.decode_batch(trials)

    def run_loop():
        for trial in trials:
            scalar.decode(*trial)

    run_batched()  # warm both paths (cache fills) before timing
    run_loop()
    batched = loop = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run_batched()
        batched = min(batched, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_loop()
        loop = min(loop, time.perf_counter() - t0)
    stats = decoder.last_stats
    return {
        "scenario": "hidden_pair_decode",
        "mode": "batched",
        "batch_size": batch_size,
        "payload_bits": payload_bits,
        "lockstep_trials": stats.lockstep,
        "fallback_trials": stats.fallback,
        "trials_per_sec_loop": batch_size / loop,
        "trials_per_sec_batched": batch_size / batched,
        "seconds_loop": loop,
        "seconds_batched": batched,
        "speedup": loop / batched if batched > 0 else float("inf"),
    }


def _bench_runner_sweep(n_trials: int, repeats: int = 2) -> dict:
    """Time a single-process MonteCarloRunner sweep on the pair scenario.

    ``n_workers=1`` keeps execution inline so the reference-kernel patch
    reaches every trial (and removes process fan-out noise from the
    measurement).
    """
    spec = ScenarioSpec(kind="pair", design="zigzag", n_trials=n_trials,
                        seed=3, payload_bits=120, n_packets=2,
                        max_rounds=2, params={"snr_db": 12.0})
    runner = MonteCarloRunner(n_workers=1)
    values = [8.0, 12.0]

    def run_sweep():
        runner.sweep(spec, "snr_db", values)

    before, after = _interleaved_best(run_sweep, repeats)
    total_trials = n_trials * len(values)
    return {
        "scenario": "pair_sweep",
        "param": "snr_db",
        "points": values,
        "trials_per_point": n_trials,
        "trials_per_sec_before": total_trials / before,
        "trials_per_sec_after": total_trials / after,
        "seconds_before": before,
        "seconds_after": after,
        "speedup": before / after if after > 0 else float("inf"),
    }


def _bench_multicell_coupled(smoke: bool, repeats: int = 2) -> dict:
    """Time the coupled multi-cell coordinator, sequential vs parallel.

    One "trial" is a full coupled city-block run (every cell stepped to
    completion with real inter-cell waveform exchange). The parallel
    mode pins one cell per worker process (``coupled_workers = 0``);
    the entry records both modes' trials/sec, the speedup, and whether
    the reports came out bit-identical — plus ``cpu_count``, since the
    attainable speedup is bounded by cores (on a single-core host the
    barrier overhead makes the parallel mode *slower*; the >= 2x target
    on the 4-AP block assumes >= 4 usable cores).
    """
    import os

    from repro.runner.builders import build_city_session

    n_aps, n_clients = (2, 8) if smoke else (4, 24)
    area_m = 60.0 if smoke else 80.0
    n_packets = 1 if smoke else 2

    def run_once(workers):
        spec = ScenarioSpec.from_dict({
            "scenario": {"kind": "city_multicell", "design": "zigzag",
                         "n_packets": n_packets, "payload_bits": 96,
                         "seed": 11},
            "deployment": {"n_aps": n_aps, "n_clients": n_clients,
                           "area_m": area_m, "seed": 11,
                           "coupled_workers": workers},
        })
        city = build_city_session(spec, np.random.default_rng(11),
                                  "zigzag")
        t0 = time.perf_counter()
        report = city.run()
        return time.perf_counter() - t0, report

    def comparable(report):
        return (dict(report.counters), report.total_delivered,
                {ap: r.samples_elapsed for ap, r in report.cells.items()})

    seq_best = par_best = float("inf")
    seq_report = par_report = None
    for _ in range(max(1, repeats)):
        seconds, seq_report = run_once(1)
        seq_best = min(seq_best, seconds)
        seconds, par_report = run_once(0)   # one worker per cell
        par_best = min(par_best, seconds)
    return {
        "scenario": "city_multicell",
        "n_aps": n_aps,
        "n_clients": n_clients,
        "n_cells": len(seq_report.cells),
        "workers": par_report.workers,
        "cpu_count": os.cpu_count(),
        "seconds_sequential": seq_best,
        "seconds_parallel": par_best,
        "trials_per_sec_sequential": 1.0 / seq_best,
        "trials_per_sec_parallel": 1.0 / par_best,
        "speedup": seq_best / par_best if par_best > 0 else float("inf"),
        "identical": comparable(seq_report) == comparable(par_report),
        "degraded": par_report.degraded,
    }


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_perf_suite(smoke: bool = False) -> dict:
    """Run every benchmark; returns the ``BENCH_perf.json`` payload.

    ``smoke`` shrinks sizes/repeats to a few seconds total — used by CI to
    keep the harness itself from rotting, not for tracked numbers.
    """
    n_symbols = 512 if smoke else 8192
    repeats = 1 if smoke else 3
    e2e_trials = 1 if smoke else 6
    sweep_trials = 1 if smoke else 2

    kernels = {}
    for bench in _build_kernel_benches(n_symbols):
        kernels[bench.name] = bench.measure(repeats)

    payload = {
        "schema_version": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "profile": "smoke" if smoke else "full",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {
            "n_symbols": n_symbols,
            "repeats": repeats,
            "end_to_end_trials": e2e_trials,
            "sweep_trials_per_point": sweep_trials,
        },
        "kernels": kernels,
        "end_to_end": _bench_end_to_end(
            e2e_trials, payload_bits=96 if smoke else 240,
            repeats=1 if smoke else 4),
        "batched_end_to_end": _bench_batched_end_to_end(
            8 if smoke else 512, payload_bits=96 if smoke else 240,
            repeats=1 if smoke else 3),
        "runner_sweep": _bench_runner_sweep(sweep_trials,
                                            repeats=1 if smoke else 4),
        "multicell_coupled": _bench_multicell_coupled(
            smoke, repeats=1 if smoke else 3),
    }
    return payload


def write_report(payload: dict, path: str = DEFAULT_REPORT) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_summary(payload: dict) -> str:
    lines = [f"perf profile={payload['profile']} "
             f"(n_symbols={payload['config']['n_symbols']}, "
             f"repeats={payload['config']['repeats']})"]
    lines.append(f"{'kernel':<34} {'before':>12} {'after':>12} "
                 f"{'speedup':>8}")
    for name, row in sorted(payload["kernels"].items()):
        unit = f"ns/{row['unit']}"
        lines.append(
            f"{name:<34} {row['ns_per_unit_before']:>9.0f} {unit:<3}"
            f" {row['ns_per_unit_after']:>8.0f} {unit:<3}"
            f" {row['speedup']:>7.1f}x")
    e2e = payload["end_to_end"]
    lines.append(
        f"{'end_to_end ' + e2e['scenario']:<34} "
        f"{e2e['trials_per_sec_before']:>9.2f} t/s "
        f"{e2e['trials_per_sec_after']:>8.2f} t/s "
        f"{e2e['speedup']:>7.1f}x")
    batched = payload.get("batched_end_to_end")
    if batched is not None:
        label = (f"batched_e2e x{batched['batch_size']} "
                 f"{batched['scenario']}")
        lines.append(
            f"{label:<34} "
            f"{batched['trials_per_sec_loop']:>9.2f} t/s "
            f"{batched['trials_per_sec_batched']:>8.2f} t/s "
            f"{batched['speedup']:>7.1f}x")
    sweep = payload["runner_sweep"]
    lines.append(
        f"{'runner_sweep ' + sweep['scenario']:<34} "
        f"{sweep['trials_per_sec_before']:>9.2f} t/s "
        f"{sweep['trials_per_sec_after']:>8.2f} t/s "
        f"{sweep['speedup']:>7.1f}x")
    coupled = payload.get("multicell_coupled")
    if coupled is not None:
        label = (f"multicell_coupled {coupled['n_aps']}AP "
                 f"x{coupled['workers']}w")
        flags = "identical" if coupled["identical"] else "DIVERGED"
        lines.append(
            f"{label:<34} "
            f"{coupled['trials_per_sec_sequential']:>9.2f} t/s "
            f"{coupled['trials_per_sec_parallel']:>8.2f} t/s "
            f"{coupled['speedup']:>7.1f}x  ({flags}, "
            f"{coupled['cpu_count']} cpus)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (also reachable as ``repro perf``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Benchmark the DSP hot paths against their "
                    "pre-optimization reference implementations.")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes; exercises the harness only")
    parser.add_argument("--out", default=DEFAULT_REPORT,
                        help=f"report path (default {DEFAULT_REPORT})")
    parser.add_argument("--json", action="store_true",
                        help="print the payload as JSON instead of a table")
    args = parser.parse_args(argv)
    payload = run_perf_suite(smoke=args.smoke)
    write_report(payload, args.out)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_summary(payload))
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
