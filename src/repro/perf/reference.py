"""Pre-optimization ("before") implementations of the DSP hot paths.

These are the scalar/per-tap loops the vectorized kernels in
:mod:`repro.phy` and :mod:`repro.zigzag` replaced, preserved verbatim so

- the perf harness (:mod:`repro.perf.bench`) can measure honest
  before/after deltas in the same run on the same machine, and
- the golden-equivalence tests (``tests/test_perf_equivalence.py``) can
  assert that the optimized kernels produce numerically identical output.

Each function takes the live object as its first argument and mutates its
state exactly as the original method did. :func:`use_reference_kernels`
temporarily swaps them in class-wide, which is how the end-to-end baseline
(whole ZigZag pair decode, runner sweep) is timed.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.pulse import MatchedSampler
from repro.phy.resample import FractionalDelay
from repro.phy.tracking import MuellerMullerTracker, PhaseTracker
from repro.utils.bits import as_bit_array
from repro.zigzag.reencode import Reencoder

__all__ = [
    "phase_tracker_process",
    "matched_sampler_sample",
    "convolutional_encode",
    "convolutional_decode_soft",
    "mueller_muller_process",
    "reencoder_image",
    "batched_matched_sampler_loop",
    "batched_phase_tracker_loop",
    "batched_viterbi_loop",
    "use_reference_kernels",
]


def phase_tracker_process(tracker: PhaseTracker, symbols, constellation,
                          known=None):
    """Original per-symbol ``PhaseTracker.process`` loop."""
    y = np.asarray(symbols, dtype=complex).ravel()
    if known is not None:
        known = np.asarray(known, dtype=complex).ravel()
        if known.size != y.size:
            raise ConfigurationError("known symbols length mismatch")
    corrected = np.empty_like(y)
    decisions = np.empty_like(y)
    phases = np.empty(y.size, dtype=float)
    for i in range(y.size):
        phases[i] = tracker.phase
        z = y[i] * np.exp(-1j * tracker.phase)
        corrected[i] = z
        reference = known[i] if known is not None \
            else constellation.slice_symbols([z])[0]
        decisions[i] = reference
        if tracker.enabled and reference != 0:
            error = float(np.angle(z * np.conj(reference)))
            tracker._last_error = error
            tracker.freq += tracker.ki * error
            tracker.phase += tracker.freq + tracker.kp * error
        else:
            tracker.phase += tracker.freq
    return corrected, decisions, phases


def shaper_kernel_at(shaper, fraction: float) -> np.ndarray:
    """Original uncached ``PulseShaper.kernel_at`` (re-evaluates the RRC
    prototype on every call)."""
    from repro.phy.pulse import rrc_function

    j = np.arange(-shaper.delay, shaper.delay + 1)
    return rrc_function((j + fraction) / shaper.sps, shaper.beta) \
        * shaper._scale


def matched_sampler_sample(sampler: MatchedSampler, signal, start: float,
                           count: int) -> np.ndarray:
    """Original per-tap ``MatchedSampler.sample`` loop."""
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    y = np.asarray(signal, dtype=complex).ravel()
    if count == 0:
        return np.zeros(0, dtype=complex)
    sps = sampler.shaper.sps
    delay = sampler.shaper.delay
    base = int(np.floor(start))
    frac = start - base
    kernel = shaper_kernel_at(sampler.shaper, -frac)
    first = base - delay
    last = base + (count - 1) * sps + delay
    pad_left = max(0, -first)
    pad_right = max(0, last + 1 - y.size)
    padded = np.concatenate([
        np.zeros(pad_left, dtype=complex), y,
        np.zeros(pad_right, dtype=complex),
    ])
    origin = first + pad_left
    out = np.zeros(count, dtype=complex)
    for j, tap in enumerate(kernel):
        if tap == 0.0:
            continue
        sl = padded[origin + j: origin + j + count * sps: sps]
        out += tap * sl
    return out


def convolutional_encode(code: ConvolutionalCode, bits,
                         terminate: bool = True) -> np.ndarray:
    """Original per-bit state-walk ``ConvolutionalCode.encode``."""
    data = as_bit_array(bits)
    if terminate:
        data = np.concatenate([
            data, np.zeros(code.constraint_length - 1, dtype=np.uint8)
        ])
    out = np.empty(data.size * code.rate_inverse, dtype=np.uint8)
    state = 0
    for i, bit in enumerate(data):
        out[i * code.rate_inverse:(i + 1) * code.rate_inverse] = \
            code._outputs[state, bit]
        state = code._next_state[state, bit]
    return out


def convolutional_decode_soft(code: ConvolutionalCode, soft,
                              terminated: bool = True) -> np.ndarray:
    """Original ``ConvolutionalCode.decode_soft`` with the per-state
    per-bit Python add-compare-select."""
    values = np.asarray(soft, dtype=float).ravel()
    n_out = code.rate_inverse
    if values.size % n_out != 0:
        raise ConfigurationError(
            f"soft length {values.size} not a multiple of {n_out}")
    n_steps = values.size // n_out
    if n_steps == 0:
        return np.zeros(0, dtype=np.uint8)
    n_states = code.n_states

    expected = 1.0 - 2.0 * code._outputs.astype(float)  # (S, 2, n)
    metrics = np.full(n_states, -np.inf)
    metrics[0] = 0.0
    survivors = np.zeros((n_steps, n_states), dtype=np.int8)
    predecessors = np.zeros((n_steps, n_states), dtype=np.int64)

    for step in range(n_steps):
        block = values[step * n_out:(step + 1) * n_out]
        branch = expected @ block              # (S, 2)
        candidate = metrics[:, None] + branch  # (S, 2)
        new_metrics = np.full(n_states, -np.inf)
        for state in range(n_states):
            for bit in range(2):
                nxt = code._next_state[state, bit]
                score = candidate[state, bit]
                if score > new_metrics[nxt]:
                    new_metrics[nxt] = score
                    survivors[step, nxt] = bit
                    predecessors[step, nxt] = state
        metrics = new_metrics

    state = 0 if terminated else int(np.argmax(metrics))
    decoded = np.empty(n_steps, dtype=np.uint8)
    for step in range(n_steps - 1, -1, -1):
        decoded[step] = survivors[step, state]
        state = predecessors[step, state]
    if terminated:
        decoded = decoded[:n_steps - (code.constraint_length - 1)]
    return decoded


def mueller_muller_process(tracker: MuellerMullerTracker, received,
                           decisions) -> float:
    """Original per-pair ``MuellerMullerTracker.process`` loop."""
    y = np.asarray(received, dtype=complex).ravel()
    d = np.asarray(decisions, dtype=complex).ravel()
    if y.size != d.size:
        raise ConfigurationError("received/decisions length mismatch")
    for yi, di in zip(y, d):
        tracker.update(complex(yi), complex(di))
    return tracker.offset_estimate


def fractional_delay_apply(fd: FractionalDelay, signal) -> np.ndarray:
    """Original per-tap ``FractionalDelay.apply`` loop."""
    sig = np.asarray(signal, dtype=complex).ravel()
    if sig.size == 0:
        return sig
    w = fd.half_width
    padded = np.concatenate([
        np.zeros(w, dtype=complex), sig, np.zeros(w, dtype=complex)
    ])
    out = np.zeros(sig.size, dtype=complex)
    for offset, tap in zip(range(-w, w + 1), fd._taps):
        out += tap * padded[w + offset: w + offset + sig.size]
    if fd._int_delay > 0:
        out = np.concatenate([
            np.zeros(fd._int_delay, dtype=complex),
            out[:-fd._int_delay] if fd._int_delay < out.size
            else np.zeros(0, dtype=complex),
        ])[:sig.size]
    elif fd._int_delay < 0:
        shift = -fd._int_delay
        out = np.concatenate([
            out[shift:], np.zeros(min(shift, sig.size), dtype=complex)
        ])[:sig.size]
    return out


def reencoder_image(reencoder: Reencoder, symbols, i0: int):
    """Original two-stage ``Reencoder.image``: full RRC shaping followed by
    a separate fractional-delay FIR pass."""
    d = np.asarray(symbols, dtype=complex).ravel()
    if d.size == 0:
        raise ConfigurationError("cannot re-encode an empty chunk")
    j0 = i0
    if reencoder.symbol_isi is not None \
            and not reencoder.symbol_isi.is_identity:
        taps = reencoder.symbol_isi.taps
        d = np.convolve(d, taps)
        j0 = i0 - reencoder.symbol_isi.main_tap
    wave = reencoder.shaper.shape(d)
    pad = reencoder.delay_half_width + 1
    wave = np.concatenate([
        np.zeros(pad, dtype=complex), wave,
        np.zeros(pad, dtype=complex),
    ])
    position = (reencoder.start + reencoder.shaper.sps * j0
                - reencoder.shaper.delay - pad)
    base = int(np.floor(position))
    frac = position - base
    # A dedicated cache dict: the live instance's _frac_cache now holds
    # composed kernels, not FractionalDelay objects.
    cache = reencoder.__dict__.setdefault("_reference_delay_cache", {})
    key = round(frac, 9)
    if key not in cache:
        cache[key] = FractionalDelay(frac, reencoder.delay_half_width)
    wave = fractional_delay_apply(cache[key], wave)
    n = base + np.arange(wave.size, dtype=float)
    ramp = np.exp(2j * np.pi * reencoder.estimate.freq_offset * n)
    return reencoder.estimate.gain * wave * ramp, base


def synchronizer_preamble_score(sync, signal, start: float,
                                coarse_freq: float) -> float:
    """Original ``Synchronizer._preamble_score`` (rebuilds the derotation
    vector, including the score-irrelevant start phase, on every call)."""
    symbols = sync._sampler.sample(signal, start, len(sync.preamble))
    k = np.arange(len(sync.preamble))
    rot = np.exp(-2j * np.pi * coarse_freq *
                 (start + sync.shaper.sps * k))
    return abs(np.sum(np.conj(sync.preamble.symbols) * symbols * rot))


def synchronizer_detect(sync, signal, coarse_freq: float = 0.0,
                        max_peaks=None, min_separation: int = 16):
    """Original ``Synchronizer.detect`` (runs the sliding correlation twice
    — once raw, once inside the score normalization)."""
    from repro.phy.correlation import CorrelationPeak

    corr = sync.correlate(signal, coarse_freq)
    y = np.asarray(signal, dtype=complex).ravel()
    corr2 = sync.correlate(y, coarse_freq)  # the duplicated pass
    window = sync._waveform.size
    energy = np.convolve(np.abs(y) ** 2, np.ones(window), mode="valid")
    denom = np.sqrt(sync.reference_energy * np.maximum(energy, 1e-30))
    scores = np.abs(corr2) / denom
    separation = min_separation
    candidates = np.flatnonzero(scores >= sync.threshold)
    used = np.zeros(scores.size, dtype=bool)
    peaks = []
    for idx in candidates[np.argsort(-scores[candidates])]:
        if used[idx]:
            continue
        lo = max(0, idx - separation)
        hi = min(scores.size, idx + separation + 1)
        used[lo:hi] = True
        peaks.append(CorrelationPeak(
            position=int(idx) + sync.shaper.delay,
            fine_offset=0.0,
            value=complex(corr[idx]),
            score=float(scores[idx]),
        ))
        if max_peaks is not None and len(peaks) >= max_peaks:
            break
    peaks.sort(key=lambda p: p.position)
    return peaks


def channel_apply(channel, symbols, start_sample: int = 0) -> np.ndarray:
    """Original ``Channel.apply`` (designs a fresh fractional-delay kernel
    on every call; the per-tap FIR comes from the patched
    ``FractionalDelay.apply``)."""
    x = np.asarray(symbols, dtype=complex).ravel()
    if x.size == 0:
        return x
    p = channel.params
    out = x
    if p.tx_evm > 0.0:
        distortion = (channel.rng.standard_normal(out.size)
                      + 1j * channel.rng.standard_normal(out.size))
        out = out * (1.0 + p.tx_evm / np.sqrt(2.0) * distortion)
    out = p.isi_filter().apply(out)
    if p.sampling_offset != 0.0:
        out = FractionalDelay(p.sampling_offset).apply(out)
    n = np.arange(start_sample, start_sample + out.size, dtype=float)
    phase_ramp = np.exp(2j * np.pi * p.freq_offset * n)
    out = p.gain * out * phase_ramp
    if p.phase_noise_std > 0.0:
        steps = channel.rng.normal(0.0, p.phase_noise_std, out.size)
        out = out * np.exp(1j * np.cumsum(steps))
    return out


def frontend_static_derotate(stream, raw: np.ndarray, i0: int) -> np.ndarray:
    """Original ``SymbolStreamDecoder._static_derotate`` (fresh arange and
    complex exponential per chunk)."""
    est = stream.estimate
    sps = stream.config.shaper.sps
    n = stream.start + sps * np.arange(i0, i0 + raw.size)
    ramp = np.exp(-2j * np.pi * est.freq_offset * n)
    gain = est.gain if est.gain != 0 else 1e-12
    return raw * ramp / gain


def engine_subtract_chunk(engine, packet: str, target: int,
                          decoded_from: int, chunk) -> None:
    """Original ``ZigZagEngine._subtract_chunk`` (per-call arange and
    unconditional intra-chunk ramp on the cross-capture path)."""
    from repro.zigzag.reencode import add_segment, subtract_segment

    key = (packet, target)
    reencoder = engine._get_reencoder(packet, target)
    if target == decoded_from:
        stream = engine.streams[key]
        reencoder.estimate = stream.estimate
        if stream.channel_isi is not None:
            reencoder.symbol_isi = stream.channel_isi
        effective = chunk.effective_symbols
        segment, base = reencoder.image(effective, chunk.i0)
    else:
        sub = engine.subtraction[key]
        sps = engine.config.shaper.sps
        center = reencoder.start + sps * 0.5 * (chunk.i0 + chunk.i1)
        predicted = sub.predict(center)
        effective = chunk.decisions * predicted * np.exp(
            1j * sub.freq * sps
            * (np.arange(chunk.i0, chunk.i1)
               - 0.5 * (chunk.i0 + chunk.i1)))
        segment, base = reencoder.image(effective, chunk.i0)
        if engine.measure_correction:
            correction = engine._measure_and_update(
                key, segment, base, chunk, reencoder, predicted, center)
            if correction != 1.0:
                segment = segment * correction
    subtract_segment(engine.residual[target], segment, base)
    add_segment(engine.images[key], segment, base)


def engine_measure_and_update(engine, key, segment, base, chunk, reencoder,
                              predicted: complex, center: float) -> complex:
    """Original numpy-scalar ``ZigZagEngine._measure_and_update``."""
    sub = engine.subtraction[key]
    residual = engine.residual[key[1]]
    core = reencoder.core_slice(chunk.i0, chunk.i1, base, segment.size)
    lo = base + core.start
    hi = base + core.stop
    if lo < 0 or hi > residual.size or hi <= lo:
        return 1.0
    seg_core = segment[core]
    denom = float(np.sum(np.abs(seg_core) ** 2))
    noise_floor = engine.config.noise_power * (hi - lo)
    if denom < 4.0 * noise_floor:
        return 1.0
    window = residual[lo:hi]
    rho = complex(np.vdot(seg_core, window) / denom)
    own_power = denom / (hi - lo)
    window_power = float(np.mean(np.abs(window) ** 2))
    contamination = max(window_power - own_power * abs(rho) ** 2, 0.0)
    measurement_var = contamination / max(denom, 1e-30)
    prior_var = 0.02
    gain = engine.correction_alpha * prior_var / (prior_var
                                                  + measurement_var)
    magnitude = float(np.clip(abs(rho), 0.5, 2.0))
    angle = float(np.angle(rho))
    correction = (magnitude ** gain) * np.exp(1j * gain * angle)
    sub.multiplier = predicted * correction
    if sub.last_position is not None:
        dt = center - sub.last_position
        if dt > 0:
            max_step = 0.1 / dt
            sub.freq += float(np.clip(
                engine.correction_beta * gain * angle / dt,
                -max_step, max_step))
    sub.last_position = center
    return correction


def decoder_align_backward(forward_soft, forward_decisions, backward_soft,
                           block: int = 32, min_agreement: float = 0.6):
    """Original ``ZigZagPairDecoder._align_backward`` (numpy-scalar
    reductions per block)."""
    n = backward_soft.size
    aligned = np.array(backward_soft, copy=True)
    weights = np.zeros(n, dtype=float)
    for start in range(0, n, block):
        sl = slice(start, min(start + block, n))
        dec = forward_decisions[sl]
        denom = np.sum(np.abs(dec) ** 2)
        if denom <= 0:
            continue
        rho = np.vdot(dec, backward_soft[sl]) / denom
        if abs(rho) < 1e-9:
            continue
        aligned[sl] = backward_soft[sl] * np.exp(-1j * np.angle(rho))
        agreement = float(min(abs(rho), 1.0))
        if agreement < min_agreement:
            continue
        var_f = float(np.mean(np.abs(forward_soft[sl] - dec) ** 2))
        var_b = float(np.mean(np.abs(aligned[sl] - dec) ** 2))
        if var_b <= 0:
            weights[sl] = 1.0
        else:
            weights[sl] = float(np.clip(var_f / var_b, 0.0, 1.0))
    return aligned, weights


def find_correlation_peaks(signal, preamble, *, freq_offset: float = 0.0,
                           threshold: float = 0.6, min_separation=None,
                           max_peaks=None):
    """Original ``find_correlation_peaks`` (computes the sliding
    correlation twice and |corr| once per accepted peak)."""
    from repro.phy.correlation import (
        CorrelationPeak,
        normalized_sliding_correlation,
        refine_peak_position,
        sliding_correlation,
    )

    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError("threshold must lie in (0, 1]")
    corr = sliding_correlation(signal, preamble, freq_offset)
    scores = normalized_sliding_correlation(signal, preamble, freq_offset)
    separation = min_separation if min_separation is not None \
        else len(preamble)
    candidates = np.flatnonzero(scores >= threshold)
    peaks = []
    used = np.zeros(scores.size, dtype=bool)
    order = candidates[np.argsort(-scores[candidates])]
    for idx in order:
        if used[idx]:
            continue
        lo = max(0, idx - separation)
        hi = min(scores.size, idx + separation + 1)
        used[lo:hi] = True
        fine = refine_peak_position(np.abs(corr), int(idx))
        peaks.append(CorrelationPeak(
            position=int(idx),
            fine_offset=fine,
            value=complex(corr[idx]),
            score=float(scores[idx]),
        ))
        if max_peaks is not None and len(peaks) >= max_peaks:
            break
    peaks.sort(key=lambda p: p.position)
    return peaks


# ----------------------------------------------------------------------
# Batched-vs-loop pairs (trial-axis kernels)
# ----------------------------------------------------------------------
# The trial-axis kernels in repro.phy.batch did not *replace* scalar
# code — the scalar loop over lanes IS their baseline. These loops are
# the before side of the batched microbenches and the oracle the batched
# equivalence tests compare against.
def batched_matched_sampler_loop(shaper, padded, origin, starts,
                                 count: int) -> np.ndarray:
    """One scalar :class:`MatchedSampler` call per lane — the baseline of
    ``BatchedMatchedSampler.sample`` on the same padded buffer. The
    scalar sampler re-pads implicitly, so handing it each row beyond
    *origin* (whose margin is zeros by the batched calling convention)
    reproduces the batched zero-padding semantics."""
    sampler = MatchedSampler(shaper)
    starts = np.asarray(starts, dtype=float).ravel()
    out = np.empty((padded.shape[0], count), dtype=complex)
    for lane in range(padded.shape[0]):
        out[lane] = sampler.sample(padded[lane, origin:],
                                   float(starts[lane]), count)
    return out


def batched_phase_tracker_loop(kp: float, ki: float, phase, freq,
                               z, constellation,
                               known=None) -> tuple:
    """One scalar :class:`PhaseTracker` per lane — the baseline of
    ``BatchedPhaseTracker.process`` (fresh trackers seeded with the
    per-lane state, exactly what the batched state arrays hold)."""
    phase = np.asarray(phase, dtype=float).ravel()
    freq = np.asarray(freq, dtype=float).ravel()
    z = np.asarray(z, dtype=complex)
    soft = np.empty_like(z)
    decisions = np.empty_like(z)
    phases = np.empty(z.shape, dtype=float)
    for lane in range(z.shape[0]):
        tracker = PhaseTracker(kp=kp, ki=ki, phase=float(phase[lane]),
                               freq=float(freq[lane]))
        lane_known = None if known is None else known[lane]
        soft[lane], decisions[lane], phases[lane] = tracker.process(
            z[lane], constellation, known=lane_known)
    return soft, decisions, phases


def batched_viterbi_loop(code: ConvolutionalCode, soft,
                         terminated: bool = True) -> np.ndarray:
    """One scalar Viterbi pass per lane — the baseline of
    ``ConvolutionalCode.decode_soft_batch``."""
    soft = np.asarray(soft, dtype=float)
    return np.stack([code.decode_soft(row, terminated=terminated)
                     for row in soft])


@contextlib.contextmanager
def use_reference_kernels():
    """Swap every DSP path this PR optimized for its pre-PR version.

    This is the honest end-to-end baseline: the tentpole kernels (tracker,
    sampler, Viterbi, re-encoder) *and* the ride-along optimizations
    (fractional-delay FIR, synchronizer caching/single-pass detect,
    channel delay-kernel reuse, correction-loop scalarization, backward
    alignment) all revert together. Class-wide and in-process only: run
    end-to-end baselines with ``n_workers=1`` so no child process escapes
    the patch.
    """
    import repro.phy.channel as channel_mod
    import repro.phy.correlation as correlation_mod
    import repro.phy.sync as sync_mod
    import repro.receiver.frontend as frontend_mod
    import repro.zigzag.decoder as decoder_mod
    import repro.zigzag.engine as engine_mod

    saved = (
        PhaseTracker.process,
        MatchedSampler.sample,
        ConvolutionalCode.encode,
        ConvolutionalCode.decode_soft,
        MuellerMullerTracker.process,
        Reencoder.image,
        FractionalDelay.apply,
        sync_mod.Synchronizer._preamble_score,
        sync_mod.Synchronizer.detect,
        channel_mod.Channel.apply,
        frontend_mod.SymbolStreamDecoder._static_derotate,
        engine_mod.ZigZagEngine._subtract_chunk,
        engine_mod.ZigZagEngine._measure_and_update,
        # Fetch the staticmethod descriptor itself so restoring it does
        # not turn the original back into a bound method.
        decoder_mod.ZigZagMultiDecoder.__dict__["_align_backward"],
        correlation_mod.find_correlation_peaks,
    )
    PhaseTracker.process = phase_tracker_process
    MatchedSampler.sample = matched_sampler_sample
    ConvolutionalCode.encode = convolutional_encode
    ConvolutionalCode.decode_soft = convolutional_decode_soft
    MuellerMullerTracker.process = mueller_muller_process
    Reencoder.image = reencoder_image
    FractionalDelay.apply = fractional_delay_apply
    sync_mod.Synchronizer._preamble_score = synchronizer_preamble_score
    sync_mod.Synchronizer.detect = synchronizer_detect
    channel_mod.Channel.apply = channel_apply
    frontend_mod.SymbolStreamDecoder._static_derotate = \
        frontend_static_derotate
    engine_mod.ZigZagEngine._subtract_chunk = engine_subtract_chunk
    engine_mod.ZigZagEngine._measure_and_update = engine_measure_and_update
    decoder_mod.ZigZagMultiDecoder._align_backward = staticmethod(
        decoder_align_backward)
    correlation_mod.find_correlation_peaks = find_correlation_peaks
    try:
        yield
    finally:
        (PhaseTracker.process, MatchedSampler.sample,
         ConvolutionalCode.encode, ConvolutionalCode.decode_soft,
         MuellerMullerTracker.process, Reencoder.image,
         FractionalDelay.apply,
         sync_mod.Synchronizer._preamble_score,
         sync_mod.Synchronizer.detect,
         channel_mod.Channel.apply,
         frontend_mod.SymbolStreamDecoder._static_derotate,
         engine_mod.ZigZagEngine._subtract_chunk,
         engine_mod.ZigZagEngine._measure_and_update,
         decoder_mod.ZigZagMultiDecoder._align_backward,
         correlation_mod.find_correlation_peaks) = saved
