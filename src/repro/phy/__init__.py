"""The 802.11-like physical-layer substrate.

This package implements, from scratch, everything the ZigZag receiver needs
underneath it: modulation (BPSK through 64-QAM), PN preambles, CRC-32
framing, the flat-fading quasi-static channel of the paper's Chapter 3
(complex gain, carrier frequency offset, fractional sampling offset, phase
noise, multipath ISI, AWGN), windowed-sinc interpolation, preamble
correlation, channel/frequency estimation, decision-directed phase tracking,
Mueller–Müller timing tracking, and linear equalization.
"""

from repro.phy.constellation import (
    BPSK,
    QAM16,
    QAM64,
    QPSK,
    Constellation,
    get_constellation,
)
from repro.phy.modulator import Modulator
from repro.phy.preamble import Preamble, default_preamble
from repro.phy.crc import crc32, crc32_check, append_crc32, strip_crc32
from repro.phy.frame import Frame, FrameHeader, build_frame_bits, parse_frame_bits
from repro.phy.noise import (
    awgn,
    ebn0_db_to_snr_db,
    noise_power_for_snr_db,
    signal_power,
    snr_db,
    snr_db_to_ebn0_db,
)
from repro.phy.resample import FractionalDelay, sinc_interpolate
from repro.phy.isi import IsiFilter, default_isi_taps, invert_fir
from repro.phy.impairments import (
    AdcQuantizer,
    BurstNoise,
    CwTone,
    DcOffset,
    ImpairmentPipeline,
    IqImbalance,
    RayleighFading,
    RicianFading,
    SfoDrift,
    SoftClipper,
    available_impairments,
    make_impairment,
)
from repro.phy.channel import Channel, ChannelParams
from repro.phy.correlation import (
    CorrelationPeak,
    find_correlation_peaks,
    normalized_sliding_correlation,
    sliding_correlation,
)
from repro.phy.estimation import (
    ChannelEstimate,
    estimate_channel_from_preamble,
    estimate_frequency_offset,
)
from repro.phy.tracking import MuellerMullerTracker, PhaseTracker
from repro.phy.equalizer import LmsEqualizer

__all__ = [
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "Constellation",
    "get_constellation",
    "Modulator",
    "Preamble",
    "default_preamble",
    "crc32",
    "crc32_check",
    "append_crc32",
    "strip_crc32",
    "Frame",
    "FrameHeader",
    "build_frame_bits",
    "parse_frame_bits",
    "awgn",
    "signal_power",
    "snr_db",
    "noise_power_for_snr_db",
    "ebn0_db_to_snr_db",
    "snr_db_to_ebn0_db",
    "FractionalDelay",
    "sinc_interpolate",
    "IsiFilter",
    "default_isi_taps",
    "invert_fir",
    "ImpairmentPipeline",
    "RayleighFading",
    "RicianFading",
    "SfoDrift",
    "SoftClipper",
    "AdcQuantizer",
    "IqImbalance",
    "DcOffset",
    "CwTone",
    "BurstNoise",
    "available_impairments",
    "make_impairment",
    "Channel",
    "ChannelParams",
    "CorrelationPeak",
    "sliding_correlation",
    "normalized_sliding_correlation",
    "find_correlation_peaks",
    "ChannelEstimate",
    "estimate_channel_from_preamble",
    "estimate_frequency_offset",
    "PhaseTracker",
    "MuellerMullerTracker",
    "LmsEqualizer",
]
