"""Trial-axis batched DSP kernels: ``(N, samples)`` variants of the hot path.

Monte-Carlo sweeps (§5) decode thousands of *independent* collision trials.
The scalar kernels in :mod:`repro.phy.pulse` / :mod:`repro.phy.tracking`
already vectorize along time; this module adds the leading trial axis so N
trials advance through one numpy call instead of N Python dispatches.

Two ideas carry all the weight:

* **Lane-wise gathers.** Matched-filter sampling is a strided dot product
  per trial; with a leading axis it becomes one fancy-gather plus one
  ``einsum`` over ``(N, count, taps)`` windows, with a per-lane kernel row
  (each trial has its own sub-sample offset).

* **The PLL is LTI while in lock.** The second-order decision-directed
  loop of :class:`~repro.phy.tracking.PhaseTracker` updates
  ``phase/freq`` from the wrapped error ``e_k = wrap(θ_k − phase_k)``.
  Once each θ_k is unwrapped onto the branch nearest the loop phase
  (``θ'_k = θ_k + 2πm`` with ``m = rint((phase_k − θ_k)/2π)`` — exactly
  what ``math.remainder`` does inside the scalar loop), the recurrence is
  *linear* in θ', with transfer function

      H(z) = ((kp+ki) z⁻¹ − kp z⁻²) / (1 + (kp+ki−2) z⁻¹ + (1−kp) z⁻²)

  so a whole segment's phases come from one ``scipy.signal.lfilter`` call
  along the time axis, batched over trials, with the loop state carried in
  the filter's initial conditions (``zi = [phase₀, freq₀ − phase₀]`` in
  direct-form II transposed). The unwrap branch (and, decision-directed,
  the decision itself) depends on the phases being solved for, so both are
  speculated from the coasted phase and iterated to a fixed point: filter,
  re-derive branches/decisions at the filtered phases, repeat. Lanes that
  fail to converge, hit an exactly-zero sample, or land within 1e-6 of a
  wrap or decision boundary (where the scalar trajectory, a few ulp away,
  could branch differently) replay through the exact scalar
  :class:`PhaseTracker` — bit-compatible with the loop path by
  construction, so divergent lanes cost only their own time.

Equivalence policy (matches the repo's perf-harness precedent): decoded
bits/decisions are identical to the scalar path; float internals (phases,
soft symbols) agree to ~1e-9, since the LTI filter evaluates the same
recurrence in a different association order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.signal import lfilter

from repro.errors import ConfigurationError
from repro.phy.constellation import Constellation
from repro.phy.pulse import PulseShaper
from repro.phy.tracking import PhaseTracker

__all__ = ["wrap_pi", "stack_rows", "BatchedMatchedSampler",
           "BatchedPhaseTracker"]

_TWO_PI = 2.0 * math.pi


def wrap_pi(x: np.ndarray) -> np.ndarray:
    """Vectorized ``math.remainder(x, 2π)``: wrap into [−π, π].

    ``remainder`` subtracts 2π times the *nearest* integer (half-even), so
    the vector form is ``x − 2π·rint(x / 2π)``; for |x| < 3π (every PLL
    error in practice) the subtraction is exact by Sterbenz's lemma and
    the result matches the scalar ``math.remainder`` to the last bit.
    """
    x = np.asarray(x, dtype=float)
    return x - _TWO_PI * np.rint(x / _TWO_PI)


def stack_rows(rows, dtype=complex) -> tuple[np.ndarray, np.ndarray]:
    """Stack equal-or-ragged 1-D arrays into ``(N, max_len)`` plus lengths.

    Shorter rows are zero-padded on the right; the returned ``lengths``
    array is the mask needed to recover the ragged layout.
    """
    arrays = [np.asarray(r, dtype=dtype).ravel() for r in rows]
    if not arrays:
        raise ConfigurationError("stack_rows needs at least one row")
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    out = np.zeros((len(arrays), int(lengths.max())), dtype=dtype)
    for i, a in enumerate(arrays):
        out[i, :a.size] = a
    return out, lengths


@dataclass
class BatchedMatchedSampler:
    """Matched filter + fractional sampler over ``(N, samples)`` lanes.

    Mirrors :class:`~repro.phy.pulse.MatchedSampler` with one kernel row
    per lane (each trial has its own sub-sample offset). Callers hand in a
    zero-padded buffer whose column ``j`` holds capture sample
    ``j − origin``; windows must stay inside the padded buffer (the engine
    sizes the padding so the zero margin reproduces the scalar sampler's
    implicit zero-padding).
    """

    shaper: PulseShaper
    _kernel_cache: dict = field(default_factory=dict, repr=False)
    _grid_cache: dict = field(default_factory=dict, repr=False)

    def kernels_for(self, fracs: np.ndarray) -> np.ndarray:
        """Stack of per-lane matched-filter kernels ``kernel_at(−frac)``.

        Cached on the quantized fraction tuple: a stream re-samples at the
        same per-lane offsets for every chunk of a packet.
        """
        key = tuple(int(f * 1e12) for f in fracs)
        stack = self._kernel_cache.get(key)
        if stack is None:
            if len(self._kernel_cache) >= 256:
                self._kernel_cache.clear()
            stack = np.stack([self.shaper.kernel_at(-float(f))
                              for f in fracs])
            self._kernel_cache[key] = stack
        return stack

    def sample(self, padded: np.ndarray, origin: int, starts: np.ndarray,
               count: int) -> np.ndarray:
        """Matched-filter outputs at ``starts + k·sps``, k = 0..count−1.

        *padded* is ``(N, P)`` with capture sample s of lane n at
        ``padded[n, s + origin]``; *starts* the per-lane fractional
        position of symbol 0's pulse centre (capture coordinates).
        """
        if count <= 0:
            return np.zeros((padded.shape[0], 0), dtype=complex)
        sps = self.shaper.sps
        delay = self.shaper.delay
        base = np.floor(starts).astype(np.int64)
        frac = starts - base
        kernels = self.kernels_for(frac)
        first = base - delay + origin
        if first.min() < 0 or \
                (first.max() + (count - 1) * sps + kernels.shape[1]) \
                > padded.shape[1]:
            raise ConfigurationError(
                "sampler window escapes the padded buffer")
        n, width = padded.shape
        taps = kernels.shape[1]
        grid = self._grid_cache.get((count, taps))
        if grid is None:
            grid = (sps * np.arange(count, dtype=np.int32)[:, None]
                    + np.arange(taps, dtype=np.int32)[None, :])
            self._grid_cache[(count, taps)] = grid
        # One flat gather (take) beats a 3-axis fancy index by ~2x here;
        # int32 indices halve the index traffic (buffers are far below
        # 2^31 elements).
        flat = ((np.arange(n, dtype=np.int32) * np.int32(width)
                 + first.astype(np.int32))[:, None, None]
                + grid[None, :, :])
        windows = padded.reshape(-1).take(flat)
        return np.matmul(windows, kernels[:, :, None])[:, :, 0]


# Loop-filter transfer function θ' → phase (direct-form coefficients).
# From f_{k+1} = f_k + ki·e_k, p_{k+1} = p_k + f_{k+1} + kp·e_k with
# e_k = θ'_k − p_k, eliminating f:
#   p_k = (2−kp−ki) p_{k−1} − (1−kp) p_{k−2} + (kp+ki) θ'_{k−1} − kp θ'_{k−2}
def _pll_ba(kp: float, ki: float) -> tuple[np.ndarray, np.ndarray]:
    b = np.array([0.0, kp + ki, -kp])
    a = np.array([1.0, kp + ki - 2.0, 1.0 - kp])
    return b, a


# Branch-safety margin: a lane whose error comes within this of the ±π
# wrap (or a decision within this of the slicing boundary) is replayed
# through the scalar tracker, since float association noise (~1e-9) could
# put the two trajectories on different branches.
_BRANCH_MARGIN = 1e-6


@dataclass
class BatchedPhaseTracker:
    """Trial-axis :class:`~repro.phy.tracking.PhaseTracker`.

    State arrays are per-lane; ``process`` advances every lane one segment
    in lockstep. Lanes whose segment cannot take the LTI fast path (wrap
    events, exact-zero samples, a non-BPSK decision-directed
    constellation, or an unconverged speculation) replay through the exact
    scalar tracker, so every lane's result is independent of its batch
    mates — the property the batch-size-invariance tests pin down.
    """

    kp: float
    ki: float
    phase: np.ndarray
    freq: np.ndarray
    enabled: bool = True
    last_error: np.ndarray = None
    _ba: tuple = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.phase = np.array(self.phase, dtype=float).ravel().copy()
        self.freq = np.array(self.freq, dtype=float).ravel().copy()
        if self.last_error is None:
            self.last_error = np.zeros_like(self.phase)
        self._ba = _pll_ba(self.kp, self.ki)

    @property
    def n_lanes(self) -> int:
        return self.phase.size

    # -- the LTI core -------------------------------------------------
    def _filter_phases(self, theta: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the loop filter over θ ``(N, L)``; returns
        ``(phases, final_phase, final_freq)`` without touching state."""
        b, a = self._ba
        zi = np.stack([self.phase, self.freq - self.phase], axis=1)
        phases, zf = lfilter(b, a, theta, axis=1, zi=zi)
        return phases, zf[:, 0], zf[:, 1] + zf[:, 0]

    # -- public API ----------------------------------------------------
    def process(self, symbols: np.ndarray, constellation: Constellation,
                known: np.ndarray | None = None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Lockstep counterpart of ``PhaseTracker.process``.

        *symbols* is ``(N, L)``; *known* (data-aided mode) must match its
        shape. Returns ``(corrected, decisions, phases)`` of shape
        ``(N, L)``.
        """
        y = np.asarray(symbols, dtype=complex)
        if y.ndim != 2 or y.shape[0] != self.n_lanes:
            raise ConfigurationError("expected (n_lanes, L) symbols")
        if y.shape[1] == 0:
            empty_c = np.zeros_like(y)
            return empty_c, empty_c.copy(), np.zeros(y.shape, dtype=float)
        if not self.enabled:
            return self._coast(y, constellation, known)
        if known is not None:
            known = np.asarray(known, dtype=complex)
            if known.shape != y.shape:
                raise ConfigurationError("known symbols shape mismatch")
            return self._data_aided(y, known)
        return self._decision_directed(y, constellation)

    def _coast(self, y, constellation, known):
        ramp = np.arange(y.shape[1], dtype=float)
        phases = self.phase[:, None] + self.freq[:, None] * ramp
        corrected = y * np.exp(-1j * phases)
        if known is not None:
            decisions = known.copy()
        else:
            decisions = constellation.slice_symbols(
                corrected.ravel()).reshape(y.shape)
        self.phase += self.freq * y.shape[1]
        return corrected, decisions, phases

    def _coast_guess(self, length: int) -> np.ndarray:
        ramp = np.arange(length, dtype=float)
        return self.phase[:, None] + self.freq[:, None] * ramp

    def _data_aided(self, y, known):
        theta0 = np.angle(y * np.conj(known))
        # Unwrap branch m_k = rint((phase_k − θ_k)/2π) depends on the
        # phases being solved for — speculate from the coasted phase and
        # iterate the filter to a fixed point (in lock m is constant, so
        # this converges on the second pass).
        branch = np.rint((self._coast_guess(y.shape[1]) - theta0) / _TWO_PI)
        converged = np.zeros(self.n_lanes, dtype=bool)
        phases = phase_f = freq_f = None
        for _ in range(8):
            theta = theta0 + _TWO_PI * branch
            phases, phase_f, freq_f = self._filter_phases(theta)
            new_branch = np.rint((phases - theta0) / _TWO_PI)
            converged = (new_branch == branch).all(axis=1)
            if converged.all():
                break
            branch = np.where(converged[:, None], branch, new_branch)
        theta = theta0 + _TWO_PI * branch
        err = theta - phases
        slow = (~converged | (known == 0).any(axis=1) | (y == 0).any(axis=1)
                | (np.abs(err) >= math.pi - _BRANCH_MARGIN).any(axis=1))
        fast = ~slow
        self.phase[fast] = phase_f[fast]
        self.freq[fast] = freq_f[fast]
        self.last_error[fast] = err[fast, -1]
        if slow.any():
            self._scalar_lanes(np.flatnonzero(slow), y, phases,
                               constellation=None, known=known)
        return y * np.exp(-1j * phases), known.copy(), phases

    def _decision_directed(self, y, constellation):
        pts = constellation.points
        is_bpsk = (pts.size == 2 and pts[0] == -1.0 and pts[1] == 1.0)
        phases = np.empty(y.shape, dtype=float)
        if not is_bpsk:
            # The scalar loop is already the reference implementation;
            # batching buys little on the rare non-BPSK bodies, so replay
            # every lane exactly.
            lanes = np.arange(self.n_lanes)
            decisions = np.empty(y.shape, dtype=complex)
            self._scalar_lanes(lanes, y, phases,
                               constellation=constellation, known=None,
                               decisions_out=decisions)
            return y * np.exp(-1j * phases), decisions, phases

        angles = np.angle(y)
        # Both the BPSK decision (sign of cos(angle − phase)) and the 2π
        # unwrap branch depend on the phases being solved for; speculate
        # from the coasted phase and iterate to a joint fixed point.
        guess = self._coast_guess(y.shape[1])
        rel = wrap_pi(angles - guess)
        plus = np.abs(rel) < 0.5 * math.pi
        theta0 = np.where(plus, angles, angles - math.pi)
        branch = np.rint((guess - theta0) / _TWO_PI)
        converged = np.zeros(self.n_lanes, dtype=bool)
        margin = None
        phase_f = freq_f = None
        for _ in range(8):
            theta = theta0 + _TWO_PI * branch
            phases, phase_f, freq_f = self._filter_phases(theta)
            rel = wrap_pi(angles - phases)
            margin = np.abs(rel)
            new_plus = margin < 0.5 * math.pi
            new_theta0 = np.where(new_plus, angles, angles - math.pi)
            new_branch = np.rint((phases - new_theta0) / _TWO_PI)
            stable = ((new_plus == plus) & (new_branch == branch)
                      ).all(axis=1)
            converged = converged | stable
            if converged.all():
                break
            keep = converged[:, None]
            plus = np.where(keep, plus, new_plus)
            theta0 = np.where(keep, theta0, new_theta0)
            branch = np.where(keep, branch, new_branch)
        theta = theta0 + _TWO_PI * branch
        err = theta - phases
        slow = (~converged | (y == 0).any(axis=1)
                | (np.abs(err) >= math.pi - _BRANCH_MARGIN).any(axis=1)
                | (np.abs(margin - 0.5 * math.pi)
                   < _BRANCH_MARGIN).any(axis=1))
        fast = ~slow
        self.phase[fast] = phase_f[fast]
        self.freq[fast] = freq_f[fast]
        self.last_error[fast] = err[fast, -1]
        decisions = np.where(plus, 1.0 + 0j, -1.0 + 0j)
        if slow.any():
            self._scalar_lanes(np.flatnonzero(slow), y, phases,
                               constellation=constellation, known=None,
                               decisions_out=decisions)
        return y * np.exp(-1j * phases), decisions, phases

    def _scalar_lanes(self, lanes, y, phases_out, *, constellation,
                      known, decisions_out=None) -> None:
        """Replay *lanes* through the exact scalar tracker (bit-compatible
        with the loop path), writing phases/decisions rows in place."""
        for lane in lanes:
            tracker = PhaseTracker(kp=self.kp, ki=self.ki,
                                   phase=float(self.phase[lane]),
                                   freq=float(self.freq[lane]),
                                   enabled=True)
            tracker._last_error = float(self.last_error[lane])
            _, dec, ph = tracker.process(
                y[lane],
                constellation if constellation is not None else None,
                known=None if known is None else known[lane])
            phases_out[lane] = ph
            if decisions_out is not None:
                decisions_out[lane] = dec
            self.phase[lane] = tracker.phase
            self.freq[lane] = tracker.freq
            self.last_error[lane] = tracker._last_error

    def advance(self, n: int) -> None:
        if n < 0:
            raise ConfigurationError("cannot advance by a negative count")
        self.phase += self.freq * n
