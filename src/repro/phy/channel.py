"""The flat-fading quasi-static channel of the paper's Chapter 3.

A transmitted symbol stream ``x[n]`` is received as

    y[n] = H * x(n - mu) * exp(j 2 pi n df T) * exp(j phi_pn[n])   (+ ISI)

where ``H = h e^{j gamma}`` is the complex channel gain, ``df T`` the
carrier frequency offset in cycles per sample (§3.1.1), ``mu`` the
fractional sampling offset in samples (§3.1.2), ``phi_pn`` an optional
oscillator phase-noise random walk, and ISI an optional multipath FIR
(§3.1.3). AWGN is *not* added here — collisions sum several channels'
outputs first and add receiver noise once (see :mod:`repro.phy.medium`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.impairments import ImpairmentPipeline
from repro.phy.isi import IsiFilter
from repro.phy.noise import db_to_linear
from repro.phy.resample import FractionalDelay

__all__ = ["ChannelParams", "Channel"]


@dataclass(frozen=True)
class ChannelParams:
    """Everything that defines one sender->receiver link at one instant.

    Attributes
    ----------
    gain:
        Complex channel coefficient H (attenuation h, phase gamma).
    freq_offset:
        Carrier frequency offset *in cycles per sample* (i.e. df * T).
        Typical 802.11-class values are 1e-5 .. 1e-4.
    sampling_offset:
        Receiver sampling instant offset in fractional samples, in [0, 1).
    phase_noise_std:
        Std-dev of the per-sample phase random-walk increment (radians).
        Zero disables phase noise.
    isi_taps:
        Optional complex FIR taps of the multipath channel; ``None`` means
        a flat (single-tap) channel.
    tx_evm:
        Transmitter error-vector magnitude: multiplicative complex
        distortion of the transmitted waveform (DAC quantization, PA
        nonlinearity, IQ imbalance). 802.11 hardware specs sit around
        0.03–0.08. Crucially this distortion is *proportional to signal
        power* and unknowable to the receiver, so it sets the floor on how
        cleanly a strong interferer can be subtracted — the reason Bob
        becomes undecodable when Alice's power is excessive (§4.1,
        Fig 5-4's high-SINR regime).
    impairments:
        Optional :class:`~repro.phy.impairments.ImpairmentPipeline` of
        per-sender propagation effects beyond the quasi-static model
        (time-varying fading, SFO drift, ...). Like phase noise and
        tx_evm these are unknowable to the receiver: they apply in
        :meth:`Channel.apply` but are excluded from
        :meth:`Channel.reconstruct`, so they directly stress ZigZag's
        re-encode/subtract loop.
    """

    gain: complex = 1.0 + 0j
    freq_offset: float = 0.0
    sampling_offset: float = 0.0
    phase_noise_std: float = 0.0
    isi_taps: tuple | None = None
    tx_evm: float = 0.0
    impairments: ImpairmentPipeline | None = None

    def __post_init__(self) -> None:
        if abs(self.freq_offset) >= 0.5:
            raise ConfigurationError(
                "freq_offset is in cycles/sample and must satisfy |df T| < 0.5"
            )
        if self.phase_noise_std < 0:
            raise ConfigurationError("phase_noise_std must be non-negative")
        if self.tx_evm < 0:
            raise ConfigurationError("tx_evm must be non-negative")
        if self.isi_taps is not None:
            object.__setattr__(self, "isi_taps",
                               tuple(complex(t) for t in self.isi_taps))

    @classmethod
    def from_snr_db(cls, snr_db_value: float, *, noise_power: float = 1.0,
                    phase: float = 0.0, **kwargs) -> "ChannelParams":
        """Gain magnitude chosen so a unit-power signal has the given SNR."""
        magnitude = np.sqrt(db_to_linear(snr_db_value) * noise_power)
        return cls(gain=magnitude * np.exp(1j * phase), **kwargs)

    @property
    def snr_linear_vs_unit_noise(self) -> float:
        return abs(self.gain) ** 2

    def with_gain(self, gain: complex) -> "ChannelParams":
        return replace(self, gain=gain)

    def isi_filter(self) -> IsiFilter:
        if self.isi_taps is None:
            return IsiFilter.identity()
        return IsiFilter(np.asarray(self.isi_taps, dtype=complex))


@dataclass
class Channel:
    """Applies :class:`ChannelParams` to a symbol stream.

    A fresh phase-noise trajectory is drawn per ``apply`` call (each packet
    traversal sees new oscillator jitter, while H / df / mu stay quasi-
    static, exactly the paper's channel assumption).
    """

    params: ChannelParams
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    # Built lazily: sinc-kernel design costs more than applying it, and
    # the offset is quasi-static across a channel's lifetime.
    _delay: FractionalDelay | None = field(default=None, repr=False)

    def _fractional_delay(self) -> FractionalDelay:
        if self._delay is None or self._delay.delay != self.params.sampling_offset:
            self._delay = FractionalDelay(self.params.sampling_offset)
        return self._delay

    def apply(self, symbols, start_sample: int = 0) -> np.ndarray:
        """Propagate *symbols* through the channel.

        ``start_sample`` is the index of the packet's first sample in the
        *receiver's* clock, so the frequency-offset phase ramp is coherent
        across packets arriving at different times in one capture.
        """
        x = np.asarray(symbols, dtype=complex).ravel()
        if x.size == 0:
            return x
        p = self.params
        out = x
        if p.tx_evm > 0.0:
            distortion = (self.rng.standard_normal(out.size)
                          + 1j * self.rng.standard_normal(out.size))
            out = out * (1.0 + p.tx_evm / np.sqrt(2.0) * distortion)
        out = p.isi_filter().apply(out)
        if p.sampling_offset != 0.0:
            out = self._fractional_delay().apply(out)
        n = np.arange(start_sample, start_sample + out.size, dtype=float)
        phase_ramp = np.exp(2j * np.pi * p.freq_offset * n)
        out = p.gain * out * phase_ramp
        if p.phase_noise_std > 0.0:
            steps = self.rng.normal(0.0, p.phase_noise_std, out.size)
            out = out * np.exp(1j * np.cumsum(steps))
        if p.impairments is not None and not p.impairments.is_identity:
            out = p.impairments.apply(out, self.rng, start_sample)
        return out

    def reconstruct(self, symbols, start_sample: int = 0) -> np.ndarray:
        """Deterministic channel image (no phase noise) for subtraction.

        This is what the ZigZag re-encoder computes from *estimated*
        parameters: the expected received waveform of known symbols. Phase
        noise is unknowable and therefore excluded — it is precisely the
        residual that makes cancellation imperfect.
        """
        x = np.asarray(symbols, dtype=complex).ravel()
        if x.size == 0:
            return x
        p = self.params
        out = p.isi_filter().apply(x)
        if p.sampling_offset != 0.0:
            out = self._fractional_delay().apply(out)
        n = np.arange(start_sample, start_sample + out.size, dtype=float)
        return p.gain * out * np.exp(2j * np.pi * p.freq_offset * n)
