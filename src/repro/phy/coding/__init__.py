"""Bit-level channel coding — the paper's §6(a) extension.

"In practice, additional bit-level codes (like Convolutional codes ...) are
applied to increase the reliability of the packet. The performance of
ZigZag can be further enhanced by exploiting these bit-level codes."

Provides the 802.11 convolutional code (K=7, rate 1/2, generators 133/171
octal) with hard- and soft-decision Viterbi decoding, a block interleaver,
and :func:`~repro.phy.coding.iterative.decode_coded_soft` — the first
iteration of the paper's proposed ZigZag↔decoder loop: run the Viterbi
decoder over ZigZag's (MRC-combined) soft symbols to clean residual errors.
"""

from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.coding.interleaver import BlockInterleaver
from repro.phy.coding.iterative import decode_coded_soft, encode_for_zigzag

__all__ = [
    "ConvolutionalCode",
    "BlockInterleaver",
    "encode_for_zigzag",
    "decode_coded_soft",
]
