"""Convolutional encoding and Viterbi decoding, from scratch.

The 802.11 mother code: constraint length K=7, rate 1/2, generator
polynomials 133 and 171 (octal). The decoder runs the textbook Viterbi
algorithm with either Hamming (hard bits) or Euclidean (soft BPSK values)
branch metrics, with full traceback after zero-tail termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["ConvolutionalCode"]


@dataclass
class ConvolutionalCode:
    """A binary rate-1/n feed-forward convolutional code.

    Parameters
    ----------
    generators:
        Generator polynomials in octal (default: 802.11's (0o133, 0o171)).
    constraint_length:
        K; the encoder holds K-1 state bits.
    """

    generators: tuple = (0o133, 0o171)
    constraint_length: int = 7
    _taps: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.constraint_length < 2:
            raise ConfigurationError("constraint length must be >= 2")
        if len(self.generators) < 2:
            raise ConfigurationError("need at least two generators")
        k = self.constraint_length
        taps = np.zeros((len(self.generators), k), dtype=np.uint8)
        for g_index, polynomial in enumerate(self.generators):
            if polynomial <= 0 or polynomial >= (1 << k):
                raise ConfigurationError(
                    f"generator {polynomial:o} does not fit K={k}")
            for bit in range(k):
                taps[g_index, bit] = (polynomial >> (k - 1 - bit)) & 1
        self._taps = taps
        self._build_trellis()

    # ------------------------------------------------------------------
    @property
    def rate_inverse(self) -> int:
        return len(self.generators)

    @property
    def n_states(self) -> int:
        return 1 << (self.constraint_length - 1)

    def _build_trellis(self) -> None:
        """Precompute next-state and output tables for every (state, bit)."""
        k = self.constraint_length
        n_states = self.n_states
        n_out = self.rate_inverse
        self._next_state = np.zeros((n_states, 2), dtype=np.int64)
        self._outputs = np.zeros((n_states, 2, n_out), dtype=np.uint8)
        for state in range(n_states):
            for bit in range(2):
                register = (bit << (k - 1)) | state
                window = np.array(
                    [(register >> (k - 1 - i)) & 1 for i in range(k)],
                    dtype=np.uint8)
                self._next_state[state, bit] = register >> 1
                self._outputs[state, bit] = (self._taps @ window) % 2

    # ------------------------------------------------------------------
    def encode(self, bits, terminate: bool = True) -> np.ndarray:
        """Encode *bits*; with ``terminate`` a zero tail flushes the state.

        Output length is ``rate_inverse * (len(bits) + K - 1)`` when
        terminated.
        """
        data = as_bit_array(bits)
        if terminate:
            data = np.concatenate([
                data, np.zeros(self.constraint_length - 1, dtype=np.uint8)
            ])
        out = np.empty(data.size * self.rate_inverse, dtype=np.uint8)
        state = 0
        for i, bit in enumerate(data):
            out[i * self.rate_inverse:(i + 1) * self.rate_inverse] = \
                self._outputs[state, bit]
            state = self._next_state[state, bit]
        return out

    # ------------------------------------------------------------------
    def decode_hard(self, coded, terminated: bool = True) -> np.ndarray:
        """Viterbi with Hamming branch metrics over hard bits."""
        received = as_bit_array(coded).astype(float)
        # Map bits to +/-1 soft values so one metric path serves both.
        return self.decode_soft(1.0 - 2.0 * received,
                                terminated=terminated)

    def decode_soft(self, soft, terminated: bool = True) -> np.ndarray:
        """Viterbi with Euclidean metrics over soft BPSK values.

        *soft* holds one real value per coded bit with the convention
        bit 0 -> +1, bit 1 -> -1 (sign convention cancels in the metric,
        as long as it matches :meth:`encode`'s mapping below).
        Returns the decoded information bits (tail stripped when
        *terminated*).
        """
        values = np.asarray(soft, dtype=float).ravel()
        n_out = self.rate_inverse
        if values.size % n_out != 0:
            raise ConfigurationError(
                f"soft length {values.size} not a multiple of {n_out}")
        n_steps = values.size // n_out
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)
        n_states = self.n_states

        # Branch metric: correlation of expected (+/-1) with received.
        expected = 1.0 - 2.0 * self._outputs.astype(float)  # (S, 2, n)
        metrics = np.full(n_states, -np.inf)
        metrics[0] = 0.0
        survivors = np.zeros((n_steps, n_states), dtype=np.int8)
        predecessors = np.zeros((n_steps, n_states), dtype=np.int64)

        for step in range(n_steps):
            block = values[step * n_out:(step + 1) * n_out]
            branch = expected @ block              # (S, 2)
            candidate = metrics[:, None] + branch  # (S, 2)
            new_metrics = np.full(n_states, -np.inf)
            for state in range(n_states):
                for bit in range(2):
                    nxt = self._next_state[state, bit]
                    score = candidate[state, bit]
                    if score > new_metrics[nxt]:
                        new_metrics[nxt] = score
                        survivors[step, nxt] = bit
                        predecessors[step, nxt] = state
            metrics = new_metrics

        state = 0 if terminated else int(np.argmax(metrics))
        decoded = np.empty(n_steps, dtype=np.uint8)
        for step in range(n_steps - 1, -1, -1):
            decoded[step] = survivors[step, state]
            state = predecessors[step, state]
        if terminated:
            decoded = decoded[:n_steps - (self.constraint_length - 1)]
        return decoded
