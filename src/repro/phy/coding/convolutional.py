"""Convolutional encoding and Viterbi decoding, from scratch.

The 802.11 mother code: constraint length K=7, rate 1/2, generator
polynomials 133 and 171 (octal). The decoder runs the textbook Viterbi
algorithm with either Hamming (hard bits) or Euclidean (soft BPSK values)
branch metrics, with full traceback after zero-tail termination.

Hot-path note: the add-compare-select runs vectorized across all states per
trellis step using predecessor/branch gather tables precomputed at
construction; the encoder is a pair of integer convolutions (output g is
``(data ⊛ taps_g) mod 2``). Only the traceback — an inherently sequential
pointer chase — remains a Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["ConvolutionalCode"]


@dataclass
class ConvolutionalCode:
    """A binary rate-1/n feed-forward convolutional code.

    Parameters
    ----------
    generators:
        Generator polynomials in octal (default: 802.11's (0o133, 0o171)).
    constraint_length:
        K; the encoder holds K-1 state bits.
    """

    generators: tuple = (0o133, 0o171)
    constraint_length: int = 7
    _taps: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.constraint_length < 2:
            raise ConfigurationError("constraint length must be >= 2")
        if len(self.generators) < 2:
            raise ConfigurationError("need at least two generators")
        k = self.constraint_length
        taps = np.zeros((len(self.generators), k), dtype=np.uint8)
        for g_index, polynomial in enumerate(self.generators):
            if polynomial <= 0 or polynomial >= (1 << k):
                raise ConfigurationError(
                    f"generator {polynomial:o} does not fit K={k}")
            for bit in range(k):
                taps[g_index, bit] = (polynomial >> (k - 1 - bit)) & 1
        self._taps = taps
        self._build_trellis()

    # ------------------------------------------------------------------
    @property
    def rate_inverse(self) -> int:
        return len(self.generators)

    @property
    def n_states(self) -> int:
        return 1 << (self.constraint_length - 1)

    def _build_trellis(self) -> None:
        """Precompute next-state and output tables for every (state, bit),
        plus the inverse (predecessor) view the vectorized ACS gathers
        through."""
        k = self.constraint_length
        n_states = self.n_states
        n_out = self.rate_inverse
        self._next_state = np.zeros((n_states, 2), dtype=np.int64)
        self._outputs = np.zeros((n_states, 2, n_out), dtype=np.uint8)
        for state in range(n_states):
            for bit in range(2):
                register = (bit << (k - 1)) | state
                window = np.array(
                    [(register >> (k - 1 - i)) & 1 for i in range(k)],
                    dtype=np.uint8)
                self._next_state[state, bit] = register >> 1
                self._outputs[state, bit] = (self._taps @ window) % 2
        # Predecessor tables: each next-state has exactly two incoming
        # branches; column 0 holds the one encountered first in (state,
        # bit) lexicographic order, which the select below favours on
        # ties — the same tie-break a scalar "strictly greater" update
        # loop produces.
        prev_state = np.zeros((n_states, 2), dtype=np.int64)
        prev_bit = np.zeros((n_states, 2), dtype=np.int64)
        fill = np.zeros(n_states, dtype=np.int64)
        for state in range(n_states):
            for bit in range(2):
                nxt = int(self._next_state[state, bit])
                prev_state[nxt, fill[nxt]] = state
                prev_bit[nxt, fill[nxt]] = bit
                fill[nxt] += 1
        # Flat gather indexes into a (S*2,) branch-metric vector, stacked
        # [column 0 | column 1] so the ACS loop touches each array once:
        # one take, one add, then compare/select the two halves. Only
        # these decode-time layouts are kept on the instance.
        branch_gather = prev_state * 2 + prev_bit
        self._pred_stacked = np.ascontiguousarray(
            np.concatenate([prev_state[:, 0], prev_state[:, 1]]))
        self._gather_stacked = np.ascontiguousarray(
            np.concatenate([branch_gather[:, 0], branch_gather[:, 1]]))
        self._prev_state_flat = prev_state.ravel().tolist()
        self._prev_bit_flat = prev_bit.ravel().tolist()
        # Expected +/-1 outputs, flattened so all branch metrics for all
        # steps come from one matmul.
        expected = 1.0 - 2.0 * self._outputs.astype(float)  # (S, 2, n)
        self._expected_t = expected.reshape(n_states * 2, n_out).T.copy()

    # ------------------------------------------------------------------
    def encode(self, bits, terminate: bool = True) -> np.ndarray:
        """Encode *bits*; with ``terminate`` a zero tail flushes the state.

        Output length is ``rate_inverse * (len(bits) + K - 1)`` when
        terminated. Because the code is feed-forward from the all-zero
        state, output stream g is simply the mod-2 convolution of the data
        with generator g's taps — no per-bit state walk needed.
        """
        data = as_bit_array(bits)
        if terminate:
            data = np.concatenate([
                data, np.zeros(self.constraint_length - 1, dtype=np.uint8)
            ])
        if data.size == 0:
            return np.zeros(0, dtype=np.uint8)
        n_out = self.rate_inverse
        wide = data.astype(np.int64)
        out = np.empty((data.size, n_out), dtype=np.uint8)
        for g in range(n_out):
            conv = np.convolve(wide, self._taps[g].astype(np.int64))
            out[:, g] = conv[:data.size] & 1
        return out.reshape(-1)

    # ------------------------------------------------------------------
    def decode_hard(self, coded, terminated: bool = True) -> np.ndarray:
        """Viterbi with Hamming branch metrics over hard bits."""
        received = as_bit_array(coded).astype(float)
        # Map bits to +/-1 soft values so one metric path serves both.
        return self.decode_soft(1.0 - 2.0 * received,
                                terminated=terminated)

    def decode_soft(self, soft, terminated: bool = True) -> np.ndarray:
        """Viterbi with Euclidean metrics over soft BPSK values.

        *soft* holds one real value per coded bit with the convention
        bit 0 -> +1, bit 1 -> -1 (sign convention cancels in the metric,
        as long as it matches :meth:`encode`'s mapping below).
        Returns the decoded information bits (tail stripped when
        *terminated*).
        """
        values = np.asarray(soft, dtype=float).ravel()
        n_out = self.rate_inverse
        if values.size % n_out != 0:
            raise ConfigurationError(
                f"soft length {values.size} not a multiple of {n_out}")
        n_steps = values.size // n_out
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)
        n_states = self.n_states

        # All branch metrics for all steps in one matmul, then gathered
        # into stacked [column 0 | column 1] layout up front:
        # branch_all[t, s*2 + b] = expected[s, b] . values[t].
        branch_all = values.reshape(n_steps, n_out) @ self._expected_t
        branch_stacked = np.ascontiguousarray(
            branch_all[:, self._gather_stacked])

        metrics = np.full(n_states, -np.inf)
        metrics[0] = 0.0
        cand = np.empty(2 * n_states)
        cand0 = cand[:n_states]
        cand1 = cand[n_states:]
        # take_second[t, n] records which of next-state n's two incoming
        # branches won step t; the (bit, predecessor) pair is reconstructed
        # from the trellis tables during traceback, so the ACS loop is just
        # one gather, one add, a compare, and a max per step.
        take_second = np.empty((n_steps, n_states), dtype=bool)
        pred = self._pred_stacked
        # `metrics` is updated in place, so the bound take stays valid;
        # binding it (and iterating rows via zip) strips the per-step
        # numpy dispatch wrappers from the only sequential loop left.
        gather_metrics = metrics.take
        add = np.add
        greater = np.greater
        maximum = np.maximum
        for row, flags in zip(branch_stacked, take_second):
            gather_metrics(pred, out=cand)
            add(cand, row, out=cand)
            # Strict >: ties keep the branch encountered first in (state,
            # bit) order, matching a scalar best-so-far update.
            greater(cand1, cand0, out=flags)
            maximum(cand0, cand1, out=metrics)

        state = 0 if terminated else int(np.argmax(metrics))
        prev_state = self._prev_state_flat
        prev_bit = self._prev_bit_flat
        decoded_list = [0] * n_steps
        winners = take_second.tobytes()  # one byte per (step, state) flag
        for step in range(n_steps - 1, -1, -1):
            j = state + state + winners[step * n_states + state]
            decoded_list[step] = prev_bit[j]
            state = prev_state[j]
        decoded = np.array(decoded_list, dtype=np.uint8)
        if terminated:
            decoded = decoded[:n_steps - (self.constraint_length - 1)]
        return decoded

    def decode_soft_batch(self, soft, terminated: bool = True) -> np.ndarray:
        """Trial-axis Viterbi: decode ``(N, coded_len)`` lanes in lockstep.

        Each row is an independent codeword of the same length (callers
        stack equal-length lanes; ragged batches are grouped upstream).
        Bit-identical to :meth:`decode_soft` row by row: the ACS keeps the
        same stacked-gather layout and strict-greater tie-break, only with
        a leading lane axis, and the traceback pointer chase runs across
        all lanes per step instead of per codeword.
        """
        values = np.asarray(soft, dtype=float)
        if values.ndim != 2:
            raise ConfigurationError("expected (n_lanes, coded_len) soft")
        n_lanes = values.shape[0]
        n_out = self.rate_inverse
        if values.shape[1] % n_out != 0:
            raise ConfigurationError(
                f"soft length {values.shape[1]} not a multiple of {n_out}")
        n_steps = values.shape[1] // n_out
        if n_steps == 0 or n_lanes == 0:
            tail = (self.constraint_length - 1) if terminated else 0
            return np.zeros((n_lanes, max(n_steps - tail, 0)),
                            dtype=np.uint8)
        n_states = self.n_states

        # branch_all[l, t, s*2+b] = expected[s, b] . values[l, t]
        branch_all = (values.reshape(n_lanes, n_steps, n_out)
                      @ self._expected_t)

        metrics = np.full((n_lanes, n_states), -np.inf)
        metrics[:, 0] = 0.0
        cand = np.empty((n_lanes, 2 * n_states))
        cand0 = cand[:, :n_states]
        cand1 = cand[:, n_states:]
        # Gathering branch metrics per step keeps the working set at two
        # (n_lanes, 2*n_states) rows; pre-permuting all of branch_all into
        # candidate order costs an (N, steps, 2*states) copy that dwarfs
        # the ACS itself on long codewords.
        branch_step = np.empty((n_lanes, 2 * n_states))
        take_second = np.empty((n_steps, n_lanes, n_states), dtype=bool)
        pred = self._pred_stacked
        gather = self._gather_stacked
        take = np.take
        add = np.add
        greater = np.greater
        maximum = np.maximum
        for step in range(n_steps):
            take(metrics, pred, axis=1, out=cand)
            take(branch_all[:, step], gather, axis=1, out=branch_step)
            add(cand, branch_step, out=cand)
            greater(cand1, cand0, out=take_second[step])
            maximum(cand0, cand1, out=metrics)

        if terminated:
            state = np.zeros(n_lanes, dtype=np.int64)
        else:
            state = np.argmax(metrics, axis=1)
        prev_state = np.array(self._prev_state_flat, dtype=np.int64)
        prev_bit = np.array(self._prev_bit_flat, dtype=np.uint8)
        lanes = np.arange(n_lanes)
        decoded = np.empty((n_lanes, n_steps), dtype=np.uint8)
        for step in range(n_steps - 1, -1, -1):
            j = 2 * state + take_second[step, lanes, state]
            decoded[:, step] = prev_bit[j]
            state = prev_state[j]
        if terminated:
            decoded = decoded[:, :n_steps - (self.constraint_length - 1)]
        return decoded
