"""Block interleaving: spread burst errors across the codeword.

ZigZag's residual errors are bursty (a wrong chunk decision perturbs its
neighbours before dying out, §4.3a); a block interleaver turns those
bursts into isolated errors the convolutional code corrects easily.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BlockInterleaver"]


@dataclass(frozen=True)
class BlockInterleaver:
    """Row-in / column-out block interleaver with *depth* rows."""

    depth: int = 8

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigurationError("interleaver depth must be >= 1")

    def _shape(self, n: int) -> tuple[int, int]:
        columns = -(-n // self.depth)  # ceil
        return self.depth, columns

    def interleave(self, values) -> np.ndarray:
        arr = np.asarray(values).ravel()
        rows, cols = self._shape(arr.size)
        padded = np.concatenate([
            arr, np.zeros(rows * cols - arr.size, dtype=arr.dtype)])
        return padded.reshape(rows, cols).T.ravel()

    def deinterleave(self, values, original_length: int) -> np.ndarray:
        arr = np.asarray(values).ravel()
        rows, cols = self._shape(original_length)
        if arr.size != rows * cols:
            raise ConfigurationError(
                f"interleaved length {arr.size} inconsistent with "
                f"original {original_length} at depth {self.depth}")
        return arr.reshape(cols, rows).T.ravel()[:original_length]
