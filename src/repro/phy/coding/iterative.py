"""§6(a): exploiting bit-level codes on top of ZigZag.

The paper's future-work proposal starts by running the bit-level decoder
over ZigZag's modulation-level estimates to "generate cleaner bits". This
module implements that first iteration for BPSK payloads:

- :func:`encode_for_zigzag` convolutionally encodes (and interleaves) a
  payload before framing, so the on-air packet carries the 802.11 mother
  code;
- :func:`decode_coded_soft` takes the soft symbol stream that ZigZag's
  forward+backward MRC produced for the payload region, deinterleaves it,
  and runs soft-decision Viterbi — turning residual symbol errors (which
  arrive in short bursts, §4.3a) back into clean payload bits.

The full iterative loop (re-encode the cleaned bits, re-subtract, decode
again) composes from these pieces plus the existing
:class:`~repro.zigzag.engine.ZigZagEngine`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.coding.interleaver import BlockInterleaver
from repro.utils.bits import as_bit_array

__all__ = ["encode_for_zigzag", "decode_coded_soft"]

_DEFAULT_CODE = ConvolutionalCode()
_DEFAULT_INTERLEAVER = BlockInterleaver(depth=8)


def encode_for_zigzag(payload, code: ConvolutionalCode | None = None,
                      interleaver: BlockInterleaver | None = None
                      ) -> np.ndarray:
    """Payload bits -> coded + interleaved bits ready for framing."""
    code = code or _DEFAULT_CODE
    interleaver = interleaver or _DEFAULT_INTERLEAVER
    coded = code.encode(as_bit_array(payload), terminate=True)
    return interleaver.interleave(coded).astype(np.uint8)


def coded_length(payload_bits: int,
                 code: ConvolutionalCode | None = None,
                 interleaver: BlockInterleaver | None = None) -> int:
    """On-air bit count for a payload of *payload_bits*."""
    code = code or _DEFAULT_CODE
    interleaver = interleaver or _DEFAULT_INTERLEAVER
    raw = code.rate_inverse * (payload_bits + code.constraint_length - 1)
    rows = interleaver.depth
    return rows * (-(-raw // rows))


def decode_coded_soft(soft_symbols, payload_bits: int,
                      code: ConvolutionalCode | None = None,
                      interleaver: BlockInterleaver | None = None
                      ) -> np.ndarray:
    """Soft BPSK payload symbols -> error-corrected payload bits.

    *soft_symbols* are the gain-normalized complex estimates ZigZag
    produced for the coded payload region (BPSK: the real part carries the
    information; bit 0 -> -1, bit 1 -> +1 per the Ch. 3 mapping).
    """
    code = code or _DEFAULT_CODE
    interleaver = interleaver or _DEFAULT_INTERLEAVER
    soft = np.real(np.asarray(soft_symbols).ravel())
    raw_len = code.rate_inverse * (payload_bits
                                   + code.constraint_length - 1)
    expected = coded_length(payload_bits, code, interleaver)
    if soft.size < expected:
        raise ConfigurationError(
            f"need {expected} soft values, got {soft.size}")
    deinterleaved = interleaver.deinterleave(soft[:expected], raw_len)
    # Our BPSK maps bit 1 -> +1; the decoder's convention is bit 0 -> +1.
    return code.decode_soft(-deinterleaved, terminated=True)
