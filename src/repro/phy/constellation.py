"""Linear memoryless modulations: BPSK, QPSK, 16-QAM, 64-QAM.

The paper's prototype uses BPSK (802.11 low rates), but ZigZag treats the
demodulator as a black box and explicitly claims independence from the
modulation scheme (§1, §4.2.3a), so we provide the square-QAM family used by
802.11a/g as well. All constellations are Gray-mapped and normalized to unit
average energy so SNR definitions are modulation-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = [
    "Constellation",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "get_constellation",
]


def _gray(n: int) -> int:
    return n ^ (n >> 1)


def _pam_levels(bits_per_axis: int) -> np.ndarray:
    """Gray-mapped PAM amplitude levels for one I/Q axis, ascending order.

    ``levels[g]`` is the amplitude transmitted for Gray code ``g``.
    """
    m = 1 << bits_per_axis
    raw = np.arange(m)
    amplitudes = 2 * raw - (m - 1)  # ..., -3, -1, 1, 3, ...
    levels = np.empty(m, dtype=float)
    for idx, amp in zip(raw, amplitudes):
        levels[_gray(int(idx))] = amp
    return levels


@dataclass(frozen=True)
class Constellation:
    """A memoryless mapping between k-bit labels and complex points.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"bpsk"``.
    bits_per_symbol:
        Number of bits carried per complex symbol.
    points:
        ``2**bits_per_symbol`` complex points, indexed by the integer value
        of the MSB-first bit label. Normalized to unit average energy.
    """

    name: str
    bits_per_symbol: int
    points: np.ndarray

    def __post_init__(self) -> None:
        expected = 1 << self.bits_per_symbol
        if self.points.shape != (expected,):
            raise ConfigurationError(
                f"{self.name}: need {expected} points, got {self.points.shape}"
            )

    @property
    def size(self) -> int:
        return self.points.size

    def modulate(self, bits) -> np.ndarray:
        """Map a bit array (length multiple of ``bits_per_symbol``) to symbols."""
        arr = as_bit_array(bits)
        k = self.bits_per_symbol
        if arr.size % k != 0:
            raise ConfigurationError(
                f"bit count {arr.size} not a multiple of {k} ({self.name})"
            )
        if arr.size == 0:
            return np.zeros(0, dtype=complex)
        groups = arr.reshape(-1, k)
        weights = 1 << np.arange(k - 1, -1, -1)
        indices = groups @ weights
        return self.points[indices]

    def hard_decision(self, symbols) -> np.ndarray:
        """Nearest-point decision; returns label indices."""
        sym = np.asarray(symbols, dtype=complex).ravel()
        # Distance to every constellation point; fine for M <= 64.
        dist = np.abs(sym[:, None] - self.points[None, :])
        return np.argmin(dist, axis=1)

    def demodulate(self, symbols) -> np.ndarray:
        """Hard-demodulate symbols back to an MSB-first bit array."""
        indices = self.hard_decision(symbols)
        k = self.bits_per_symbol
        shifts = np.arange(k - 1, -1, -1)
        bits = (indices[:, None] >> shifts[None, :]) & 1
        return bits.astype(np.uint8).ravel()

    def slice_symbols(self, symbols) -> np.ndarray:
        """Project noisy symbols onto the nearest constellation points."""
        return self.points[self.hard_decision(symbols)]

    def min_distance(self) -> float:
        """Minimum Euclidean distance between distinct points."""
        diffs = np.abs(self.points[:, None] - self.points[None, :])
        np.fill_diagonal(diffs, np.inf)
        return float(diffs.min())

    def conjugate(self) -> "Constellation":
        """The constellation with every point conjugated.

        Square QAM and PSK constellations are closed under conjugation, so
        this returns a constellation over the same point *set* but with the
        label map adjusted; it is what backward (time-reversed) decoding
        operates on.
        """
        return Constellation(self.name + "*", self.bits_per_symbol,
                             np.conj(self.points))


def _make_bpsk() -> Constellation:
    # Paper Ch.3: "0" -> e^{j*pi} = -1, "1" -> e^{j0} = +1.
    return Constellation("bpsk", 1, np.array([-1.0 + 0j, 1.0 + 0j]))


def _make_qpsk() -> Constellation:
    # Gray-mapped 4-QAM: one bit per axis, unit average energy.
    levels = _pam_levels(1) / np.sqrt(2.0)
    points = np.empty(4, dtype=complex)
    for label in range(4):
        i_bit = (label >> 1) & 1
        q_bit = label & 1
        points[label] = levels[i_bit] + 1j * levels[q_bit]
    return Constellation("qpsk", 2, points)


def _make_square_qam(bits_per_symbol: int, name: str) -> Constellation:
    half = bits_per_symbol // 2
    levels = _pam_levels(half)
    m = 1 << bits_per_symbol
    points = np.empty(m, dtype=complex)
    for label in range(m):
        i_gray = label >> half
        q_gray = label & ((1 << half) - 1)
        points[label] = levels[i_gray] + 1j * levels[q_gray]
    energy = np.mean(np.abs(points) ** 2)
    return Constellation(name, bits_per_symbol, points / np.sqrt(energy))


BPSK = _make_bpsk()
QPSK = _make_qpsk()
QAM16 = _make_square_qam(4, "qam16")
QAM64 = _make_square_qam(6, "qam64")

_REGISTRY = {c.name: c for c in (BPSK, QPSK, QAM16, QAM64)}


@lru_cache(maxsize=None)
def get_constellation(name: str) -> Constellation:
    """Look up a constellation by name (``bpsk``/``qpsk``/``qam16``/``qam64``)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown constellation {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
