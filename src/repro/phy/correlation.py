"""Sliding preamble correlation — the paper's collision-detection primitive.

§4.2.1: the AP slides the known L-sample preamble across the received
buffer; after compensating for the colliding sender's frequency offset, the
correlation magnitude spikes exactly where a packet (and only a packet)
begins. The same trick powers packet sync, collision detection (Fig 4-2),
collision *matching* (§4.2.2), and channel estimation (§4.2.4a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CollisionDetectError, ConfigurationError
from repro.phy.preamble import Preamble

__all__ = [
    "sliding_correlation",
    "normalized_sliding_correlation",
    "CorrelationPeak",
    "find_correlation_peaks",
    "refine_peak_position",
]


def sliding_correlation(signal, preamble: Preamble,
                        freq_offset: float = 0.0) -> np.ndarray:
    """Γ'(Δ) for every alignment Δ: ``sum_k s*[k] y[k+Δ] e^{-j2πk·δf}``.

    *freq_offset* is the coarse estimate of the colliding sender's offset in
    cycles per sample (the AP keeps these per associated client, §4.2.1).
    Returns a complex array of length ``len(signal) - L + 1``.
    """
    y = np.asarray(signal, dtype=complex).ravel()
    length = len(preamble)
    if y.size < length:
        raise CollisionDetectError(
            f"signal ({y.size}) shorter than preamble ({length})"
        )
    k = np.arange(length)
    reference = preamble.symbols * np.exp(2j * np.pi * freq_offset * k)
    # np.correlate(y, v)[d] = sum_k y[d+k] * conj(v[k]).
    return np.correlate(y, reference, mode="valid")


def _normalize_correlation(abs_corr: np.ndarray, signal: np.ndarray,
                           preamble: Preamble) -> np.ndarray:
    """Scale |Γ'(Δ)| to [0, 1] by preamble and local signal energy."""
    length = len(preamble)
    energy = np.convolve(np.abs(signal) ** 2, np.ones(length), mode="valid")
    denom = np.sqrt(preamble.energy * np.maximum(energy, 1e-30))
    return abs_corr / denom


def normalized_sliding_correlation(signal, preamble: Preamble,
                                   freq_offset: float = 0.0) -> np.ndarray:
    """|Γ'(Δ)| normalized to [0, 1] by preamble and local signal energy.

    The normalized metric is what thresholds compare against: it is
    invariant to the colliding sender's power, which makes a single β work
    across the SNR range (§5.3a).
    """
    y = np.asarray(signal, dtype=complex).ravel()
    corr = sliding_correlation(y, preamble, freq_offset)
    return _normalize_correlation(np.abs(corr), y, preamble)


@dataclass(frozen=True)
class CorrelationPeak:
    """One detected preamble alignment.

    Attributes
    ----------
    position:
        Integer sample index of the packet start.
    fine_offset:
        Sub-sample refinement in (-0.5, 0.5); ``position + fine_offset`` is
        the best fractional start estimate (this is the sampling-offset
        estimate μ for that packet).
    value:
        Complex correlation Γ'(Δ) at the peak — its magnitude over the
        preamble energy is the channel gain estimate (§4.2.4a).
    score:
        Normalized correlation in [0, 1] used for thresholding.
    """

    position: int
    fine_offset: float
    value: complex
    score: float


def refine_peak_position(magnitudes: np.ndarray, index: int) -> float:
    """Parabolic interpolation of a peak to sub-sample accuracy."""
    if index <= 0 or index >= magnitudes.size - 1:
        return 0.0
    left, mid, right = magnitudes[index - 1:index + 2]
    denom = left - 2.0 * mid + right
    if denom == 0:
        return 0.0
    delta = 0.5 * (left - right) / denom
    return float(np.clip(delta, -0.5, 0.5))


def find_correlation_peaks(signal, preamble: Preamble, *,
                           freq_offset: float = 0.0,
                           threshold: float = 0.6,
                           min_separation: int | None = None,
                           max_peaks: int | None = None) -> list[CorrelationPeak]:
    """All positions where the normalized correlation exceeds *threshold*.

    Peaks closer than *min_separation* (default: preamble length) collapse
    to the strongest one, preventing one packet start from registering as
    several detections.
    """
    if not 0.0 < threshold <= 1.0:
        raise ConfigurationError("threshold must lie in (0, 1]")
    y = np.asarray(signal, dtype=complex).ravel()
    # One correlation pass serves both the raw peak values and the
    # normalized scores (it used to be computed twice).
    corr = sliding_correlation(y, preamble, freq_offset)
    abs_corr = np.abs(corr)
    scores = _normalize_correlation(abs_corr, y, preamble)
    separation = min_separation if min_separation is not None else len(preamble)

    candidates = np.flatnonzero(scores >= threshold)
    peaks: list[CorrelationPeak] = []
    used = np.zeros(scores.size, dtype=bool)
    # Greedily take the strongest remaining candidate, mask its neighborhood.
    order = candidates[np.argsort(-scores[candidates])]
    for idx in order:
        if used[idx]:
            continue
        lo = max(0, idx - separation)
        hi = min(scores.size, idx + separation + 1)
        used[lo:hi] = True
        fine = refine_peak_position(abs_corr, int(idx))
        peaks.append(CorrelationPeak(
            position=int(idx),
            fine_offset=fine,
            value=complex(corr[idx]),
            score=float(scores[idx]),
        ))
        if max_peaks is not None and len(peaks) >= max_peaks:
            break
    peaks.sort(key=lambda p: p.position)
    return peaks
