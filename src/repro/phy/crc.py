"""CRC-32 (IEEE 802.3 polynomial) implemented from scratch.

802.11 frames carry a 32-bit FCS computed with the same reflected polynomial
0xEDB88320 as Ethernet. We implement the table-driven byte-wise algorithm and
bit-array conveniences used by the framing layer, with no dependency on
``zlib`` so the whole substrate is self-contained.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bits import as_bit_array, bits_from_bytes, bits_to_bytes

__all__ = ["crc32", "crc32_bits", "crc32_check", "append_crc32", "strip_crc32"]

_POLY = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes | bytearray) -> int:
    """CRC-32 of *data* (init 0xFFFFFFFF, final XOR 0xFFFFFFFF)."""
    crc = 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_bits(bits) -> np.ndarray:
    """CRC-32 over a bit array; returns the 32 checksum bits (MSB first).

    The bit array is padded with zero bits to a byte boundary before the
    byte-wise CRC runs, which keeps the implementation simple and is fine
    because both sides of the link apply the same convention.
    """
    arr = as_bit_array(bits)
    remainder = arr.size % 8
    if remainder:
        arr = np.concatenate([arr, np.zeros(8 - remainder, dtype=np.uint8)])
    value = crc32(bits_to_bytes(arr))
    return bits_from_bytes(value.to_bytes(4, "big"))


def append_crc32(bits) -> np.ndarray:
    """Return *bits* with their 32 CRC bits appended."""
    arr = as_bit_array(bits)
    return np.concatenate([arr, crc32_bits(arr)])


def strip_crc32(bits) -> tuple[np.ndarray, bool]:
    """Split payload and checksum; second element is True iff the CRC matches."""
    arr = as_bit_array(bits)
    if arr.size < 32:
        raise ConfigurationError("bit array shorter than a CRC-32 field")
    payload, checksum = arr[:-32], arr[-32:]
    return payload, bool(np.array_equal(crc32_bits(payload), checksum))


def crc32_check(bits) -> bool:
    """True iff the trailing 32 bits are the CRC of the preceding bits."""
    return strip_crc32(bits)[1]
