"""Linear equalization (§3.1.3) and its inversion for re-encoding (§4.2.4d).

The black-box decoder trains a short linear equalizer on the known preamble
(least-squares by default, optional LMS refinement) to undo multipath ISI.
ZigZag then *inverts* that equalizer to re-apply the channel's distortion
when reconstructing a chunk image: "we can take the filter from the decoder
and invert it."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import lstsq

from repro.errors import ConfigurationError
from repro.phy.isi import IsiFilter, invert_fir

__all__ = ["LmsEqualizer"]


def _build_convolution_matrix(received: np.ndarray,
                              n_taps: int) -> np.ndarray:
    """Design matrix M with ``M @ taps == equalize(received)``.

    ``equalize`` computes ``np.convolve(y, taps)[half : half+N]`` whose n-th
    entry is ``sum_m taps[m] * y[n + half - m]``; column m of M is therefore
    the received signal shifted by ``half - m`` (zero padded).
    """
    n = received.size
    half = n_taps // 2
    padded = np.concatenate([
        np.zeros(n_taps, dtype=complex), received,
        np.zeros(n_taps, dtype=complex),
    ])
    matrix = np.empty((n, n_taps), dtype=complex)
    rows = np.arange(n)
    for m in range(n_taps):
        matrix[:, m] = padded[rows + half - m + n_taps]
    return matrix


@dataclass
class LmsEqualizer:
    """A fractionally-trained linear (FIR) equalizer.

    Parameters
    ----------
    n_taps:
        Filter length (odd recommended; the centre tap is the cursor).
    step:
        LMS step size for decision-directed refinement.
    """

    n_taps: int = 7
    step: float = 0.01
    taps: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.n_taps < 1:
            raise ConfigurationError("equalizer needs at least one tap")
        if self.taps is None:
            taps = np.zeros(self.n_taps, dtype=complex)
            taps[self.n_taps // 2] = 1.0
            self.taps = taps
        else:
            self.taps = np.asarray(self.taps, dtype=complex).ravel()
            if self.taps.size != self.n_taps:
                raise ConfigurationError("taps length must equal n_taps")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit_least_squares(self, received, desired,
                          ridge: float | None = None) -> None:
        """LS fit ``conv(received, taps) ≈ desired``, optionally ridged.

        This is the preamble-training path of the standard decoder: short
        training sequences favour a direct solve over slow LMS adaptation.
        *ridge* regularizes toward the identity filter (centre tap 1) —
        essential when training on a 32-symbol preamble at low SNR, where
        an unregularized solve fits noise and the resulting misadjustment
        dominates the post-equalizer error floor.
        """
        y = np.asarray(received, dtype=complex).ravel()
        d = np.asarray(desired, dtype=complex).ravel()
        if y.size != d.size:
            raise ConfigurationError("received/desired length mismatch")
        if y.size < self.n_taps:
            raise ConfigurationError("training sequence shorter than filter")
        matrix = _build_convolution_matrix(y, self.n_taps)
        identity = np.zeros(self.n_taps, dtype=complex)
        identity[self.n_taps // 2] = 1.0
        if ridge is None or ridge == 0.0:
            solution, *_ = lstsq(matrix, d, lapack_driver="gelsd")
        else:
            if ridge < 0:
                raise ConfigurationError("ridge must be non-negative")
            gram = matrix.conj().T @ matrix + ridge * np.eye(self.n_taps)
            rhs = matrix.conj().T @ (d - matrix @ identity)
            solution = identity + np.linalg.solve(gram, rhs)
        self.taps = solution

    def adapt_lms(self, received, desired) -> None:
        """One LMS pass over a (received, desired) training pair sequence."""
        y = np.asarray(received, dtype=complex).ravel()
        d = np.asarray(desired, dtype=complex).ravel()
        if y.size != d.size:
            raise ConfigurationError("received/desired length mismatch")
        half = self.n_taps // 2
        padded = np.concatenate([
            np.zeros(half, dtype=complex), y, np.zeros(half, dtype=complex)
        ])
        for n in range(y.size):
            window = padded[n:n + self.n_taps][::-1]
            estimate = np.dot(self.taps, window)
            error = d[n] - estimate
            self.taps = self.taps + self.step * error * np.conj(window)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def equalize(self, signal) -> np.ndarray:
        """Filter *signal* with the trained taps ("same" length, centered)."""
        y = np.asarray(signal, dtype=complex).ravel()
        if y.size == 0:
            return y
        half = self.n_taps // 2
        full = np.convolve(y, self.taps)
        return full[half:half + y.size]

    def as_isi_filter(self) -> IsiFilter:
        return IsiFilter(self.taps)

    def inverse_channel(self, length: int | None = None) -> IsiFilter:
        """Invert the equalizer back into a channel (distortion) filter.

        This is the §4.2.4(d) operation: the returned filter re-applies the
        ISI that the equalizer removes, for use in chunk re-encoding.
        """
        n = length if length is not None else max(self.n_taps, 9)
        return IsiFilter(invert_fir(self.taps, n))
