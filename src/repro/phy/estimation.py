"""Channel and frequency-offset estimation from the known preamble (§4.2.4).

(a) Channel: at the correlation peak, Γ'(Δ) = H · Σ|s[k]|², so the complex
    gain estimate is the peak value over the preamble energy.
(b) Frequency offset: the preamble is split into segments; each segment's
    correlation phase advances linearly with δf, so a weighted fit of the
    inter-segment phase slope yields δf. An optional coarse prior (the AP's
    stored per-client estimate) is compensated first so the fit only has to
    resolve the small residual.
(c) Sampling offset: sub-sample peak interpolation (see
    :func:`repro.phy.correlation.refine_peak_position`) plus decision-
    directed Mueller–Müller tracking during decoding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.channel import ChannelParams
from repro.phy.preamble import Preamble

__all__ = [
    "ChannelEstimate",
    "estimate_channel_from_preamble",
    "estimate_frequency_offset",
    "estimate_noise_power",
    "refine_fractional_start",
    "acquire",
]


@dataclass(frozen=True)
class ChannelEstimate:
    """Receiver-side estimate of one sender's link parameters."""

    gain: complex
    freq_offset: float
    sampling_offset: float
    snr_db: float
    isi_taps: tuple | None = None

    def to_params(self) -> ChannelParams:
        """Convert to :class:`ChannelParams` for re-encoding a chunk image."""
        return ChannelParams(
            gain=self.gain,
            freq_offset=self.freq_offset,
            sampling_offset=self.sampling_offset,
            phase_noise_std=0.0,
            isi_taps=self.isi_taps,
        )

    def with_freq_offset(self, freq_offset: float) -> "ChannelEstimate":
        return replace(self, freq_offset=freq_offset)

    def with_gain(self, gain: complex) -> "ChannelEstimate":
        return replace(self, gain=gain)


def estimate_channel_from_preamble(signal, preamble: Preamble, position: int,
                                   freq_offset: float = 0.0,
                                   noise_power: float = 1.0) -> ChannelEstimate:
    """Estimate H (and SNR) from the preamble at a known start position.

    Implements §4.2.4(a): H = Γ'(Δ_peak) / Σ|s[k]|². The frequency offset
    passed in is the (possibly refined) estimate used for compensation; it
    is stored in the returned estimate unchanged.
    """
    y = np.asarray(signal, dtype=complex).ravel()
    gamma = preamble.correlate_at(y, position, freq_offset)
    gain = gamma / preamble.energy
    power = abs(gain) ** 2
    snr_db = 10.0 * np.log10(max(power / max(noise_power, 1e-30), 1e-12))
    return ChannelEstimate(
        gain=gain,
        freq_offset=freq_offset,
        sampling_offset=0.0,
        snr_db=float(snr_db),
    )


def estimate_frequency_offset(signal, preamble: Preamble, position: int, *,
                              coarse: float = 0.0,
                              n_segments: int = 4) -> float:
    """Estimate δf (cycles/sample) from inter-segment correlation phases.

    Splits the preamble into *n_segments* equal pieces. With residual offset
    r, the m-th segment's correlation carries phase ``2π r m (L/n)`` plus a
    common term; a least-squares fit of the unwrapped phase slope over the
    segment index recovers r. The returned value is ``coarse + r``.
    """
    if n_segments < 2:
        raise ConfigurationError("need at least 2 segments to fit a slope")
    y = np.asarray(signal, dtype=complex).ravel()
    length = len(preamble)
    seg = length // n_segments
    if seg < 2:
        raise ConfigurationError("preamble too short for that many segments")

    k = np.arange(length)
    rotator = np.exp(-2j * np.pi * coarse * k)
    window = y[position:position + length]
    if window.size < length:
        raise ConfigurationError("signal too short for preamble at position")
    derotated = window * rotator

    correlations = np.empty(n_segments, dtype=complex)
    for m in range(n_segments):
        sl = slice(m * seg, (m + 1) * seg)
        correlations[m] = np.sum(np.conj(preamble.symbols[sl]) * derotated[sl])

    phases = np.unwrap(np.angle(correlations))
    weights = np.abs(correlations)
    if np.all(weights == 0):
        return coarse
    centers = np.arange(n_segments, dtype=float) * seg
    # Weighted least-squares line fit phase = a + b * center.
    w = weights / weights.sum()
    xm = np.sum(w * centers)
    ym = np.sum(w * phases)
    cov = np.sum(w * (centers - xm) * (phases - ym))
    var = np.sum(w * (centers - xm) ** 2)
    slope = cov / var if var > 0 else 0.0
    residual = slope / (2.0 * np.pi)
    return float(coarse + residual)


def _aligned_segment_freq(aligned: np.ndarray, preamble: Preamble,
                          n_segments: int) -> float:
    """Residual frequency from segment-correlation phase slope, on samples
    already interpolated onto the preamble grid."""
    length = len(preamble)
    seg = length // n_segments
    correlations = np.empty(n_segments, dtype=complex)
    for m in range(n_segments):
        sl = slice(m * seg, (m + 1) * seg)
        correlations[m] = np.sum(np.conj(preamble.symbols[sl]) * aligned[sl])
    phases = np.unwrap(np.angle(correlations))
    weights = np.abs(correlations)
    if np.all(weights == 0):
        return 0.0
    centers = np.arange(n_segments, dtype=float) * seg
    w = weights / weights.sum()
    xm = np.sum(w * centers)
    ym = np.sum(w * phases)
    cov = np.sum(w * (centers - xm) * (phases - ym))
    var = np.sum(w * (centers - xm) ** 2)
    slope = cov / var if var > 0 else 0.0
    return float(slope / (2.0 * np.pi))


def refine_fractional_start(signal, preamble: Preamble, position: int, *,
                            coarse_freq: float = 0.0,
                            span: float = 0.6, step: float = 0.2,
                            half_width: int = 4) -> float:
    """Sub-sample start offset that maximizes the *interpolated* correlation.

    The naive 3-point parabolic refinement over the raw discrete
    correlation is biased by the preamble's aperiodic autocorrelation
    sidelobes; interpolating the received samples onto candidate fractional
    grids and correlating there is sidelobe-free. A final parabolic fit over
    the best grid point and its neighbours polishes the estimate.
    """
    from repro.phy.resample import sinc_interpolate_uniform

    y = np.asarray(signal, dtype=complex).ravel()
    length = len(preamble)
    k = np.arange(length)
    rotator = np.exp(-2j * np.pi * coarse_freq * k)
    offsets = np.arange(-span, span + step / 2, step)
    scores = np.empty(offsets.size)
    for i, delta in enumerate(offsets):
        seg = sinc_interpolate_uniform(y, position + delta, length,
                                       half_width)
        scores[i] = abs(np.sum(np.conj(preamble.symbols) * seg * rotator))
    best = int(np.argmax(scores))
    if 0 < best < offsets.size - 1:
        left, mid, right = scores[best - 1:best + 2]
        denom = left - 2.0 * mid + right
        frac = 0.5 * (left - right) / denom if denom != 0 else 0.0
        frac = float(np.clip(frac, -1.0, 1.0))
    else:
        frac = 0.0
    return float(offsets[best] + frac * step)


def acquire(signal, preamble: Preamble, position: int, *,
            coarse_freq: float = 0.0, noise_power: float = 1.0,
            n_segments: int = 4, half_width: int = 4) -> ChannelEstimate:
    """Full acquisition at a detected packet start (§4.2.4 a–c).

    Refines the fractional start offset, then estimates the frequency
    offset and complex gain on the offset-aligned, interpolated preamble.
    The returned gain satisfies
    ``aligned[k] ≈ gain * s[k] * exp(j 2π f (position + mu + k))`` —
    the exact model :class:`~repro.receiver.frontend.SymbolStreamDecoder`
    inverts.
    """
    from repro.phy.resample import sinc_interpolate_uniform

    y = np.asarray(signal, dtype=complex).ravel()
    length = len(preamble)
    mu = refine_fractional_start(
        y, preamble, position, coarse_freq=coarse_freq,
        half_width=half_width)
    start = position + mu
    aligned = sinc_interpolate_uniform(y, start, length, half_width)

    k = np.arange(length)
    derotated = aligned * np.exp(-2j * np.pi * coarse_freq * (start + k))
    residual = _aligned_segment_freq(derotated, preamble, n_segments)
    freq = coarse_freq + residual

    reference = preamble.symbols * np.exp(2j * np.pi * freq * (start + k))
    gain = np.vdot(reference, aligned) / np.vdot(preamble.symbols,
                                                 preamble.symbols)
    power = abs(gain) ** 2
    snr_db = 10.0 * np.log10(max(power / max(noise_power, 1e-30), 1e-12))
    return ChannelEstimate(
        gain=complex(gain),
        freq_offset=float(freq),
        sampling_offset=float(mu),
        snr_db=float(snr_db),
    )


def estimate_noise_power(signal, quiet_span: slice | None = None) -> float:
    """Estimate complex noise power from a quiet region of the capture.

    With no *quiet_span*, uses the lowest-energy decile of short windows —
    a standard blind floor estimate that is robust to packets occupying
    most of the buffer.
    """
    y = np.asarray(signal, dtype=complex).ravel()
    if quiet_span is not None:
        region = y[quiet_span]
        if region.size == 0:
            raise ConfigurationError("quiet span selects no samples")
        return float(np.mean(np.abs(region) ** 2))
    window = max(8, y.size // 64)
    n_windows = y.size // window
    if n_windows == 0:
        return float(np.mean(np.abs(y) ** 2))
    powers = np.mean(
        np.abs(y[:n_windows * window].reshape(n_windows, window)) ** 2, axis=1
    )
    k = max(1, n_windows // 10)
    return float(np.mean(np.sort(powers)[:k]))
