"""PHY framing: preamble | header | payload | CRC-32.

Mirrors the structure the paper uses (32-bit preamble, payload, 32-bit CRC,
§5.1c) plus a small PLCP-like header carrying source address, sequence
number, the 802.11 retry flag, payload length, and payload modulation. The
header matters to ZigZag in two ways: the *retry* flag is the one field that
differs between a packet and its retransmission (§4.2.2), and the length
field lets the receiver know how many symbols to decode.

The preamble and header are always BPSK (base rate); the payload may use any
registered constellation, since ZigZag is modulation-agnostic (§4.2.3a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, FrameError
from repro.phy.constellation import BPSK, get_constellation
from repro.phy.crc import append_crc32, strip_crc32
from repro.phy.modulator import Modulator
from repro.phy.preamble import Preamble, default_preamble, lfsr_sequence
from repro.utils.bits import as_bit_array, bits_from_int, bits_to_int

__all__ = ["FrameHeader", "Frame", "build_frame_bits", "parse_frame_bits",
           "scramble_bits", "scrambler_sequence", "descramble_soft_bpsk"]

# Additive scrambler PN sequence (order-9 LFSR, fixed seed), regenerated on
# demand up to the longest frame seen. 802.11 scrambles all PSDU bits for
# exactly the reason we do: constant bit runs (e.g. zero-heavy headers)
# would otherwise put narrowband structure on the air that cross-correlates
# with everything — including the sync preamble.
_SCRAMBLER_CACHE = lfsr_sequence(4096, order=9, seed_state=0b101010101)


def scrambler_sequence(length: int, offset: int = 0) -> np.ndarray:
    """The frame scrambler PN bits ``[offset, offset + length)``.

    Returns a read-only view into the shared cache — batched consumers XOR
    it across a whole ``(N, bits)`` stack at once. Do not mutate.
    """
    global _SCRAMBLER_CACHE
    needed = offset + length
    if needed > _SCRAMBLER_CACHE.size:
        _SCRAMBLER_CACHE = lfsr_sequence(
            2 * needed, order=9, seed_state=0b101010101)
    return _SCRAMBLER_CACHE[offset:offset + length]


def scramble_bits(bits, offset: int = 0) -> np.ndarray:
    """XOR *bits* with the frame scrambler PN, starting at PN index
    *offset*. Self-inverse: apply again (same offset) to descramble."""
    arr = as_bit_array(bits)
    return arr ^ scrambler_sequence(arr.size, offset)


def descramble_soft_bpsk(soft, offset: int = 0) -> np.ndarray:
    """Undo the scrambler on *soft BPSK symbol estimates*.

    A scrambler bit of 1 flipped the transmitted bit, i.e. negated the
    BPSK symbol; soft-decision consumers (e.g. the §6a Viterbi decoder)
    need the sign restored without slicing to hard bits first.
    """
    global _SCRAMBLER_CACHE
    values = np.asarray(soft, dtype=complex).ravel()
    needed = offset + values.size
    if needed > _SCRAMBLER_CACHE.size:
        _SCRAMBLER_CACHE = lfsr_sequence(
            2 * needed, order=9, seed_state=0b101010101)
    signs = 1.0 - 2.0 * _SCRAMBLER_CACHE[
        offset:offset + values.size].astype(float)
    return values * signs

_MODULATION_IDS = {"bpsk": 0, "qpsk": 1, "qam16": 2, "qam64": 3}
_MODULATION_NAMES = {v: k for k, v in _MODULATION_IDS.items()}

# Header field widths, in bits.
_SRC_BITS = 8
_DST_BITS = 8
_SEQ_BITS = 12
_RETRY_BITS = 1
_MOD_BITS = 3
_LEN_BITS = 16
HEADER_BITS = _SRC_BITS + _DST_BITS + _SEQ_BITS + _RETRY_BITS + _MOD_BITS + _LEN_BITS


@dataclass(frozen=True)
class FrameHeader:
    """PLCP-like header. ``payload_bits`` is the *unpadded* payload length."""

    src: int
    dst: int
    seq: int
    retry: bool
    modulation: str
    payload_bits: int

    def __post_init__(self) -> None:
        checks = [
            (0 <= self.src < (1 << _SRC_BITS), "src"),
            (0 <= self.dst < (1 << _DST_BITS), "dst"),
            (0 <= self.seq < (1 << _SEQ_BITS), "seq"),
            (0 <= self.payload_bits < (1 << _LEN_BITS), "payload_bits"),
        ]
        for ok, name in checks:
            if not ok:
                raise ConfigurationError(f"header field {name} out of range")
        if self.modulation not in _MODULATION_IDS:
            raise ConfigurationError(
                f"unknown modulation {self.modulation!r}"
            )

    def to_bits(self) -> np.ndarray:
        parts = [
            bits_from_int(self.src, _SRC_BITS),
            bits_from_int(self.dst, _DST_BITS),
            bits_from_int(self.seq, _SEQ_BITS),
            bits_from_int(int(self.retry), _RETRY_BITS),
            bits_from_int(_MODULATION_IDS[self.modulation], _MOD_BITS),
            bits_from_int(self.payload_bits, _LEN_BITS),
        ]
        return np.concatenate(parts)

    @classmethod
    def from_bits(cls, bits) -> "FrameHeader":
        arr = as_bit_array(bits)
        if arr.size != HEADER_BITS:
            raise FrameError(
                f"header needs {HEADER_BITS} bits, got {arr.size}"
            )
        pos = 0

        def take(width: int) -> int:
            nonlocal pos
            value = bits_to_int(arr[pos:pos + width])
            pos += width
            return value

        src = take(_SRC_BITS)
        dst = take(_DST_BITS)
        seq = take(_SEQ_BITS)
        retry = bool(take(_RETRY_BITS))
        mod_id = take(_MOD_BITS)
        payload_bits = take(_LEN_BITS)
        if mod_id not in _MODULATION_NAMES:
            raise FrameError(f"invalid modulation id {mod_id}")
        return cls(src, dst, seq, retry, _MODULATION_NAMES[mod_id],
                   payload_bits)

    def with_retry(self, retry: bool = True) -> "FrameHeader":
        """Copy of this header with the 802.11 retry flag set/cleared."""
        return FrameHeader(self.src, self.dst, self.seq, retry,
                           self.modulation, self.payload_bits)


def build_frame_bits(header: FrameHeader, payload) -> np.ndarray:
    """Header + payload + CRC-32 over both, as one bit array."""
    payload_arr = as_bit_array(payload)
    if payload_arr.size != header.payload_bits:
        raise FrameError(
            f"payload has {payload_arr.size} bits but header says "
            f"{header.payload_bits}"
        )
    return append_crc32(np.concatenate([header.to_bits(), payload_arr]))


def parse_frame_bits(bits) -> tuple[FrameHeader, np.ndarray, bool]:
    """Inverse of :func:`build_frame_bits`: (header, payload, crc_ok)."""
    arr = as_bit_array(bits)
    if arr.size < HEADER_BITS + 32:
        raise FrameError("bit array too short to hold a frame")
    body, crc_ok = strip_crc32(arr)
    header = FrameHeader.from_bits(body[:HEADER_BITS])
    payload = body[HEADER_BITS:]
    return header, payload, crc_ok


@dataclass(frozen=True)
class Frame:
    """A fully-built PHY frame: known preamble plus modulated body symbols.

    ``symbols`` is the on-air unit-power complex symbol stream
    (preamble symbols followed by body symbols). ``body_bits`` is what the
    receiver must recover (header + payload + CRC).
    """

    header: FrameHeader
    payload: np.ndarray
    preamble: Preamble
    body_bits: np.ndarray
    symbols: np.ndarray

    @classmethod
    def build(cls, header: FrameHeader, payload,
              preamble: Preamble | None = None) -> "Frame":
        preamble = preamble or default_preamble()
        payload_arr = as_bit_array(payload)
        body_bits = build_frame_bits(header, payload_arr)
        on_air = scramble_bits(body_bits)
        header_mod = Modulator(BPSK)
        body_mod = Modulator(get_constellation(header.modulation))
        # Header+CRC region: header bits go at base rate; payload at its own
        # rate. We modulate the whole body at the payload constellation when
        # it is BPSK-compatible; otherwise header stays BPSK and payload+crc
        # use the payload constellation.
        if header.modulation == "bpsk":
            body_symbols = header_mod.modulate(on_air)
        else:
            header_symbols = header_mod.modulate(on_air[:HEADER_BITS])
            rest_symbols = body_mod.modulate(on_air[HEADER_BITS:])
            body_symbols = np.concatenate([header_symbols, rest_symbols])
        symbols = np.concatenate([preamble.symbols, body_symbols])
        return cls(header, payload_arr, preamble, body_bits, symbols)

    @classmethod
    def make(cls, payload, *, src: int = 1, dst: int = 0, seq: int = 0,
             retry: bool = False, modulation: str = "bpsk",
             preamble: Preamble | None = None) -> "Frame":
        """Convenience constructor that derives the header from the payload."""
        payload_arr = as_bit_array(payload)
        header = FrameHeader(src, dst, seq, retry, modulation,
                             payload_arr.size)
        return cls.build(header, payload_arr, preamble)

    def retransmission(self) -> "Frame":
        """The 802.11 retransmission of this frame: same bits, retry=1."""
        return Frame.build(self.header.with_retry(True), self.payload,
                           self.preamble)

    @property
    def n_symbols(self) -> int:
        return self.symbols.size

    @property
    def n_body_symbols(self) -> int:
        return self.symbols.size - len(self.preamble)

    def body_symbol_layout(self) -> tuple[int, int]:
        """(header_symbols, payload_symbols) counts within the body."""
        if self.header.modulation == "bpsk":
            return HEADER_BITS, self.n_body_symbols - HEADER_BITS
        return HEADER_BITS, self.n_body_symbols - HEADER_BITS
