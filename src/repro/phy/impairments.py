"""Composable channel impairments beyond the quasi-static model.

The paper validates ZigZag on a GNU Radio testbed whose captures suffer
*time-varying* channels, oscillator drift and front-end nonlinearity —
effects :class:`~repro.phy.channel.ChannelParams`'s fixed gain/CFO/
sampling-offset model cannot express. This module provides those effects
as small composable stages:

- **Fading** — block/interpolated Rayleigh and Rician processes with a
  coherence-time knob, so the channel moves *within* a packet and the
  ZigZag re-encode/subtract loop accumulates model error chunk by chunk.
- **Sampling-frequency-offset drift** — the receiver ADC clock runs at
  ``1 + ppm``, so the fractional sampling offset drifts over the capture
  instead of staying constant.
- **Front-end nonlinearity** — Rapp-model soft clipping, ADC
  quantization (ENOB), IQ imbalance and DC offset.
- **Interferers** — a narrowband CW tone and bursty on/off wideband
  noise, the "messier than AWGN" interference of real deployments.

Each stage is a frozen dataclass implementing the :class:`Impairment`
protocol (``apply(signal, rng, start_sample)`` plus dict round-tripping)
and registered under a ``kind`` name; :class:`ImpairmentPipeline` chains
stages in order. Pipelines hook into the stack at two points: per sender
(``ChannelParams.impairments``, applied inside ``Channel.apply`` — and
deliberately *excluded* from ``Channel.reconstruct``, because these
distortions are exactly what the receiver cannot model) and per capture
(``medium.synthesize(..., impairments=...)``, the AP's front end).
Scenario TOML files configure both through the ``[impairments]`` table
(see ``docs/scenarios.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.noise import db_to_linear

__all__ = [
    "Impairment",
    "ImpairmentPipeline",
    "RayleighFading",
    "RicianFading",
    "SfoDrift",
    "SoftClipper",
    "AdcQuantizer",
    "IqImbalance",
    "DcOffset",
    "CwTone",
    "BurstNoise",
    "available_impairments",
    "make_impairment",
]


@runtime_checkable
class Impairment(Protocol):
    """One distortion stage: a pure function of (signal, rng, time).

    Implementations are frozen dataclasses registered under a ``kind``
    name. ``apply`` must preserve the input length; all randomness must
    come from the passed ``rng`` (same seed, same output); and
    ``start_sample`` anchors any time-dependent term to the receiver's
    clock so a packet placed mid-capture sees a coherent process.
    """

    kind: ClassVar[str]

    def apply(self, signal: np.ndarray, rng: np.random.Generator,
              start_sample: int = 0) -> np.ndarray: ...

    @property
    def is_identity(self) -> bool: ...


_REGISTRY: dict[str, type] = {}


def _impairment(kind: str):
    """Register a stage class under its TOML ``kind`` name."""

    def register(cls):
        if kind in _REGISTRY:
            raise ConfigurationError(
                f"impairment kind {kind!r} already registered")
        cls.kind = kind
        _REGISTRY[kind] = cls
        return cls

    return register


def available_impairments() -> dict[str, str]:
    """``{kind: first docstring line}`` for every registered stage."""
    return {name: (cls.__doc__ or "").strip().splitlines()[0]
            for name, cls in sorted(_REGISTRY.items())}


def make_impairment(data: dict) -> "Impairment":
    """Build a stage from its dict form: ``{"kind": name, **params}``."""
    spec = dict(data)
    try:
        kind = spec.pop("kind")
    except KeyError:
        raise ConfigurationError(
            f"impairment stage needs a 'kind' key: {data!r}") from None
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown impairment kind {kind!r}; available: "
            f"{sorted(_REGISTRY)}") from None
    try:
        return cls(**spec)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for impairment {kind!r}: {exc}") from exc


def _stage_dict(stage: "Impairment") -> dict:
    out: dict[str, Any] = {"kind": stage.kind}
    out.update({f.name: getattr(stage, f.name) for f in fields(stage)})
    return out


# ----------------------------------------------------------------------
# Fading
# ----------------------------------------------------------------------
def _scatter_process(rng: np.random.Generator, n: int,
                     coherence_samples: int, block: bool) -> np.ndarray:
    """A unit-power complex Gaussian process with the given coherence.

    Draws independent CN(0, 1) values every ``coherence_samples`` samples
    and either holds them (block fading) or linearly interpolates between
    them (a cheap Doppler-like smooth evolution). Interpolation between
    independent draws loses power mid-segment, so the interpolated path is
    renormalized to keep E|g|² = 1 at every sample.
    """
    n_knots = int(np.ceil(n / coherence_samples)) + 1
    knots = (rng.standard_normal(n_knots)
             + 1j * rng.standard_normal(n_knots)) / np.sqrt(2.0)
    if block:
        return np.repeat(knots, coherence_samples)[:n]
    t = np.arange(n, dtype=float) / coherence_samples
    base = np.minimum(t.astype(int), n_knots - 2)
    frac = t - base
    g = (1.0 - frac) * knots[base] + frac * knots[base + 1]
    return g / np.sqrt((1.0 - frac) ** 2 + frac ** 2)


@dataclass(frozen=True)
@_impairment("rayleigh")
class RayleighFading:
    """Time-varying Rayleigh fading with coherence-time control.

    Multiplies the signal by a unit-average-power complex Gaussian
    process that decorrelates every ``coherence_samples`` samples —
    ``block=True`` holds the gain piecewise constant (block fading),
    ``block=False`` (default) interpolates smoothly between draws. Small
    coherence values move the channel *within* one packet, which is the
    regime that breaks quasi-static channel estimates.
    """

    coherence_samples: int = 512
    block: bool = False

    def __post_init__(self) -> None:
        if self.coherence_samples < 1:
            raise ConfigurationError("coherence_samples must be >= 1")

    @property
    def is_identity(self) -> bool:
        return False

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0:
            return x
        return x * _scatter_process(rng, x.size, self.coherence_samples,
                                    self.block)


@dataclass(frozen=True)
@_impairment("rician")
class RicianFading:
    """Rician fading: a fixed LOS ray plus Rayleigh scatter, unit power.

    ``k_factor_db`` is the LOS-to-scatter power ratio; large K approaches
    a static channel (with a random per-packet LOS phase), K → -inf
    approaches pure Rayleigh. Coherence semantics match
    :class:`RayleighFading`.
    """

    k_factor_db: float = 6.0
    coherence_samples: int = 512
    block: bool = False

    def __post_init__(self) -> None:
        if self.coherence_samples < 1:
            raise ConfigurationError("coherence_samples must be >= 1")

    @property
    def is_identity(self) -> bool:
        return False

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0:
            return x
        k = db_to_linear(self.k_factor_db)
        los = np.sqrt(k / (k + 1.0)) * np.exp(
            1j * rng.uniform(0.0, 2.0 * np.pi))
        scatter = _scatter_process(rng, x.size, self.coherence_samples,
                                   self.block)
        return x * (los + np.sqrt(1.0 / (k + 1.0)) * scatter)


# ----------------------------------------------------------------------
# Sampling-frequency-offset drift
# ----------------------------------------------------------------------
@dataclass(frozen=True)
@_impairment("sfo_drift")
class SfoDrift:
    """Receiver ADC clock skew: the sampling offset drifts over time.

    The receiver samples at rate ``1 + drift_ppm * 1e-6`` relative to the
    transmitter, so output sample ``n`` reads the input waveform at
    position ``n * (1 + δ)`` — a sampling offset that *accumulates*
    instead of the constant ``mu`` of :class:`ChannelParams`. Implemented
    as vectorized windowed-sinc interpolation (the same kernel family as
    :mod:`repro.phy.resample`); positions past the input end read zeros,
    as a real capture would trail off into noise-only samples.
    """

    drift_ppm: float = 0.0
    half_width: int = 4

    def __post_init__(self) -> None:
        if self.half_width < 1:
            raise ConfigurationError("half_width must be >= 1")
        if abs(self.drift_ppm) >= 1e6:
            raise ConfigurationError("|drift_ppm| must be < 1e6")

    @property
    def is_identity(self) -> bool:
        return self.drift_ppm == 0.0

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0 or self.is_identity:
            return x
        delta = self.drift_ppm * 1e-6
        # The drift accrued before this packet started still applies to
        # it: the ADC has been skewing since the capture began.
        n = np.arange(x.size, dtype=float)
        positions = n * (1.0 + delta) + start_sample * delta
        return _sinc_resample(x, positions, self.half_width)


def _sinc_resample(x: np.ndarray, positions: np.ndarray,
                   half_width: int) -> np.ndarray:
    """Evaluate *x* at fractional *positions* (vectorized windowed sinc).

    Matches :func:`repro.phy.resample.sinc_kernel`'s Hann window and DC
    normalization, but computes one kernel row per output sample in a
    single array pass instead of a per-position Python loop.
    """
    w = half_width
    base = np.floor(positions).astype(int)
    frac = positions - base
    k = np.arange(-w, w + 1, dtype=float)
    # x(base + frac) = x(base - (-frac)) -> kernel fraction is -frac.
    taps = np.sinc(k[None, :] - frac[:, None])
    taps *= np.hanning(2 * w + 3)[1:-1]
    taps /= taps.sum(axis=1, keepdims=True)
    pad_left = max(0, w - int(base.min()))
    pad_right = max(0, int(base.max()) + w + 1 - x.size)
    padded = np.concatenate([
        np.zeros(pad_left, dtype=complex), x,
        np.zeros(pad_right, dtype=complex),
    ])
    out = np.zeros(positions.size, dtype=complex)
    origin = base + pad_left
    for j, offset in enumerate(range(-w, w + 1)):
        out += taps[:, j] * padded[origin + offset]
    return out


# ----------------------------------------------------------------------
# Front-end nonlinearity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
@_impairment("clip")
class SoftClipper:
    """Rapp-model soft clipping: amplifier compression near saturation.

    ``|y| = |x| / (1 + (|x|/sat)^(2p))^(1/2p)`` with phase preserved —
    output magnitudes never exceed ``saturation``. Larger ``smoothness``
    approaches a hard limiter; ``saturation = inf`` disables the stage.
    """

    saturation: float = math.inf
    smoothness: float = 2.0

    def __post_init__(self) -> None:
        if self.saturation <= 0:
            raise ConfigurationError("saturation must be positive")
        if self.smoothness <= 0:
            raise ConfigurationError("smoothness must be positive")

    @property
    def is_identity(self) -> bool:
        return math.isinf(self.saturation)

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0 or self.is_identity:
            return x
        p2 = 2.0 * self.smoothness
        ratio = np.abs(x) / self.saturation
        return x / (1.0 + ratio ** p2) ** (1.0 / p2)


@dataclass(frozen=True)
@_impairment("quantize")
class AdcQuantizer:
    """ADC quantization: ENOB-bit mid-rise quantization of I and Q.

    Values beyond ``±full_scale`` clip to the outermost level, so output
    components are bounded by ``full_scale``. ``enob = inf`` disables the
    stage. Fractional ENOB is allowed (effective bits rarely land on an
    integer on real hardware).
    """

    enob: float = math.inf
    full_scale: float = 4.0

    def __post_init__(self) -> None:
        if self.enob < 1 and not math.isinf(self.enob):
            raise ConfigurationError("enob must be >= 1 (or inf)")
        if self.full_scale <= 0:
            raise ConfigurationError("full_scale must be positive")

    @property
    def is_identity(self) -> bool:
        return math.isinf(self.enob)

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0 or self.is_identity:
            return x
        step = 2.0 * self.full_scale / (2.0 ** self.enob)

        def quantize(v: np.ndarray) -> np.ndarray:
            q = (np.floor(v / step) + 0.5) * step
            return np.clip(q, -self.full_scale + step / 2.0,
                           self.full_scale - step / 2.0)

        return quantize(x.real) + 1j * quantize(x.imag)


@dataclass(frozen=True)
@_impairment("iq_imbalance")
class IqImbalance:
    """Receiver IQ imbalance: gain/phase mismatch between the I and Q arms.

    Standard image model ``y = mu * x + nu * conj(x)`` with
    ``mu = (1 + g e^{j phi}) / 2``, ``nu = (1 - g e^{j phi}) / 2`` where
    ``g`` is the linear gain imbalance and ``phi`` the phase error. Zero
    imbalance is an exact passthrough.
    """

    amplitude_db: float = 0.0
    phase_deg: float = 0.0

    @property
    def is_identity(self) -> bool:
        return self.amplitude_db == 0.0 and self.phase_deg == 0.0

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0 or self.is_identity:
            return x
        g = 10.0 ** (self.amplitude_db / 20.0)
        rot = g * np.exp(1j * np.deg2rad(self.phase_deg))
        mu = (1.0 + rot) / 2.0
        nu = (1.0 - rot) / 2.0
        return mu * x + nu * np.conj(x)


@dataclass(frozen=True)
@_impairment("dc_offset")
class DcOffset:
    """Receiver DC offset: a constant complex bias on every sample."""

    dc_i: float = 0.0
    dc_q: float = 0.0

    @property
    def is_identity(self) -> bool:
        return self.dc_i == 0.0 and self.dc_q == 0.0

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0 or self.is_identity:
            return x
        return x + (self.dc_i + 1j * self.dc_q)


# ----------------------------------------------------------------------
# Interferers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
@_impairment("cw_tone")
class CwTone:
    """A narrowband continuous-wave interferer (e.g. a leaking oscillator).

    Adds ``A e^{j(2 pi f n + phase)}`` where ``power_db`` is the tone
    power relative to unit noise power, ``freq`` its frequency in
    cycles/sample and ``phase`` its start phase (drawn uniformly from the
    trial RNG when ``None``, wired to the receiver clock via
    ``start_sample`` either way). ``power_db = -inf`` disables the stage.
    """

    power_db: float = 0.0
    freq: float = 0.125
    phase: float | None = None

    def __post_init__(self) -> None:
        if abs(self.freq) >= 0.5:
            raise ConfigurationError(
                "tone freq is in cycles/sample and must satisfy |f| < 0.5")

    @property
    def is_identity(self) -> bool:
        return math.isinf(self.power_db) and self.power_db < 0

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0 or self.is_identity:
            return x
        phase = self.phase if self.phase is not None \
            else float(rng.uniform(0.0, 2.0 * np.pi))
        amplitude = np.sqrt(db_to_linear(self.power_db))
        n = np.arange(start_sample, start_sample + x.size, dtype=float)
        return x + amplitude * np.exp(1j * (2.0 * np.pi * self.freq * n
                                            + phase))


@dataclass(frozen=True)
@_impairment("burst_noise")
class BurstNoise:
    """Bursty on/off wideband interference (e.g. a frequency-hopping
    neighbour landing in-band).

    Time is divided into ``burst_samples``-long slots; each slot is
    independently *on* with probability ``duty_cycle``, and on-slots add
    circularly-symmetric Gaussian noise of power ``power_db`` relative to
    unit noise power. ``duty_cycle = 0`` disables the stage.
    """

    power_db: float = 3.0
    duty_cycle: float = 0.2
    burst_samples: int = 200

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in [0, 1]")
        if self.burst_samples < 1:
            raise ConfigurationError("burst_samples must be >= 1")

    @property
    def is_identity(self) -> bool:
        return self.duty_cycle == 0.0 \
            or (math.isinf(self.power_db) and self.power_db < 0)

    def apply(self, signal, rng, start_sample: int = 0) -> np.ndarray:
        x = np.asarray(signal, dtype=complex).ravel()
        if x.size == 0 or self.is_identity:
            return x
        n_slots = int(np.ceil(x.size / self.burst_samples))
        on = rng.uniform(size=n_slots) < self.duty_cycle
        gate = np.repeat(on, self.burst_samples)[:x.size]
        scale = np.sqrt(db_to_linear(self.power_db) / 2.0)
        noise = scale * (rng.standard_normal(x.size)
                         + 1j * rng.standard_normal(x.size))
        return x + gate * noise


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImpairmentPipeline:
    """An ordered chain of impairment stages applied left to right.

    Frozen (hashable, picklable — it rides inside ``ChannelParams`` and
    crosses the Monte-Carlo runner's process boundary) and loadable from
    the list-of-dicts form the ``[impairments]`` TOML table produces.
    """

    stages: tuple = ()

    def __post_init__(self) -> None:
        stages = tuple(self.stages)
        for stage in stages:
            if not isinstance(stage, Impairment):
                raise ConfigurationError(
                    f"not an impairment stage: {stage!r}")
        object.__setattr__(self, "stages", stages)

    @classmethod
    def from_specs(cls, specs) -> "ImpairmentPipeline":
        """Build from a list of ``{"kind": ..., **params}`` dicts."""
        return cls(tuple(make_impairment(spec) for spec in specs))

    def to_specs(self) -> list[dict]:
        """The list-of-dicts form; ``from_specs(to_specs())`` round-trips."""
        return [_stage_dict(stage) for stage in self.stages]

    @property
    def is_identity(self) -> bool:
        return all(stage.is_identity for stage in self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def apply(self, signal, rng: np.random.Generator,
              start_sample: int = 0) -> np.ndarray:
        """Run the signal through every stage in order."""
        out = np.asarray(signal, dtype=complex).ravel()
        for stage in self.stages:
            if not stage.is_identity:
                out = stage.apply(out, rng, start_sample)
        return out
