"""Inter-symbol interference: multipath FIR channels and their inversion.

§3.1.3: neighbouring symbols affect each other; receivers run a linear
equalizer to undo it. §4.2.4(d): when *re-encoding* a chunk, ZigZag must
re-apply those distortions — "we can take the filter from the decoder and
invert it". We model ISI as a short complex FIR filter and provide a
regularized inverse so either direction (distort / equalize) is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["IsiFilter", "default_isi_taps", "invert_fir"]


def default_isi_taps(strength: float = 0.15,
                     samples_per_symbol: int = 2) -> np.ndarray:
    """A two-sided multipath profile: pre-echo + main + post-echoes.

    ``strength`` scales the echo amplitudes; 0 yields a pure delta. Echoes
    sit at multiples of the symbol duration — sub-symbol delay spread is
    largely absorbed by the matched filter and does not cause genuine
    inter-*symbol* interference.
    """
    if strength < 0:
        raise ConfigurationError("ISI strength must be non-negative")
    sps = samples_per_symbol
    taps = np.zeros(3 * sps + 1, dtype=complex)
    taps[0] = 0.35 * strength * np.exp(1j * 0.4)        # -1 symbol
    taps[sps] = 1.0                                      # main
    taps[2 * sps] = 0.8 * strength * np.exp(-1j * 0.9)   # +1 symbol
    taps[3 * sps] = 0.25 * strength * np.exp(1j * 1.7)   # +2 symbols
    return taps / np.abs(taps).max()


def invert_fir(taps, length: int = 33, regularization: float = 1e-3) -> np.ndarray:
    """Truncated inverse of an FIR filter via regularized FFT division.

    Returns *length* taps ``g`` such that ``taps * g ≈ delta`` (centered).
    The regularization keeps the inverse bounded when the channel has
    spectral nulls.
    """
    h = np.asarray(taps, dtype=complex).ravel()
    if h.size == 0:
        raise ConfigurationError("cannot invert an empty filter")
    if length < h.size:
        raise ConfigurationError("inverse length must be >= filter length")
    n_fft = 4 * int(2 ** np.ceil(np.log2(length + h.size)))
    spectrum = np.fft.fft(h, n_fft)
    inv_spectrum = np.conj(spectrum) / (np.abs(spectrum) ** 2 + regularization)
    impulse = np.fft.ifft(inv_spectrum)
    # h's main tap sits at circular delay +main, so the inverse response
    # concentrates around circular delay -main; window the extraction
    # there so the returned taps hold the energy regardless of where the
    # input filter's cursor was.
    main = int(np.argmax(np.abs(h)))
    half = length // 2
    indices = (np.arange(length) - half - main) % n_fft
    return impulse[indices]


@dataclass
class IsiFilter:
    """A complex FIR channel with main-tap-aligned "same"-length filtering.

    The main tap (largest magnitude) is treated as the zero-delay reference,
    so ``apply`` preserves alignment between input and output symbol
    indices — essential for ZigZag's subtraction step.
    """

    taps: np.ndarray
    main_tap: int = field(init=False)

    def __post_init__(self) -> None:
        taps = np.asarray(self.taps, dtype=complex).ravel()
        if taps.size == 0:
            raise ConfigurationError("ISI filter needs at least one tap")
        object.__setattr__(self, "taps", taps)
        object.__setattr__(self, "main_tap", int(np.argmax(np.abs(taps))))

    @classmethod
    def identity(cls) -> "IsiFilter":
        return cls(np.array([1.0 + 0j]))

    @property
    def is_identity(self) -> bool:
        return self.taps.size == 1 and self.taps[0] == 1.0

    def apply(self, signal) -> np.ndarray:
        """Filter *signal*, keeping length and main-tap alignment."""
        sig = np.asarray(signal, dtype=complex).ravel()
        if sig.size == 0:
            return sig
        full = np.convolve(sig, self.taps)
        start = self.main_tap
        return full[start:start + sig.size]

    def inverse(self, length: int = 33,
                regularization: float = 1e-3) -> "IsiFilter":
        """The (truncated, regularized) equalizer undoing this channel."""
        return IsiFilter(invert_fir(self.taps, length, regularization))
