"""The shared medium: superimposing packets into (possibly colliding) captures.

When Alice and Bob transmit concurrently their signals add at the AP
(Ch. 3): ``y[n] = yA[n] + yB[n] + w[n]``. This module synthesizes such
captures from per-sender symbol streams, channels and arrival offsets, and
is the workhorse behind every collision experiment in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.channel import Channel, ChannelParams
from repro.phy.impairments import ImpairmentPipeline
from repro.phy.noise import awgn

__all__ = ["Transmission", "Capture", "channel_waveform", "synthesize",
           "synthesize_batch"]


@dataclass(frozen=True)
class Transmission:
    """One packet on the air: its waveform, channel, and arrival offset.

    ``samples`` is the pulse-shaped baseband waveform; ``offset`` the index
    (in receiver samples) at which its first sample lands in the capture
    buffer. ``symbol0`` records where symbol 0's pulse centre sits (offset +
    shaper delay) — ground truth that oracle baselines may consult.
    """

    samples: np.ndarray
    params: ChannelParams
    offset: int
    label: str = ""
    symbol0: int = 0
    n_symbols: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ConfigurationError("transmission offset must be >= 0")
        arr = np.asarray(self.samples, dtype=complex).ravel()
        if arr.size == 0:
            raise ConfigurationError("transmission carries no samples")
        object.__setattr__(self, "samples", arr)

    @classmethod
    def from_symbols(cls, symbols, shaper, params: ChannelParams,
                     offset: int, label: str = "") -> "Transmission":
        """Shape a symbol stream and place it at *offset* samples."""
        sym = np.asarray(symbols, dtype=complex).ravel()
        return cls(
            samples=shaper.shape(sym),
            params=params,
            offset=offset,
            label=label,
            symbol0=offset + shaper.delay,
            n_symbols=sym.size,
        )

    @property
    def end(self) -> int:
        return self.offset + self.samples.size


@dataclass
class Capture:
    """A received buffer plus ground truth about what it contains.

    The ground truth (`transmissions`, `clean_components`) is never used by
    the receivers — it exists for tests and for oracle baselines like the
    Collision-Free Scheduler.
    """

    samples: np.ndarray
    noise_power: float
    transmissions: list[Transmission]
    clean_components: list[np.ndarray] = field(default_factory=list)

    @property
    def n_senders(self) -> int:
        return len(self.transmissions)

    @property
    def is_collision(self) -> bool:
        return len(self.transmissions) > 1


def channel_waveform(transmission: Transmission,
                     rng: np.random.Generator) -> np.ndarray:
    """One transmission's waveform as the AP receives it (noise-free).

    Draws this transmission's channel realization (phase noise, tx EVM,
    per-sender impairments) from *rng*, anchored at the transmission's
    arrival offset so time-indexed impairments (SFO drift, fading) stay
    consistent with its position on the air. Shared by the one-shot
    :func:`synthesize` and the streaming :class:`repro.link.ContinuousAir`.
    """
    channel = Channel(transmission.params, rng)
    return channel.apply(transmission.samples,
                         start_sample=transmission.offset)


def synthesize(transmissions: list[Transmission], noise_power: float,
               rng: np.random.Generator, *, tail: int = 16,
               leading: int = 0,
               impairments: ImpairmentPipeline | None = None) -> Capture:
    """Build the AP's received buffer from overlapping transmissions.

    Parameters
    ----------
    transmissions:
        Packets with their channels and arrival offsets.
    noise_power:
        Complex AWGN power added once over the summed signal.
    tail, leading:
        Extra noise-only samples appended/prepended, as a real capture
        would include (and so correlation can run off the packet ends).
    impairments:
        Optional capture-level :class:`ImpairmentPipeline` — the AP's
        front end (clipping, quantization, IQ imbalance, DC offset) and
        external interferers. Applied once over the summed buffer, after
        AWGN, so it distorts every sender jointly; ``clean_components``
        stay pre-front-end ground truth.
    """
    if not transmissions:
        raise ConfigurationError("need at least one transmission")
    total = max(t.end for t in transmissions) + tail + leading
    buffer = np.zeros(total, dtype=complex)
    components = []
    for t in transmissions:
        waveform = channel_waveform(t, rng)
        start = leading + t.offset
        buffer[start:start + waveform.size] += waveform
        component = np.zeros(total, dtype=complex)
        component[start:start + waveform.size] = waveform
        components.append(component)
    buffer = buffer + awgn(total, noise_power, rng)
    if impairments is not None and not impairments.is_identity:
        buffer = impairments.apply(buffer, rng, 0)
    shifted = [
        Transmission(t.samples, t.params, t.offset + leading, t.label,
                     t.symbol0 + leading, t.n_symbols)
        for t in transmissions
    ]
    return Capture(buffer, noise_power, shifted, components)


def synthesize_batch(batch: list[list[Transmission]], noise_power: float,
                     rngs, *, tail: int = 16, leading: int = 0,
                     impairments: ImpairmentPipeline | None = None,
                     ) -> tuple[np.ndarray, list[Capture]]:
    """Synthesize N same-geometry trials into one ``(N, total)`` stack.

    ``batch[i]`` is trial *i*'s transmission list and ``rngs[i]`` its
    generator. Capture *i* is sample-identical to
    ``synthesize(batch[i], noise_power, rngs[i], ...)``: each trial's
    randomness comes from its own rng in the scalar draw order (channels
    in transmission order, then AWGN, then the capture front end), so a
    batched run never perturbs per-trial seed streams.

    Every trial must share the capture geometry — the same number of
    transmissions with slot-wise equal offsets and waveform lengths (lane
    content, channels and noise differ freely). The channel and
    impairment draws are inherently per-rng and stay as per-trial loops;
    the accumulation, noise add and output buffers are stacked, and each
    returned capture's ``samples`` is a zero-copy row view of the stack
    that downstream batched DSP consumes directly.
    """
    if not batch:
        raise ConfigurationError("need at least one trial")
    n = len(batch)
    if len(rngs) != n:
        raise ConfigurationError("need one rng per trial")
    first = batch[0]
    if not first:
        raise ConfigurationError("need at least one transmission")
    for trial in batch[1:]:
        if len(trial) != len(first):
            raise ConfigurationError(
                "batched synthesis needs a uniform transmission count")
        for t, ref in zip(trial, first):
            if t.offset != ref.offset or t.samples.size != ref.samples.size:
                raise ConfigurationError(
                    "batched synthesis needs slot-wise equal placement; "
                    "group trials by geometry first")
    total = max(t.end for t in first) + tail + leading
    stacked = np.zeros((n, total), dtype=complex)
    components: list[list[np.ndarray]] = [[] for _ in range(n)]
    for slot, ref in enumerate(first):
        start = leading + ref.offset
        size = ref.samples.size
        waveforms = np.stack([
            channel_waveform(trial[slot], rngs[i])
            for i, trial in enumerate(batch)
        ])
        stacked[:, start:start + size] += waveforms
        for i in range(n):
            component = np.zeros(total, dtype=complex)
            component[start:start + size] = waveforms[i]
            components[i].append(component)
    stacked += np.stack([awgn(total, noise_power, rng) for rng in rngs])
    if impairments is not None and not impairments.is_identity:
        for i in range(n):
            stacked[i] = impairments.apply(stacked[i], rngs[i], 0)
    captures = []
    for i, trial in enumerate(batch):
        shifted = [
            Transmission(t.samples, t.params, t.offset + leading, t.label,
                         t.symbol0 + leading, t.n_symbols)
            for t in trial
        ]
        captures.append(Capture(stacked[i], noise_power, shifted,
                                components[i]))
    return stacked, captures
