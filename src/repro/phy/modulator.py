"""Bit-stream <-> symbol-stream conversion on top of a constellation.

The :class:`Modulator` is the "standard encoder/decoder" that ZigZag uses as
a black box (§4.2.3a): it pads bit streams to a whole number of symbols,
produces complex baseband symbols at one sample per symbol, and demodulates
with either hard decisions or externally-supplied soft symbol estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.constellation import Constellation, get_constellation
from repro.utils.bits import as_bit_array

__all__ = ["Modulator"]


@dataclass(frozen=True)
class Modulator:
    """Maps framed bits to unit-energy complex symbols and back.

    Parameters
    ----------
    constellation:
        A :class:`Constellation` instance or its registry name.
    """

    constellation: Constellation

    @classmethod
    def from_name(cls, name: str) -> "Modulator":
        return cls(get_constellation(name))

    @property
    def bits_per_symbol(self) -> int:
        return self.constellation.bits_per_symbol

    def symbol_count(self, n_bits: int) -> int:
        """Number of symbols needed to carry *n_bits* (with padding)."""
        if n_bits < 0:
            raise ConfigurationError("n_bits must be non-negative")
        k = self.bits_per_symbol
        return (n_bits + k - 1) // k

    def pad_bits(self, bits) -> np.ndarray:
        """Zero-pad *bits* up to a whole number of symbols."""
        arr = as_bit_array(bits)
        k = self.bits_per_symbol
        remainder = arr.size % k
        if remainder == 0:
            return arr
        return np.concatenate([arr, np.zeros(k - remainder, dtype=np.uint8)])

    def modulate(self, bits) -> np.ndarray:
        """Bits -> complex symbols (padding with zero bits if needed)."""
        return self.constellation.modulate(self.pad_bits(bits))

    def demodulate(self, symbols, n_bits: int | None = None) -> np.ndarray:
        """Symbols -> bits; optionally truncate padding to *n_bits*."""
        bits = self.constellation.demodulate(symbols)
        if n_bits is not None:
            if n_bits > bits.size:
                raise ConfigurationError(
                    f"requested {n_bits} bits but only {bits.size} demodulated"
                )
            bits = bits[:n_bits]
        return bits

    def remodulate(self, symbols) -> np.ndarray:
        """Snap noisy symbols to the constellation (decision feedback)."""
        return self.constellation.slice_symbols(symbols)
