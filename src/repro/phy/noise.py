"""AWGN generation and SNR bookkeeping.

All signals in the library are unit-average-energy at the transmitter, so
"SNR" always means received signal power (|H|^2 for a unit-power signal)
over complex noise power. Helpers here convert between dB/linear and
SNR/EbN0 forms so experiment code never hand-rolls the formulas.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "awgn",
    "signal_power",
    "snr_db",
    "noise_power_for_snr_db",
    "db_to_linear",
    "linear_to_db",
    "ebn0_db_to_snr_db",
    "snr_db_to_ebn0_db",
]


def db_to_linear(value_db: float) -> float:
    """Power ratio in dB -> linear."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Linear power ratio -> dB."""
    if value <= 0:
        raise ConfigurationError("cannot take dB of a non-positive power")
    return 10.0 * math.log10(value)


def signal_power(signal) -> float:
    """Mean |x|^2 of a complex signal."""
    arr = np.asarray(signal, dtype=complex)
    if arr.size == 0:
        return 0.0
    return float(np.mean(np.abs(arr) ** 2))


def snr_db(signal, noise) -> float:
    """Empirical SNR in dB between a signal array and a noise array."""
    return linear_to_db(signal_power(signal) / signal_power(noise))


def noise_power_for_snr_db(snr_value_db: float, signal_pwr: float = 1.0) -> float:
    """Complex noise power sigma^2 that yields the requested SNR."""
    if signal_pwr <= 0:
        raise ConfigurationError("signal power must be positive")
    return signal_pwr / db_to_linear(snr_value_db)


def awgn(n: int, noise_power: float, rng: np.random.Generator) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise, total power *noise_power*.

    Each of the I and Q components carries half the power.
    """
    if noise_power < 0:
        raise ConfigurationError("noise power must be non-negative")
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    scale = math.sqrt(noise_power / 2.0)
    return scale * (rng.standard_normal(n) + 1j * rng.standard_normal(n))


def ebn0_db_to_snr_db(ebn0_db: float, bits_per_symbol: int) -> float:
    """Eb/N0 (dB) -> per-symbol SNR (dB) at one sample per symbol."""
    if bits_per_symbol <= 0:
        raise ConfigurationError("bits_per_symbol must be positive")
    return ebn0_db + linear_to_db(bits_per_symbol)


def snr_db_to_ebn0_db(snr_value_db: float, bits_per_symbol: int) -> float:
    """Per-symbol SNR (dB) -> Eb/N0 (dB)."""
    if bits_per_symbol <= 0:
        raise ConfigurationError("bits_per_symbol must be positive")
    return snr_value_db - linear_to_db(bits_per_symbol)
