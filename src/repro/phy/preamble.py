"""Pseudo-random packet preambles (§4.2.1).

Every 802.11 packet starts with a known preamble; ZigZag's collision
detector relies on the preamble being "a pseudo-random sequence that is
independent of shifted versions of itself, as well as Alice's and Bob's
data". We generate preambles from a maximal-length LFSR (m-sequence), which
has exactly this property: its periodic autocorrelation is L at lag 0 and
-1 elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Preamble", "default_preamble", "lfsr_sequence"]

# Primitive polynomial taps (Fibonacci LFSR) by register length.
_PRIMITIVE_TAPS = {
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
}


def lfsr_sequence(n_bits: int, order: int = 7,
                  seed_state: int = 0b1010101) -> np.ndarray:
    """Generate *n_bits* of a maximal-length LFSR sequence of given *order*."""
    if order not in _PRIMITIVE_TAPS:
        raise ConfigurationError(
            f"unsupported LFSR order {order}; choose from {sorted(_PRIMITIVE_TAPS)}"
        )
    if n_bits <= 0:
        raise ConfigurationError("n_bits must be positive")
    state = seed_state & ((1 << order) - 1)
    if state == 0:
        raise ConfigurationError("LFSR seed state must be non-zero")
    taps = _PRIMITIVE_TAPS[order]
    mask = (1 << order) - 1
    out = np.empty(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        out[i] = (state >> (order - 1)) & 1
        feedback = 0
        for t in taps:
            feedback ^= (state >> (t - 1)) & 1
        state = ((state << 1) | feedback) & mask
    return out


@dataclass(frozen=True)
class Preamble:
    """A known BPSK preamble: ±1 complex symbols derived from a PN sequence.

    The preamble is always BPSK regardless of the payload modulation, as in
    802.11 where the PLCP preamble/header are sent at the base rate.
    """

    bits: np.ndarray
    symbols: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        bits = np.asarray(self.bits, dtype=np.uint8)
        if bits.ndim != 1 or bits.size == 0:
            raise ConfigurationError("preamble bits must be a non-empty 1-D array")
        object.__setattr__(self, "bits", bits)
        symbols = (2.0 * bits.astype(float) - 1.0).astype(complex)
        object.__setattr__(self, "symbols", symbols)

    @classmethod
    def from_length(cls, length: int, order: int = 7,
                    seed_state: int = 0b1010101) -> "Preamble":
        """Build a preamble of *length* symbols from an m-sequence."""
        return cls(lfsr_sequence(length, order=order, seed_state=seed_state))

    def __len__(self) -> int:
        return self.symbols.size

    @property
    def energy(self) -> float:
        """Sum of |s[k]|^2 over the preamble — the correlation peak scale."""
        return float(np.sum(np.abs(self.symbols) ** 2))

    def correlate_at(self, signal: np.ndarray, position: int,
                     freq_offset_cycles_per_sample: float = 0.0) -> complex:
        """The paper's Γ'(Δ): preamble correlation at one alignment.

        Computes ``sum_k s*[k] y[k+Δ] e^{-j 2π k δf T}`` — the frequency-
        offset-compensated correlation of §4.2.1.
        """
        length = len(self)
        segment = signal[position:position + length]
        if segment.size < length:
            raise ConfigurationError(
                f"signal too short for correlation at position {position}"
            )
        k = np.arange(length)
        rotator = np.exp(-2j * np.pi * k * freq_offset_cycles_per_sample)
        return complex(np.sum(np.conj(self.symbols) * segment * rotator))


def default_preamble(length: int = 32) -> Preamble:
    """The library-wide default preamble (32 symbols, like the paper's 32-bit)."""
    return Preamble.from_length(length)
