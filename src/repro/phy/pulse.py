"""Root-raised-cosine pulse shaping and matched-filter symbol sampling.

The paper's GNURadio configuration runs 2 samples per symbol (§5.1c); we do
the same. Symbols are shaped with a unit-energy RRC pulse at ``sps`` samples
per symbol; the receiver recovers symbol-rate soft values by correlating the
received samples against the same pulse centred on each (possibly
fractional) symbol instant — this single operation is simultaneously the
matched filter, the downsampler, and the §4.2.3(b) band-limited interpolator
("summation over few symbols in the neighborhood of n").

Because the shaped signal occupies only ``(1 + beta) / (2 sps)`` of the
sample-rate band, fractional delays are far inside Nyquist and short
kernels are accurate — unlike critically-sampled streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["rrc_function", "rrc_taps", "PulseShaper", "MatchedSampler"]


def rrc_function(t, beta: float) -> np.ndarray:
    """Continuous root-raised-cosine impulse response h(t), T = 1 symbol.

    Handles the removable singularities at t = 0 and t = ±1/(4 beta).
    Unnormalized (normalize discrete taps instead).
    """
    if not 0.0 < beta < 1.0:
        raise ConfigurationError("RRC roll-off beta must lie in (0, 1)")
    t = np.asarray(t, dtype=float)
    out = np.empty_like(t)
    eps = 1e-9

    at_zero = np.abs(t) < eps
    out[at_zero] = 1.0 - beta + 4.0 * beta / np.pi

    singular = np.abs(np.abs(t) - 1.0 / (4.0 * beta)) < eps
    out[singular] = (beta / np.sqrt(2.0)) * (
        (1.0 + 2.0 / np.pi) * np.sin(np.pi / (4.0 * beta))
        + (1.0 - 2.0 / np.pi) * np.cos(np.pi / (4.0 * beta))
    )

    regular = ~(at_zero | singular)
    tr = t[regular]
    numerator = (np.sin(np.pi * tr * (1.0 - beta))
                 + 4.0 * beta * tr * np.cos(np.pi * tr * (1.0 + beta)))
    denominator = np.pi * tr * (1.0 - (4.0 * beta * tr) ** 2)
    out[regular] = numerator / denominator
    return out


def rrc_taps(sps: int = 2, span: int = 6, beta: float = 0.35) -> np.ndarray:
    """Discrete unit-energy RRC taps spanning ±span symbols."""
    if sps < 1 or span < 1:
        raise ConfigurationError("sps and span must be positive")
    n = np.arange(-span * sps, span * sps + 1)
    taps = rrc_function(n / sps, beta)
    return taps / np.sqrt(np.sum(taps ** 2))


@dataclass(frozen=True)
class PulseShaper:
    """Upsample-and-filter transmitter pulse shaping.

    ``shape(symbols)`` returns the waveform with symbol k centred at sample
    ``delay + k*sps`` — callers use :attr:`delay` to convert between symbol
    indices and sample positions.
    """

    sps: int = 2
    span: int = 6
    beta: float = 0.35
    taps: np.ndarray = field(init=False, repr=False)
    _scale: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        taps = rrc_taps(self.sps, self.span, self.beta)
        object.__setattr__(self, "taps", taps)
        # Scale between the continuous prototype and unit-energy taps, used
        # by MatchedSampler to build fractional-offset kernels consistently.
        raw = rrc_function(
            np.arange(-self.span * self.sps, self.span * self.sps + 1)
            / self.sps, self.beta)
        object.__setattr__(self, "_scale",
                           1.0 / np.sqrt(float(np.sum(raw ** 2))))
        object.__setattr__(self, "_kernel_cache", {})

    @property
    def delay(self) -> int:
        """Group delay: sample index of symbol 0's pulse centre."""
        return self.span * self.sps

    def waveform_length(self, n_symbols: int) -> int:
        if n_symbols < 1:
            raise ConfigurationError("need at least one symbol")
        return (n_symbols - 1) * self.sps + 2 * self.delay + 1

    def shape(self, symbols) -> np.ndarray:
        """Symbols -> complex baseband waveform at ``sps`` samples/symbol."""
        d = np.asarray(symbols, dtype=complex).ravel()
        if d.size == 0:
            raise ConfigurationError("cannot shape an empty symbol stream")
        upsampled = np.zeros((d.size - 1) * self.sps + 1, dtype=complex)
        upsampled[::self.sps] = d
        return np.convolve(upsampled, self.taps)

    def kernel_at(self, fraction: float) -> np.ndarray:
        """Matched-filter taps centred ``fraction`` samples off-grid.

        ``kernel_at(f)[j]`` is h((j - delay + f)/sps): correlating the
        received samples against this kernel evaluates the matched filter
        output at position ``center - f``; callers pass ``f = -frac`` to
        sample *later* than the integer grid.

        Kernels are cached per fraction: a stream decoder re-samples at the
        same sub-sample offset for every chunk of a packet, and evaluating
        the RRC prototype dominates ``MatchedSampler.sample`` otherwise.
        """
        # int() quantization: same 1e-12 merge grain as round(f, 12) at a
        # fraction of the cost (this lookup runs once per sample() call).
        key = int(fraction * 1e12)
        kernel = self._kernel_cache.get(key)
        if kernel is None:
            if len(self._kernel_cache) >= 4096:
                # Shapers are shared across Monte-Carlo trials and every
                # trial draws new sub-sample offsets; bound the cache so
                # million-trial runs cannot grow it without limit.
                self._kernel_cache.clear()
            j = np.arange(-self.delay, self.delay + 1)
            kernel = rrc_function(
                (j + fraction) / self.sps, self.beta) * self._scale
            kernel.setflags(write=False)
            self._kernel_cache[key] = kernel
        return kernel


@dataclass(frozen=True)
class MatchedSampler:
    """Matched filter + fractional symbol-instant sampler (one operation)."""

    shaper: PulseShaper

    def sample(self, signal, start: float, count: int) -> np.ndarray:
        """Matched-filter outputs at ``start + k*sps`` for k = 0..count-1.

        *start* is the (fractional) sample position of symbol 0's pulse
        centre in *signal*. For a unit-gain channel the outputs equal the
        transmitted symbols plus white noise of the original sample-domain
        variance (the RRC pair is Nyquist).
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        y = np.asarray(signal, dtype=complex).ravel()
        if count == 0:
            return np.zeros(0, dtype=complex)
        sps = self.shaper.sps
        delay = self.shaper.delay
        base = math.floor(start)
        frac = start - base
        kernel = self.shaper.kernel_at(-frac)
        first = base - delay
        last = base + (count - 1) * sps + delay
        pad_left = max(0, -first)
        pad_right = max(0, last + 1 - y.size)
        if pad_left or pad_right:
            padded = np.concatenate([
                np.zeros(pad_left, dtype=complex), y,
                np.zeros(pad_right, dtype=complex),
            ])
        else:
            padded = y
        origin = first + pad_left
        # Every output symbol reads the same kernel against a window that
        # advances by `sps` samples, i.e. a matrix-vector product against a
        # strided view of the padded buffer — one call, no Python per-tap
        # loop, no data copied. (Direct np.ndarray construction rather
        # than as_strided: this runs once per decoded chunk and the
        # wrapper overhead is measurable.)
        stride = padded.strides[0]
        windows = np.ndarray(
            (count, kernel.size), dtype=padded.dtype, buffer=padded,
            offset=origin * stride, strides=(sps * stride, stride))
        return windows @ kernel
