"""Band-limited (windowed-sinc) interpolation for fractional sampling offsets.

§4.2.3(b) of the paper: the AP must reconstruct a decoded chunk *as sampled
by its own ADC*, i.e. interpolate Alice's symbol stream at positions shifted
by the sampling offset μ. "Nyquist says that under these conditions, one can
interpolate the signal at any discrete position with complete accuracy ...
In practice, the above equation is approximated by taking the summation over
few symbols (about 8 symbols) in the neighborhood of n." We use a Hann-
windowed sinc kernel with a configurable half-width (default 4 → 8 taps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "sinc_kernel",
    "sinc_interpolate",
    "sinc_interpolate_uniform",
    "FractionalDelay",
]


def sinc_kernel(fraction: float, half_width: int = 4) -> np.ndarray:
    """Windowed-sinc taps evaluating x(n - fraction) from x[n-W..n+W].

    Returns ``2*half_width + 1`` taps ``h[k]`` (k = -W..W) such that
    ``sum_k h[k] * x[n + k] ≈ x(n - fraction)``.
    """
    if half_width < 1:
        raise ConfigurationError("half_width must be >= 1")
    k = np.arange(-half_width, half_width + 1, dtype=float)
    # x(n - f) = sum_k x[n + k] sinc(k + f)
    taps = np.sinc(k + fraction)
    window = np.hanning(2 * half_width + 3)[1:-1]  # avoid zero endpoints
    taps = taps * window
    # Normalize DC gain so a constant signal passes through unchanged.
    return taps / np.sum(taps)


def sinc_interpolate(signal, positions, half_width: int = 4) -> np.ndarray:
    """Evaluate *signal* at arbitrary (fractional) sample *positions*.

    Positions outside the support use zero-padding, matching how a packet's
    samples are embedded in a longer received buffer.
    """
    sig = np.asarray(signal, dtype=complex).ravel()
    pos = np.asarray(positions, dtype=float).ravel()
    out = np.zeros(pos.size, dtype=complex)
    padded = np.concatenate([
        np.zeros(half_width + 1, dtype=complex),
        sig,
        np.zeros(half_width + 1, dtype=complex),
    ])
    base = np.floor(pos).astype(int)
    frac = pos - base
    for i in range(pos.size):
        # x(base + frac) = x(base - (-frac)) -> kernel fraction is -frac.
        taps = sinc_kernel(-frac[i], half_width)
        center = base[i] + half_width + 1
        window = padded[center - half_width:center + half_width + 1]
        out[i] = np.dot(taps, window)
    return out


def sinc_interpolate_uniform(signal, start: float, count: int,
                             half_width: int = 4) -> np.ndarray:
    """Evaluate *signal* at ``start, start+1, ..., start+count-1``.

    Fast path for the common case of a uniformly-spaced grid: every
    position shares the same fractional part, so a single kernel serves all
    of them and the whole operation reduces to a strided dot product.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    sig = np.asarray(signal, dtype=complex).ravel()
    if count == 0:
        return np.zeros(0, dtype=complex)
    base = int(np.floor(start))
    frac = start - base
    # x(base + frac) = x(base - (-frac)) -> kernel fraction is -frac.
    taps = sinc_kernel(-frac, half_width)
    w = half_width
    pad_left = max(0, w - base)
    pad_right = max(0, (base + count - 1 + w + 1) - sig.size)
    padded = np.concatenate([
        np.zeros(pad_left, dtype=complex), sig,
        np.zeros(pad_right, dtype=complex),
    ])
    origin = base + pad_left
    out = np.zeros(count, dtype=complex)
    for k, tap in zip(range(-w, w + 1), taps):
        out += tap * padded[origin + k: origin + k + count]
    return out


@dataclass
class FractionalDelay:
    """A fixed fractional delay applied as an FIR filter.

    ``apply(x)[n] ≈ x(n - delay)`` — positive delays shift the waveform
    *later* in time. Output has the same length as the input ("same"
    convolution), so the delay element composes cleanly inside
    :class:`repro.phy.channel.Channel`.
    """

    delay: float
    half_width: int = 4
    _taps: np.ndarray = field(init=False, repr=False)
    _int_delay: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._int_delay = int(np.floor(self.delay))
        frac = self.delay - self._int_delay
        self._taps = sinc_kernel(frac, self.half_width)

    def apply(self, signal) -> np.ndarray:
        sig = np.asarray(signal, dtype=complex).ravel()
        if sig.size == 0:
            return sig
        # Fractional part via windowed-sinc FIR:
        # out[n] = sum_k taps[k+W] * x[n + k], i.e. a correlation — one
        # "same"-style convolution against the flipped taps.
        w = self.half_width
        out = np.convolve(sig, self._taps[::-1])[w: w + sig.size]
        # Integer part: shift right (later) by int_delay samples.
        if self._int_delay > 0:
            out = np.concatenate([
                np.zeros(self._int_delay, dtype=complex),
                out[:-self._int_delay] if self._int_delay < out.size
                else np.zeros(0, dtype=complex),
            ])[:sig.size]
        elif self._int_delay < 0:
            shift = -self._int_delay
            out = np.concatenate([
                out[shift:], np.zeros(min(shift, sig.size), dtype=complex)
            ])[:sig.size]
        return out
