"""Packet synchronization against the pulse-shaped preamble waveform.

Detection correlates the *shaped* preamble waveform (not raw symbols)
against the received samples, with optional frequency-offset compensation —
the §4.2.1 machinery at 2 samples/symbol. Acquisition then refines the
fractional timing, frequency offset and complex gain on matched-filtered
symbol-domain values (§4.2.4a–c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CollisionDetectError, ConfigurationError
from repro.phy.correlation import CorrelationPeak
from repro.phy.estimation import ChannelEstimate
from repro.phy.preamble import Preamble
from repro.phy.pulse import MatchedSampler, PulseShaper

__all__ = ["Synchronizer"]


@dataclass
class Synchronizer:
    """Detect packet starts and acquire channel parameters.

    Positions reported by :meth:`detect` (and consumed by :meth:`acquire`)
    are the *sample* index of symbol 0's pulse centre — the coordinate
    system every receiver component shares.
    """

    preamble: Preamble
    shaper: PulseShaper = field(default_factory=PulseShaper)
    threshold: float = 0.6
    _waveform: np.ndarray = field(init=False, repr=False)
    _sampler: MatchedSampler = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ConfigurationError("threshold must lie in (0, 1]")
        self._waveform = self.shaper.shape(self.preamble.symbols)
        self._sampler = MatchedSampler(self.shaper)
        self._score_refs: dict[float, np.ndarray] = {}

    @property
    def reference_energy(self) -> float:
        return float(np.sum(np.abs(self._waveform) ** 2))

    # ------------------------------------------------------------------
    # Detection (Fig 4-2)
    # ------------------------------------------------------------------
    def correlate(self, signal, coarse_freq: float = 0.0) -> np.ndarray:
        """Complex sliding correlation of the preamble waveform, with
        frequency compensation; index d corresponds to a waveform starting
        at sample d (symbol 0 centre at ``d + shaper.delay``)."""
        y = np.asarray(signal, dtype=complex).ravel()
        if y.size < self._waveform.size:
            raise CollisionDetectError(
                "signal shorter than the preamble waveform")
        n = np.arange(self._waveform.size)
        reference = self._waveform * np.exp(2j * np.pi * coarse_freq * n)
        return np.correlate(y, reference, mode="valid")

    def _normalize_scores(self, corr: np.ndarray,
                          y: np.ndarray) -> np.ndarray:
        window = self._waveform.size
        energy = np.convolve(np.abs(y) ** 2, np.ones(window), mode="valid")
        denom = np.sqrt(self.reference_energy * np.maximum(energy, 1e-30))
        return np.abs(corr) / denom

    def correlation_scores(self, signal,
                           coarse_freq: float = 0.0) -> np.ndarray:
        """Normalized |correlation| in [0, 1] for thresholding."""
        y = np.asarray(signal, dtype=complex).ravel()
        return self._normalize_scores(self.correlate(y, coarse_freq), y)

    def detect(self, signal, coarse_freq: float = 0.0,
               max_peaks: int | None = None,
               min_separation: int = 16) -> list[CorrelationPeak]:
        """All packet starts whose normalized correlation clears threshold.

        Returns peaks sorted by position; ``position`` is the integer part
        of symbol 0's pulse-centre sample index. ``min_separation`` merges
        detections closer than that many samples into the strongest one —
        it must stay well below a backoff slot so closely-jittered
        colliding packets still register separately.
        """
        y = np.asarray(signal, dtype=complex).ravel()
        # One correlation pass serves both the peak values and the scores.
        corr = self.correlate(y, coarse_freq)
        scores = self._normalize_scores(corr, y)
        return self._select_peaks(corr, scores, max_peaks, min_separation)

    def _select_peaks(self, corr: np.ndarray, scores: np.ndarray,
                      max_peaks: int | None,
                      min_separation: int) -> list[CorrelationPeak]:
        """Greedy strongest-first selection with merge suppression —
        shared by the scalar and batched detectors."""
        separation = min_separation
        candidates = np.flatnonzero(scores >= self.threshold)
        used = np.zeros(scores.size, dtype=bool)
        peaks: list[CorrelationPeak] = []
        for idx in candidates[np.argsort(-scores[candidates])]:
            if used[idx]:
                continue
            lo = max(0, idx - separation)
            hi = min(scores.size, idx + separation + 1)
            used[lo:hi] = True
            peaks.append(CorrelationPeak(
                position=int(idx) + self.shaper.delay,
                fine_offset=0.0,
                value=complex(corr[idx]),
                score=float(scores[idx]),
            ))
            if max_peaks is not None and len(peaks) >= max_peaks:
                break
        peaks.sort(key=lambda p: p.position)
        return peaks

    # ------------------------------------------------------------------
    # Acquisition (§4.2.4)
    # ------------------------------------------------------------------
    def _preamble_score(self, signal, start: float,
                        coarse_freq: float) -> float:
        """|correlation| of the matched-filtered symbols against the
        derotated preamble.

        The ``exp(-2jπ f start)`` phase common to every term has unit
        modulus and cannot change the score, so the derotated reference
        depends only on ``coarse_freq`` — cached across the (many) calls
        the fractional-offset grid search makes per acquisition.
        """
        symbols = self._sampler.sample(signal, start, len(self.preamble))
        reference = self._score_refs.get(coarse_freq)
        if reference is None:
            if len(self._score_refs) >= 1024:
                # Synchronizers are shared across trials and every trial
                # estimates a fresh coarse frequency; bound the cache.
                self._score_refs.clear()
            k = np.arange(len(self.preamble))
            reference = self.preamble.symbols * np.exp(
                2j * np.pi * coarse_freq * self.shaper.sps * k)
            self._score_refs[coarse_freq] = reference
        return abs(complex(np.vdot(reference, symbols)))

    def refine_start(self, signal, position: int, *,
                     coarse_freq: float = 0.0, span: float = 0.8,
                     step: float = 0.2) -> float:
        """Sub-sample timing refinement by maximizing the matched-filter
        correlation over a grid of fractional offsets (+ parabolic polish)."""
        y = np.asarray(signal, dtype=complex).ravel()
        offsets = np.arange(-span, span + step / 2, step)
        scores = np.array([
            self._preamble_score(y, position + d, coarse_freq)
            for d in offsets
        ])
        best = int(np.argmax(scores))
        frac = 0.0
        if 0 < best < offsets.size - 1:
            left, mid, right = scores[best - 1:best + 2]
            denom = left - 2.0 * mid + right
            if denom != 0:
                frac = float(np.clip(0.5 * (left - right) / denom, -1, 1))
        return float(offsets[best] + frac * step)

    def acquire(self, signal, position: int, *, coarse_freq: float = 0.0,
                noise_power: float = 1.0, n_segments: int = 4,
                refine_freq: bool = False) -> ChannelEstimate:
        """Estimate (mu, freq offset, gain, SNR) at a detected packet start.

        The returned estimate's model is
        ``mf_output[k] ≈ gain * s[k] * exp(j 2π f (start + sps*k))`` with
        ``start = position + sampling_offset`` — exactly what
        :class:`~repro.receiver.frontend.SymbolStreamDecoder` inverts.

        ``refine_freq`` re-fits the frequency offset from the preamble's
        segment-correlation phase slope. A 32-symbol preamble bounds that
        fit to a few 1e-4 cycles/sample, so when the caller holds a good
        per-client coarse estimate (the paper's client table, §4.2.1 /
        §4.2.4b) leaving this off and letting the decision-directed tracker
        absorb the residual is strictly better; enable it only when no
        prior estimate exists.
        """
        y = np.asarray(signal, dtype=complex).ravel()
        length = len(self.preamble)
        sps = self.shaper.sps
        mu = self.refine_start(y, position, coarse_freq=coarse_freq)
        start = position + mu
        aligned = self._sampler.sample(y, start, length)

        k = np.arange(length)
        sample_pos = start + sps * k
        derotated = aligned * np.exp(-2j * np.pi * coarse_freq * sample_pos)

        freq = coarse_freq
        if refine_freq:
            seg = length // n_segments
            correlations = np.empty(n_segments, dtype=complex)
            for m in range(n_segments):
                sl = slice(m * seg, (m + 1) * seg)
                correlations[m] = np.sum(
                    np.conj(self.preamble.symbols[sl]) * derotated[sl])
            phases = np.unwrap(np.angle(correlations))
            weights = np.abs(correlations)
            if np.any(weights > 0):
                centers = np.arange(n_segments, dtype=float) * seg * sps
                w = weights / weights.sum()
                xm = np.sum(w * centers)
                ym = np.sum(w * phases)
                var = np.sum(w * (centers - xm) ** 2)
                if var > 0:
                    slope = np.sum(
                        w * (centers - xm) * (phases - ym)) / var
                    freq = coarse_freq + slope / (2.0 * np.pi)

        reference = self.preamble.symbols * np.exp(
            2j * np.pi * freq * sample_pos)
        gain = np.vdot(reference, aligned) / len(self.preamble)
        power = abs(gain) ** 2
        snr_db = 10.0 * np.log10(max(power / max(noise_power, 1e-30), 1e-12))
        return ChannelEstimate(
            gain=complex(gain),
            freq_offset=float(freq),
            sampling_offset=float(mu),
            snr_db=float(snr_db),
        )

    # ------------------------------------------------------------------
    # Trial-axis batched variants
    # ------------------------------------------------------------------
    @staticmethod
    def _as_lanes(signals) -> np.ndarray:
        stacked = np.asarray(signals, dtype=complex)
        if stacked.ndim == 1:
            stacked = stacked[None, :]
        if stacked.ndim != 2:
            raise ConfigurationError(
                "batched sync needs equal-length lanes (N, samples)")
        return stacked

    def correlate_batch(self, signals,
                        coarse_freqs=None) -> np.ndarray:
        """:meth:`correlate` over ``(N, samples)`` lanes in one pass.

        *coarse_freqs* is per-lane (scalar broadcasts). Row n agrees with
        the scalar ``correlate(signals[n], coarse_freqs[n])`` to float
        association order (~1e-9 relative).
        """
        y = self._as_lanes(signals)
        if y.shape[1] < self._waveform.size:
            raise CollisionDetectError(
                "signal shorter than the preamble waveform")
        n_lanes = y.shape[0]
        freqs = np.broadcast_to(
            np.asarray(0.0 if coarse_freqs is None else coarse_freqs,
                       dtype=float), (n_lanes,))
        k = np.arange(self._waveform.size)
        references = self._waveform[None, :] * np.exp(
            2j * np.pi * freqs[:, None] * k)
        windows = np.lib.stride_tricks.sliding_window_view(
            y, self._waveform.size, axis=1)
        return np.einsum("ntw,nw->nt", windows, np.conj(references))

    def correlation_scores_batch(self, signals,
                                 coarse_freqs=None) -> np.ndarray:
        """Normalized |correlation| rows in [0, 1] for thresholding."""
        y = self._as_lanes(signals)
        corr = self.correlate_batch(y, coarse_freqs)
        window = self._waveform.size
        power = np.abs(y) ** 2
        csum = np.concatenate(
            [np.zeros((y.shape[0], 1)), np.cumsum(power, axis=1)], axis=1)
        energy = csum[:, window:] - csum[:, :-window]
        denom = np.sqrt(self.reference_energy * np.maximum(energy, 1e-30))
        return np.abs(corr) / denom

    def detect_batch(self, signals, coarse_freqs=None,
                     max_peaks: int | None = None,
                     min_separation: int = 16,
                     ) -> list[list[CorrelationPeak]]:
        """:meth:`detect` over ``(N, samples)`` lanes.

        The correlation and score normalization run as one stacked pass;
        only the (tiny) greedy suppression loops per lane. Peak counts may
        differ across lanes — the result is one peak list per lane.
        """
        y = self._as_lanes(signals)
        corr = self.correlate_batch(y, coarse_freqs)
        window = self._waveform.size
        power = np.abs(y) ** 2
        csum = np.concatenate(
            [np.zeros((y.shape[0], 1)), np.cumsum(power, axis=1)], axis=1)
        energy = csum[:, window:] - csum[:, :-window]
        denom = np.sqrt(self.reference_energy * np.maximum(energy, 1e-30))
        scores = np.abs(corr) / denom
        return [
            self._select_peaks(corr[lane], scores[lane], max_peaks,
                               min_separation)
            for lane in range(y.shape[0])
        ]

    def acquire_batch(self, signals, positions, *, coarse_freqs=None,
                      noise_power: float = 1.0, n_segments: int = 4,
                      refine_freq: bool = False,
                      ) -> list[ChannelEstimate]:
        """:meth:`acquire` over ``(N, samples)`` lanes in lockstep.

        Every lane runs the same fractional-offset grid; the 9 × N scalar
        matched-filter calls of the loop path collapse into 9 batched
        gathers plus vectorized parabolic polish, derotation and gain/SNR
        estimation. Estimates match the scalar path to float association
        order (~1e-9); decisions downstream are unaffected because the
        stream decoders re-lock from the preamble anyway.
        """
        from repro.phy.batch import BatchedMatchedSampler

        y = self._as_lanes(signals)
        n_lanes, n_samples = y.shape
        length = len(self.preamble)
        sps = self.shaper.sps
        positions = np.broadcast_to(
            np.asarray(positions, dtype=float), (n_lanes,))
        freqs0 = np.broadcast_to(
            np.asarray(0.0 if coarse_freqs is None else coarse_freqs,
                       dtype=float), (n_lanes,)).copy()
        # Zero margin wide enough that every grid offset's window stays
        # inside the buffer — reproduces the scalar sampler's implicit
        # zero-padding at the capture edges.
        pad = self.shaper.delay + self.shaper.taps.size
        padded = np.zeros((n_lanes, n_samples + 2 * pad), dtype=complex)
        padded[:, pad:pad + n_samples] = y
        sampler = BatchedMatchedSampler(self.shaper)

        # refine_start, batched: grid search + parabolic polish.
        span, step = 0.8, 0.2
        offsets = np.arange(-span, span + step / 2, step)
        k = np.arange(length)
        score_refs = self.preamble.symbols[None, :] * np.exp(
            2j * np.pi * freqs0[:, None] * sps * k)
        scores = np.empty((offsets.size, n_lanes))
        for j, d in enumerate(offsets):
            raw = sampler.sample(padded, pad, positions + d, length)
            scores[j] = np.abs(np.sum(np.conj(score_refs) * raw, axis=1))
        best = np.argmax(scores, axis=0)
        frac = np.zeros(n_lanes)
        interior = np.flatnonzero((best > 0) & (best < offsets.size - 1))
        if interior.size:
            left = scores[best[interior] - 1, interior]
            mid = scores[best[interior], interior]
            right = scores[best[interior] + 1, interior]
            denom = left - 2.0 * mid + right
            nz = denom != 0
            frac[interior[nz]] = np.clip(
                0.5 * (left - right)[nz] / denom[nz], -1, 1)
        mu = offsets[best] + frac * step
        start = positions + mu

        aligned = sampler.sample(padded, pad, start, length)
        sample_pos = start[:, None] + sps * k
        derotated = aligned * np.exp(
            -2j * np.pi * freqs0[:, None] * sample_pos)

        freqs = freqs0.copy()
        if refine_freq:
            seg = length // n_segments
            correlations = np.empty((n_lanes, n_segments), dtype=complex)
            for m in range(n_segments):
                sl = slice(m * seg, (m + 1) * seg)
                correlations[:, m] = np.sum(
                    np.conj(self.preamble.symbols[sl]) * derotated[:, sl],
                    axis=1)
            centers = np.arange(n_segments, dtype=float) * seg * sps
            # Tiny per-lane fit; loops to mirror the scalar guard branches.
            for lane in range(n_lanes):
                weights = np.abs(correlations[lane])
                if not np.any(weights > 0):
                    continue
                phases = np.unwrap(np.angle(correlations[lane]))
                w = weights / weights.sum()
                xm = np.sum(w * centers)
                ym = np.sum(w * phases)
                var = np.sum(w * (centers - xm) ** 2)
                if var > 0:
                    slope = np.sum(
                        w * (centers - xm) * (phases - ym)) / var
                    freqs[lane] = freqs0[lane] + slope / (2.0 * np.pi)

        references = self.preamble.symbols[None, :] * np.exp(
            2j * np.pi * freqs[:, None] * sample_pos)
        gains = np.sum(np.conj(references) * aligned, axis=1) / length
        power = np.abs(gains) ** 2
        snr_db = 10.0 * np.log10(np.maximum(
            power / max(noise_power, 1e-30), 1e-12))
        return [
            ChannelEstimate(
                gain=complex(gains[lane]),
                freq_offset=float(freqs[lane]),
                sampling_offset=float(mu[lane]),
                snr_db=float(snr_db[lane]),
            )
            for lane in range(n_lanes)
        ]
