"""Decision-directed tracking loops: phase/frequency PLL and Mueller–Müller.

§4.2.4(b): "Any typical decoder tracks the signal phase and corrects for the
residual errors in the frequency offset." Our black-box decoder embeds a
second-order decision-directed PLL; without it, residual δf accumulates into
total phase rotation and long packets become undecodable (Table 5.1,
Fig 5-2a). §4.2.4(c): sampling-offset residuals are tracked with the
Mueller-and-Muller timing error detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.constellation import Constellation

__all__ = ["PhaseTracker", "MuellerMullerTracker"]


@dataclass
class PhaseTracker:
    """Second-order decision-directed phase-locked loop.

    State advances one symbol at a time; ``process`` handles a whole
    segment and may be called repeatedly with consecutive segments — this is
    what lets ZigZag decode chunk-by-chunk with phase continuity across
    chunk boundaries (§4.2.4b).

    Parameters
    ----------
    kp, ki:
        Proportional and integral loop gains. Defaults give a loop
        bandwidth that tracks 802.11-class residual offsets without
        amplifying decision noise.
    enabled:
        When False the tracker applies only its initial phase/freq and
        never updates — used to reproduce the "tracking disabled" ablation
        of Table 5.1 / Fig 5-2a.
    """

    kp: float = 0.08
    ki: float = 0.004
    phase: float = 0.0
    freq: float = 0.0
    enabled: bool = True
    _last_error: float = field(default=0.0, repr=False)

    def process(self, symbols, constellation: Constellation,
                known: np.ndarray | None = None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Derotate a segment, tracking as it goes.

        Returns ``(corrected, decisions, phases)`` where *corrected* are the
        phase-corrected soft symbols, *decisions* the sliced constellation
        points, and *phases* the smooth loop phase applied to each symbol
        (the re-encoder uses these — they are low-noise by construction,
        unlike per-symbol measured angles). If *known* is given (data-aided
        mode, e.g. over the preamble) the error is computed against the
        known symbols instead of decisions.
        """
        y = np.asarray(symbols, dtype=complex).ravel()
        if known is not None:
            known = np.asarray(known, dtype=complex).ravel()
            if known.size != y.size:
                raise ConfigurationError("known symbols length mismatch")
        corrected = np.empty_like(y)
        decisions = np.empty_like(y)
        phases = np.empty(y.size, dtype=float)
        for i in range(y.size):
            phases[i] = self.phase
            z = y[i] * np.exp(-1j * self.phase)
            corrected[i] = z
            reference = known[i] if known is not None \
                else constellation.slice_symbols([z])[0]
            decisions[i] = reference
            if self.enabled and reference != 0:
                error = float(np.angle(z * np.conj(reference)))
                self._last_error = error
                self.freq += self.ki * error
                self.phase += self.freq + self.kp * error
            else:
                self.phase += self.freq
        return corrected, decisions, phases

    def advance(self, n: int) -> None:
        """Coast over *n* symbols that will not be processed (gap in data)."""
        if n < 0:
            raise ConfigurationError("cannot advance by a negative count")
        self.phase += self.freq * n

    def snapshot(self) -> tuple[float, float]:
        """(phase, freq) state — lets callers fork the loop for look-ahead."""
        return self.phase, self.freq

    def restore(self, state: tuple[float, float]) -> None:
        self.phase, self.freq = state


@dataclass
class MuellerMullerTracker:
    """Mueller-and-Muller decision-directed timing error detector (§4.2.4c).

    At symbol rate, the timing error for symbol n is
    ``e[n] = Re( d*[n-1] y[n] - d*[n] y[n-1] )``; a first-order loop
    integrates it into a running fractional-offset estimate. The standard
    decoder polls :attr:`offset_estimate` and re-interpolates when the
    accumulated offset exceeds a threshold.
    """

    gain: float = 0.01
    offset_estimate: float = 0.0
    _prev_y: complex = field(default=0j, repr=False)
    _prev_d: complex = field(default=0j, repr=False)

    def update(self, received: complex, decision: complex) -> float:
        """Feed one (received, decision) pair; returns the current estimate."""
        error = float(np.real(
            np.conj(self._prev_d) * received - np.conj(decision) * self._prev_y
        ))
        self.offset_estimate += self.gain * error
        self._prev_y = received
        self._prev_d = decision
        return self.offset_estimate

    def process(self, received, decisions) -> float:
        """Feed a whole segment; returns the final offset estimate."""
        y = np.asarray(received, dtype=complex).ravel()
        d = np.asarray(decisions, dtype=complex).ravel()
        if y.size != d.size:
            raise ConfigurationError("received/decisions length mismatch")
        for yi, di in zip(y, d):
            self.update(complex(yi), complex(di))
        return self.offset_estimate

    def reset(self) -> None:
        self.offset_estimate = 0.0
        self._prev_y = 0j
        self._prev_d = 0j
