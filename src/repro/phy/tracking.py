"""Decision-directed tracking loops: phase/frequency PLL and Mueller–Müller.

§4.2.4(b): "Any typical decoder tracks the signal phase and corrects for the
residual errors in the frequency offset." Our black-box decoder embeds a
second-order decision-directed PLL; without it, residual δf accumulates into
total phase rotation and long packets become undecodable (Table 5.1,
Fig 5-2a). §4.2.4(c): sampling-offset residuals are tracked with the
Mueller-and-Muller timing error detector.

Hot-path note: ``PhaseTracker.process`` is the single most-executed loop in
a Monte-Carlo trial (every symbol of every chunk of every packet). The
disabled path is a closed-form phase ramp and fully array-based; the
data-aided path vectorizes the angle measurement and keeps only a pure-float
recurrence for the loop filter; the decision-directed path runs on scalar
``math``/``cmath`` ops with O(1) slicers for BPSK/QPSK, because the loop
output feeds back into the next decision and cannot be batched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.constellation import Constellation

__all__ = ["PhaseTracker", "MuellerMullerTracker"]

_TWO_PI = 2.0 * math.pi


def _zero_sample_error(yi: complex, phase: float,
                       reference: complex) -> float:
    """Error angle of an exactly-zero sample, via numpy's own arithmetic.

    A zero sample's error angle is entirely determined by IEEE
    sign-of-zero bits, and numpy's complex multiply resolves them
    differently from CPython's — so this cold path (capture-edge padding
    windows only) replays the original numpy expression verbatim to stay
    bit-compatible with the scalar implementation it replaced.
    """
    z = np.complex128(yi) * np.exp(-1j * phase)
    return float(np.angle(z * np.conj(np.complex128(reference))))


def _scalar_slicer(constellation: Constellation):
    """A per-symbol nearest-point slicer over Python scalars.

    Mirrors :meth:`Constellation.slice_symbols` exactly, including the
    argmin first-index tie-break. BPSK and Gray-mapped QPSK (the two
    constellations on the decode hot path) get branch-free closed forms;
    everything else falls back to a small loop over the point list.
    """
    pts = constellation.points
    if pts.size == 2 and pts[0] == -1.0 and pts[1] == 1.0:
        # argmin tie at Re z == 0 resolves to index 0, i.e. -1.
        def slice_bpsk(z: complex) -> complex:
            return (1 + 0j) if z.real > 0.0 else (-1 + 0j)
        return slice_bpsk
    if pts.size == 4:
        a = abs(pts[3].real)
        canonical = np.array([complex(-a, -a), complex(-a, a),
                              complex(a, -a), complex(a, a)])
        if np.array_equal(pts, canonical):
            # Ties (component exactly 0) resolve to the lower label, whose
            # level is -a on both axes for this Gray ordering.
            def slice_qpsk(z: complex) -> complex:
                return complex(a if z.real > 0.0 else -a,
                               a if z.imag > 0.0 else -a)
            return slice_qpsk
    points = [complex(p) for p in pts]

    def slice_generic(z: complex) -> complex:
        best = points[0]
        best_d = abs(z - best)
        for p in points[1:]:
            d = abs(z - p)
            if d < best_d:
                best_d = d
                best = p
        return best
    return slice_generic


@dataclass
class PhaseTracker:
    """Second-order decision-directed phase-locked loop.

    State advances one symbol at a time; ``process`` handles a whole
    segment and may be called repeatedly with consecutive segments — this is
    what lets ZigZag decode chunk-by-chunk with phase continuity across
    chunk boundaries (§4.2.4b).

    Parameters
    ----------
    kp, ki:
        Proportional and integral loop gains. Defaults give a loop
        bandwidth that tracks 802.11-class residual offsets without
        amplifying decision noise.
    enabled:
        When False the tracker applies only its initial phase/freq and
        never updates — used to reproduce the "tracking disabled" ablation
        of Table 5.1 / Fig 5-2a.
    """

    kp: float = 0.08
    ki: float = 0.004
    phase: float = 0.0
    freq: float = 0.0
    enabled: bool = True
    _last_error: float = field(default=0.0, repr=False)

    def process(self, symbols, constellation: Constellation,
                known: np.ndarray | None = None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Derotate a segment, tracking as it goes.

        Returns ``(corrected, decisions, phases)`` where *corrected* are the
        phase-corrected soft symbols, *decisions* the sliced constellation
        points, and *phases* the smooth loop phase applied to each symbol
        (the re-encoder uses these — they are low-noise by construction,
        unlike per-symbol measured angles). If *known* is given (data-aided
        mode, e.g. over the preamble) the error is computed against the
        known symbols instead of decisions.
        """
        y = np.asarray(symbols, dtype=complex).ravel()
        if known is not None:
            known = np.asarray(known, dtype=complex).ravel()
            if known.size != y.size:
                raise ConfigurationError("known symbols length mismatch")
        if y.size == 0:
            return (np.zeros(0, dtype=complex), np.zeros(0, dtype=complex),
                    np.zeros(0, dtype=float))
        if not self.enabled:
            return self._process_coasting(y, constellation, known)
        if known is not None:
            return self._process_data_aided(y, known)
        return self._process_decision_directed(y, constellation)

    # -- disabled: the loop never updates, so the phase is a closed-form
    # ramp phase0 + freq * k and everything batches into array ops.
    def _process_coasting(self, y, constellation, known):
        phases = self.phase + self.freq * np.arange(y.size, dtype=float)
        corrected = y * np.exp(-1j * phases)
        if known is not None:
            decisions = known.copy()
        else:
            decisions = constellation.slice_symbols(corrected)
        self.phase += self.freq * y.size
        return corrected, decisions, phases

    # -- data-aided: the error angle against the known symbol is
    # angle(y * conj(known)) - phase (wrapped), so the expensive per-symbol
    # trigonometry vectorizes; only the float loop-filter recurrence runs
    # in Python, on unboxed scalars.
    def _process_data_aided(self, y, known):
        theta = np.angle(y * np.conj(known))
        phase_list = [0.0] * y.size
        phase = self.phase
        freq = self.freq
        kp = self.kp
        ki = self.ki
        last_error = self._last_error
        wrap = math.remainder
        all_live = known.all()
        if all_live and y.all():
            for i, th in enumerate(theta.tolist()):
                phase_list[i] = phase
                error = wrap(th - phase, _TWO_PI)
                last_error = error
                freq += ki * error
                phase += freq + kp * error
        else:
            live = [True] * y.size if all_live else (known != 0).tolist()
            # Exact-zero samples (capture-edge padding windows) have an
            # error angle set purely by IEEE zero sign bits; replay the
            # reference's numpy expression for those symbols.
            zero = (y == 0).tolist()
            y_list = y.tolist()
            known_list = known.tolist()
            for i, th in enumerate(theta.tolist()):
                phase_list[i] = phase
                if live[i]:
                    if zero[i]:
                        error = _zero_sample_error(y_list[i], phase,
                                                   known_list[i])
                    else:
                        error = wrap(th - phase, _TWO_PI)
                    last_error = error
                    freq += ki * error
                    phase += freq + kp * error
                else:
                    phase += freq
        phases = np.array(phase_list, dtype=float)
        corrected = y * np.exp(-1j * phases)
        self.phase = phase
        self.freq = freq
        self._last_error = last_error
        return corrected, known.copy(), phases

    # -- decision-directed: each decision feeds the next phase, so the loop
    # is irreducibly sequential; run it on Python complex scalars (no numpy
    # boxing) with a precomputed slicer.
    def _process_decision_directed(self, y, constellation):
        pts = constellation.points
        if pts.size == 2 and pts[0] == -1.0 and pts[1] == 1.0:
            return self._process_decision_directed_bpsk(y)
        slicer = _scalar_slicer(constellation)
        n = y.size
        corrected = [0j] * n
        decisions = [0j] * n
        phase_list = [0.0] * n
        phase = self.phase
        freq = self.freq
        kp = self.kp
        ki = self.ki
        last_error = self._last_error
        cos = math.cos
        sin = math.sin
        atan2 = math.atan2
        for i, yi in enumerate(y.tolist()):
            phase_list[i] = phase
            z = yi * complex(cos(phase), -sin(phase))
            corrected[i] = z
            ref = slicer(z)
            decisions[i] = ref
            if ref != 0:
                if z == 0:
                    error = _zero_sample_error(yi, phase, ref)
                else:
                    w = z * ref.conjugate()
                    error = atan2(w.imag, w.real)
                last_error = error
                freq += ki * error
                phase += freq + kp * error
            else:
                phase += freq
        self.phase = phase
        self.freq = freq
        self._last_error = last_error
        return (np.array(corrected, dtype=complex),
                np.array(decisions, dtype=complex),
                np.array(phase_list, dtype=float))

    _BPSK_BLOCK = 1024

    def _process_decision_directed_bpsk(self, y):
        """BPSK specialization: speculate-verify vectorized loop.

        The decision feedback makes the loop sequential, but once the PLL
        is in lock the decisions are predictable: coasting the phase (no
        corrections) over a block almost always slices every symbol the
        same way the tracked phase will. So per block we (1) guess the
        decisions from the coasted phase, (2) run the exact scalar
        loop-filter recurrence on the implied error angles — pure floats,
        the only part that cannot batch — and (3) verify the guesses
        against the true tracked phases, accepting the longest verified
        prefix. A wrong first guess falls back to one exact scalar step,
        and repeated thin prefixes (loop out of lock, e.g. very low SNR)
        switch to the plain scalar loop for the remainder, so the worst
        case stays linear.
        """
        n = y.size
        phases = np.empty(n, dtype=float)
        plus = np.empty(n, dtype=bool)
        phase = self.phase
        freq = self.freq
        kp = self.kp
        ki = self.ki
        last_error = self._last_error
        if n < 160 or not y.all():
            # ZigZag chunks are this size; the speculation setup costs
            # more than it saves below a couple hundred symbols. Exact
            # zeros (a sampler window wholly in capture-edge padding) also
            # take this path: their error angle depends on IEEE zero sign
            # bits that the vectorized verify cannot reproduce.
            phase, freq, last_error = self._bpsk_scalar_tail(
                y, 0, phases, plus, phase, freq, last_error)
            self.phase = phase
            self.freq = freq
            self._last_error = last_error
            return (y * np.exp(-1j * phases),
                    np.where(plus, 1.0 + 0j, -1.0 + 0j), phases)
        angles = np.angle(y)
        wrap = math.remainder
        half_pi = 0.5 * math.pi
        start = 0
        thin_streak = 0
        block = 128
        while start < n:
            if thin_streak >= 4:
                phase, freq, last_error = self._bpsk_scalar_tail(
                    y, start, phases, plus, phase, freq, last_error)
                break
            m_max = min(n - start, block)
            blk = angles[start:start + m_max]
            coast = phase + freq * np.arange(m_max)
            rel = np.remainder(blk - coast + math.pi, _TWO_PI) - math.pi
            guess_plus = np.abs(rel) < half_pi
            # error = wrap(theta - phase) with theta = angle(y * conj(d)).
            theta = np.where(guess_plus, blk, blk - math.pi)
            th_list = theta.tolist()
            ph_list = [0.0] * (m_max + 1)
            f_list = [0.0] * m_max
            p = phase
            f = freq
            for i, th in enumerate(th_list):
                ph_list[i] = p
                e = wrap(th - p, _TWO_PI)
                f += ki * e
                p += f + kp * e
                f_list[i] = f
            ph_list[m_max] = p
            phi = np.array(ph_list[:m_max])
            # True decision at the tracked phase: sign of Re(y e^{-j phi})
            # = sign of cos(angle(y) - phi); strict >0 keeps the tie
            # behaviour of the scalar slicer.
            ok = (np.cos(blk - phi) > 0.0) == guess_plus
            m = m_max if ok.all() else int(np.argmin(ok))
            if m == 0:
                # Wrong first guess: take one exact scalar step instead.
                phases[start] = phase
                z = complex(y[start]) * complex(math.cos(phase),
                                                -math.sin(phase))
                if z.real > 0.0:
                    plus[start] = True
                    error = math.atan2(z.imag, z.real)
                else:
                    plus[start] = False
                    if z == 0:
                        error = _zero_sample_error(
                            complex(y[start]), phase, -1 + 0j)
                    else:
                        error = math.atan2(-z.imag, -z.real)
                last_error = error
                freq += ki * error
                phase += freq + kp * error
                start += 1
                thin_streak += 1
                continue
            phases[start:start + m] = phi[:m]
            plus[start:start + m] = guess_plus[:m]
            last_error = wrap(th_list[m - 1] - ph_list[m - 1], _TWO_PI)
            phase = ph_list[m]
            freq = f_list[m - 1]
            # Adapt the speculation depth to the observed lock quality so
            # mismatch-heavy segments never pay for long wasted blocks.
            if m == m_max:
                block = min(2 * block, self._BPSK_BLOCK)
                thin_streak = 0
            else:
                block = max(block // 2, 32)
                if m < 16:
                    thin_streak += 1
            start += m
        corrected = y * np.exp(-1j * phases)
        decisions = np.where(plus, 1.0 + 0j, -1.0 + 0j)
        self.phase = phase
        self.freq = freq
        self._last_error = last_error
        return corrected, decisions, phases

    def _bpsk_scalar_tail(self, y, start, phases, plus, phase, freq,
                          last_error):
        """Plain scalar BPSK loop over ``y[start:]`` (speculation bailout);
        fills ``phases``/``plus`` in place and returns the final state."""
        ki = self.ki
        kp = self.kp
        cos = math.cos
        sin = math.sin
        atan2 = math.atan2
        for i, yi in enumerate(y[start:].tolist(), start=start):
            phases[i] = phase
            z = yi * complex(cos(phase), -sin(phase))
            if z.real > 0.0:
                plus[i] = True
                error = atan2(z.imag, z.real)
            else:
                plus[i] = False
                if z == 0:
                    error = _zero_sample_error(yi, phase, -1 + 0j)
                else:
                    error = atan2(-z.imag, -z.real)
            last_error = error
            freq += ki * error
            phase += freq + kp * error
        return phase, freq, last_error

    def advance(self, n: int) -> None:
        """Coast over *n* symbols that will not be processed (gap in data)."""
        if n < 0:
            raise ConfigurationError("cannot advance by a negative count")
        self.phase += self.freq * n

    def snapshot(self) -> tuple[float, float]:
        """(phase, freq) state — lets callers fork the loop for look-ahead."""
        return self.phase, self.freq

    def restore(self, state: tuple[float, float]) -> None:
        self.phase, self.freq = state


@dataclass
class MuellerMullerTracker:
    """Mueller-and-Muller decision-directed timing error detector (§4.2.4c).

    At symbol rate, the timing error for symbol n is
    ``e[n] = Re( d*[n-1] y[n] - d*[n] y[n-1] )``; a first-order loop
    integrates it into a running fractional-offset estimate. The standard
    decoder polls :attr:`offset_estimate` and re-interpolates when the
    accumulated offset exceeds a threshold.
    """

    gain: float = 0.01
    offset_estimate: float = 0.0
    _prev_y: complex = field(default=0j, repr=False)
    _prev_d: complex = field(default=0j, repr=False)

    def update(self, received: complex, decision: complex) -> float:
        """Feed one (received, decision) pair; returns the current estimate."""
        error = (self._prev_d.conjugate() * received
                 - decision.conjugate() * self._prev_y).real
        self.offset_estimate += self.gain * error
        self._prev_y = received
        self._prev_d = decision
        return self.offset_estimate

    def process(self, received, decisions) -> float:
        """Feed a whole segment; returns the final offset estimate.

        The error sequence is a shifted elementwise product (each term sees
        only its predecessor), so the whole segment reduces to two array
        products and a sum — no per-pair loop.
        """
        y = np.asarray(received, dtype=complex).ravel()
        d = np.asarray(decisions, dtype=complex).ravel()
        if y.size != d.size:
            raise ConfigurationError("received/decisions length mismatch")
        if y.size == 0:
            return self.offset_estimate
        prev_y = np.concatenate([[self._prev_y], y[:-1]])
        prev_d = np.concatenate([[self._prev_d], d[:-1]])
        errors = (np.conj(prev_d) * y - np.conj(d) * prev_y).real
        self.offset_estimate += self.gain * float(np.sum(errors))
        self._prev_y = complex(y[-1])
        self._prev_d = complex(d[-1])
        return self.offset_estimate

    def reset(self) -> None:
        self.offset_estimate = 0.0
        self._prev_y = 0j
        self._prev_d = 0j
