"""Receiver-side building blocks: the standard black-box decoder and helpers.

:class:`~repro.receiver.frontend.SymbolStreamDecoder` is the incremental
"standard decoder" that ZigZag invokes chunk-by-chunk (§4.2.3a);
:class:`~repro.receiver.decoder.StandardDecoder` wraps it into the ordinary
whole-packet 802.11 receive path; :mod:`~repro.receiver.mrc` implements
maximal ratio combining; :mod:`~repro.receiver.buffer` stores recent
unmatched collisions (§4.2.2).
"""

from repro.receiver.result import DecodeResult, PacketObservation
from repro.receiver.frontend import StreamConfig, SymbolStreamDecoder
from repro.receiver.decoder import StandardDecoder
from repro.receiver.mrc import mrc_combine, mrc_decide
from repro.receiver.buffer import CollisionBuffer, CollisionRecord

__all__ = [
    "DecodeResult",
    "PacketObservation",
    "StreamConfig",
    "SymbolStreamDecoder",
    "StandardDecoder",
    "mrc_combine",
    "mrc_decide",
    "CollisionBuffer",
    "CollisionRecord",
]
