"""Trial-axis batched counterpart of :class:`SymbolStreamDecoder`.

A :class:`BatchedStreamDecoder` owns the receive state for *one packet in
one capture across N independent trials* advancing in lockstep: every lane
is at the same symbol cursor, decodes the same chunk boundaries, and sees
the same segment structure (preamble / header / body), which is exactly
what the schedule-signature grouping in :mod:`repro.zigzag.batch`
guarantees. Per-lane quantities — gain, frequency offset, fractional start,
tracker state — live in arrays.

Differences from the scalar path, by design:

* **No equalizer.** Training one is rare (it needs a preamble residual
  above what noise explains) and makes subsequent chunks lane-divergent.
  The decoder instead *detects* the training condition per lane during
  preamble refinement and raises :attr:`wants_equalizer`; the batched
  engine discards those lanes' outputs and replays the trials through the
  exact scalar path.

* **Pilot knowledge must be lane-uniform per segment.** Constellation
  decisions are never zero, so in practice it always is; a mixed segment
  raises :class:`BatchDivergence` and the engine falls back to the loop
  path for the whole group (bit-identical results, just slower).

Float policy matches the repo's perf-harness precedent: decisions/bits are
identical to the scalar path, float internals agree to ~1e-9. The
derotation constants are built with the same ``cmath``/cumprod operations
as the scalar decoder so the tracker sees bit-identical inputs wherever
that is cheap to arrange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.phy.batch import BatchedMatchedSampler, BatchedPhaseTracker
from repro.phy.constellation import BPSK, Constellation
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import HEADER_BITS
from repro.receiver.frontend import StreamConfig

__all__ = ["BatchDivergence", "BatchChunkDecode", "BatchedStreamDecoder"]


class BatchDivergence(ReproError):
    """A batched group can no longer advance in lockstep.

    Raised when lanes disagree about segment knowledge in a way the
    lockstep tracker cannot express. The caller falls back to the exact
    scalar loop for the affected trials.
    """


@dataclass
class BatchChunkDecode:
    """Batched chunk decode: symbol range [i0, i1) across all lanes."""

    i0: int
    i1: int
    soft: np.ndarray        # (N, L) complex
    decisions: np.ndarray   # (N, L) complex
    phases: np.ndarray      # (N, L) float

    @property
    def effective_symbols(self) -> np.ndarray:
        """Decisions re-rotated by the tracked phases, per lane — the
        re-encoder input (§4.2.3b)."""
        return self.decisions * np.exp(1j * self.phases)


class BatchedStreamDecoder:
    """Lockstep stream decoder for one (packet, capture) over N trials.

    Parameters mirror :class:`SymbolStreamDecoder`, with per-lane arrays
    where the scalar takes scalars. *estimates* is a sequence of per-lane
    :class:`ChannelEstimate`; *starts* the per-lane fractional position of
    symbol 0's pulse centre; *pilots*, when given, is ``(N, n_symbols)``.
    """

    def __init__(self, config: StreamConfig, estimates, starts,
                 body_constellation: Constellation = BPSK,
                 data_aided_preamble: bool = True,
                 reversed_total: int | None = None,
                 pilots: np.ndarray | None = None) -> None:
        self.config = config
        self.estimates = list(estimates)
        self.starts = np.asarray(starts, dtype=float).ravel()
        n = self.starts.size
        if len(self.estimates) != n:
            raise ConfigurationError("estimates/starts length mismatch")
        self.gains = np.array([e.gain for e in self.estimates],
                              dtype=complex)
        self.freqs = np.array([e.freq_offset for e in self.estimates],
                              dtype=float)
        self.body_constellation = body_constellation
        self.data_aided_preamble = (data_aided_preamble
                                    and reversed_total is None)
        self.reversed_total = reversed_total
        self.pilots = None if pilots is None \
            else np.asarray(pilots, dtype=complex)
        if self.pilots is not None and self.pilots.shape[0] != n:
            raise ConfigurationError("pilots must have one row per lane")
        self.sampler = BatchedMatchedSampler(config.shaper)
        self.tracker = BatchedPhaseTracker(
            kp=config.kp, ki=config.ki, phase=np.zeros(n),
            freq=np.zeros(n), enabled=config.track_phase)
        self.cursor = 0
        self._preamble_len = (len(config.preamble)
                              if self.data_aided_preamble else 0)
        self._pre_acc = np.full((n, self._preamble_len), np.nan + 0j,
                                dtype=complex)
        self._refined = not self.data_aided_preamble
        # Lanes whose preamble residual would have trained the scalar
        # equalizer: their batched outputs must be discarded and the
        # trials replayed through the exact scalar path.
        self.wants_equalizer = np.zeros(n, dtype=bool)
        self._derotate_powers: np.ndarray | None = None

    @property
    def n_lanes(self) -> int:
        return self.starts.size

    # ------------------------------------------------------------------
    # Region bookkeeping (identical to the scalar decoder)
    # ------------------------------------------------------------------
    def constellation_at(self, index: int) -> Constellation:
        if self.reversed_total is not None:
            boundary = self.reversed_total - (
                len(self.config.preamble) + HEADER_BITS)
            return self.body_constellation if index < boundary else BPSK
        if index < self._preamble_len + HEADER_BITS:
            return BPSK
        return self.body_constellation

    def set_body_constellation(self, constellation: Constellation) -> None:
        self.body_constellation = constellation

    def _segment_end(self, start: int, limit: int) -> int:
        if self.reversed_total is not None:
            pre_hdr = len(self.config.preamble) + HEADER_BITS
            boundaries = [self.reversed_total - pre_hdr]
        else:
            boundaries = [self._preamble_len,
                          self._preamble_len + HEADER_BITS]
        for b in boundaries:
            if start < b < limit:
                return b
        return limit

    # ------------------------------------------------------------------
    # Core chunk decode
    # ------------------------------------------------------------------
    def _static_derotate(self, raw: np.ndarray, i0: int) -> np.ndarray:
        """Per-lane gain/frequency-ramp removal via cached cumulative
        rotation powers (one scalar rotation per lane per chunk).

        Agrees with the scalar decoder's cmath-built constants to ~1 ulp;
        the trackers' branch-margin ejection absorbs the difference, so
        decisions still match the scalar path bit-for-bit.
        """
        sps = self.config.shaper.sps
        n, size = raw.shape
        powers = self._derotate_powers
        if powers is None or powers.shape[1] < size:
            capacity = max(size, 64,
                           0 if powers is None else 2 * powers.shape[1])
            steps = np.broadcast_to(
                np.exp(-2j * np.pi * self.freqs * sps)[:, None],
                (n, capacity)).copy()
            steps[:, 0] = 1.0 + 0j
            powers = np.cumprod(steps, axis=1)
            self._derotate_powers = powers
        safe_gains = np.where(self.gains != 0, self.gains, 1e-12)
        rot = (np.exp(-2j * np.pi * self.freqs
                      * (self.starts + sps * i0))
               / safe_gains)[:, None]
        return raw * (powers[:, :size] * rot)

    def decode_chunk(self, padded: np.ndarray, origin: int,
                     i1: int) -> BatchChunkDecode:
        """Decode symbols ``[cursor, i1)`` of every lane in lockstep.

        *padded* is the ``(N, P)`` zero-padded residual buffer with capture
        sample s of lane n at ``padded[n, s + origin]``.
        """
        i0 = self.cursor
        if i1 <= i0:
            raise ConfigurationError(
                f"chunk end {i1} must exceed cursor {i0}")
        sps = self.config.shaper.sps
        raw = self.sampler.sample(padded, origin,
                                  self.starts + sps * i0, i1 - i0)
        z = self._static_derotate(raw, i0)

        n = self.n_lanes
        soft = np.empty((n, i1 - i0), dtype=complex)
        decisions = np.empty((n, i1 - i0), dtype=complex)
        phases = np.empty((n, i1 - i0), dtype=float)
        seg_start = i0
        while seg_start < i1:
            seg_end = self._segment_end(seg_start, i1)
            local = slice(seg_start - i0, seg_end - i0)
            known = None
            is_preamble_segment = (self.data_aided_preamble
                                   and seg_start < self._preamble_len)
            if is_preamble_segment:
                known = np.broadcast_to(
                    self.config.preamble.symbols[seg_start:seg_end],
                    (n, seg_end - seg_start))
            elif (self.pilots is not None
                  and seg_end <= self.pilots.shape[1]):
                candidate = self.pilots[:, seg_start:seg_end]
                live = (candidate != 0).all(axis=1)
                if live.all():
                    known = candidate
                elif live.any():
                    raise BatchDivergence(
                        "pilot knowledge differs across lanes")
            constellation = self.constellation_at(seg_start)
            seg_soft, seg_dec, seg_phases = self.tracker.process(
                z[:, local], constellation, known=known)
            soft[:, local] = seg_soft
            decisions[:, local] = seg_dec
            phases[:, local] = seg_phases
            if is_preamble_segment:
                self._pre_acc[:, seg_start:seg_end] = z[:, local]
            seg_start = seg_end

        self.cursor = i1
        if not self._refined and not np.any(np.isnan(self._pre_acc)):
            self._refine_from_preamble()
        return BatchChunkDecode(i0, i1, soft, decisions, phases)

    # ------------------------------------------------------------------
    # Preamble-driven refinement (§4.2.4a), batched
    # ------------------------------------------------------------------
    def _refine_from_preamble(self) -> None:
        self._refined = True
        s = self.config.preamble.symbols
        z = self._pre_acc
        denom = np.vdot(s, s)
        residual_gain = (z @ np.conj(s)) / denom
        update = np.abs(residual_gain) > 1e-9
        if update.any():
            self.gains[update] = (self.gains[update]
                                  * residual_gain[update])
            self.tracker.phase[update] -= np.angle(residual_gain[update])
            z = z.copy()
            z[update] = z[update] / residual_gain[update, None]
        if self.config.use_equalizer \
                and z.shape[1] >= self.config.equalizer_taps:
            residual_power = np.mean(np.abs(z - s) ** 2, axis=1)
            gain_power = np.abs(self.gains) ** 2
            noise_in_symbol_domain = (self.config.noise_power
                                      / np.maximum(gain_power, 1e-30))
            self.wants_equalizer = (
                residual_power > 1.5 * noise_in_symbol_domain)

    # ------------------------------------------------------------------
    # State export for backward decoding / re-encoding
    # ------------------------------------------------------------------
    @property
    def tracked_freq_cycles(self) -> np.ndarray:
        """Residual frequency per lane, cycles/symbol."""
        return self.tracker.freq / (2.0 * np.pi)

    def total_freq_offset(self) -> np.ndarray:
        """Static estimate + tracked residual, cycles/sample, per lane."""
        sps = self.config.shaper.sps
        return self.freqs + self.tracked_freq_cycles / sps

    def phase_at_cursor(self) -> np.ndarray:
        return self.tracker.phase

    def current_estimate(self, lane: int) -> ChannelEstimate:
        """The lane's estimate with refined gain folded in (what the
        scalar decoder's ``estimate`` attribute would hold)."""
        return self.estimates[lane].with_gain(complex(self.gains[lane]))
