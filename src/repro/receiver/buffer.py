"""Store of recent unmatched collisions (§4.2.2), generalized to sets (§4.5).

"The AP stores recent unmatched collisions (i.e., stores the received
complex samples). It is sufficient to store the few most recent collisions
because, in 802.11, colliding sources try to retransmit a failed
transmission as soon as the medium is available."

Beyond the paper's pairwise match, the buffer doubles as a *collision-set
matcher*: stored collisions whose pairwise match scores clear the
threshold are linked, and a new collision's match candidates are the
whole connected component it joins — so k mutually-hidden senders whose k
collisions arrived over several receptions can be assembled into one
decodable set even when the oldest and newest collisions no longer score
directly against each other (the chain of intermediate links carries the
identification). Pairwise matching falls out as the k = 2 case: a
component of one stored record plus the new collision.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.correlation import CorrelationPeak

__all__ = ["CollisionRecord", "CollisionBuffer", "gaps_close"]


# eq=False: records compare (and are removed) by identity. The generated
# field-wise __eq__ would compare the sample arrays, which raises on
# numpy's ambiguous truth value the moment deque.remove scans *past* a
# different record — silently leaving matched records in the buffer.
@dataclass(eq=False)
class CollisionRecord:
    """One stored collision: raw samples plus detected packet starts."""

    samples: np.ndarray
    peaks: list[CorrelationPeak]
    sequence: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def n_peaks(self) -> int:
        """Number of packets detected in this collision."""
        return len(self.peaks)

    @property
    def offset(self) -> int:
        """Offset Δ of the second packet relative to the first (samples)."""
        if len(self.peaks) < 2:
            raise ConfigurationError("record holds fewer than two packets")
        positions = sorted(p.position for p in self.peaks)
        return positions[1] - positions[0]

    @property
    def gaps(self) -> tuple[int, ...]:
        """Successive peak gaps (samples) — the k-way generalization of
        ``offset``; two collisions with the same gap tuple are the §4.5
        identical-offset degenerate case and cannot be disentangled."""
        positions = sorted(p.position for p in self.peaks)
        return tuple(b - a for a, b in zip(positions, positions[1:]))


def gaps_close(a: CollisionRecord, b: CollisionRecord,
               tolerance: int = 2) -> bool:
    """Are two collisions' peak-gap tuples indistinguishable (§4.5)?

    True when both hold the same number of packets and every successive
    gap differs by less than *tolerance* samples — the configuration in
    which the linear system is degenerate and ZigZag cannot make progress
    (Assertion 4.5.1's failure condition). For two-packet records this is
    exactly the historical ``abs(d_new - d_old) < 2`` check.
    """
    if a.n_peaks != b.n_peaks:
        return False
    return all(abs(ga - gb) < tolerance
               for ga, gb in zip(a.gaps, b.gaps))


class _UnionFind:
    """Tiny union-find over record sequence numbers."""

    def __init__(self, keys) -> None:
        self._parent = {k: k for k in keys}

    def find(self, key: int) -> int:
        parent = self._parent
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:       # path compression
            parent[key], key = root, parent[key]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


class CollisionBuffer:
    """A small FIFO of unmatched collision records with set matching.

    Pairwise link scores between stored records are computed lazily (the
    first time a scorer asks for them) and cached until one of the two
    records leaves the buffer, so a long-running receiver never re-scores
    the same stored pair twice.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[CollisionRecord] = deque()
        self._counter = 0
        # (low sequence, high sequence) -> score, or None when the pair
        # cannot be aligned long enough to score (short alignment).
        self._links: dict[tuple[int, int], float | None] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def add(self, samples, peaks, meta: dict | None = None) -> CollisionRecord:
        record = CollisionRecord(
            samples=np.asarray(samples, dtype=complex).ravel(),
            peaks=list(peaks),
            sequence=self._counter,
            meta=dict(meta or {}),
        )
        self._counter += 1
        while len(self._records) >= self.capacity:
            self._forget(self._records.popleft())
        self._records.append(record)
        return record

    def remove(self, record: CollisionRecord) -> bool:
        """Remove *record*; True when it was present.

        Callers that just matched a record must assert on the return value
        — a False here means the record was already evicted or removed, a
        logic error in the caller's bookkeeping, not a benign no-op.
        """
        try:
            self._records.remove(record)
        except ValueError:
            return False
        self._forget(record)
        return True

    def prune(self, keep) -> int:
        """Drop every record for which ``keep(record)`` is falsy.

        Returns the number of records dropped. Used by long-running
        receivers to age out collisions whose retransmission window has
        passed (a stale record can never match, it only wastes scans).
        """
        survivors = [r for r in self._records if keep(r)]
        dropped = [r for r in self._records if not keep(r)]
        if dropped:
            self._records.clear()
            self._records.extend(survivors)
            for record in dropped:
                self._forget(record)
        return len(dropped)

    def newest_first(self) -> list[CollisionRecord]:
        """Candidates for matching, most recent first (retransmissions are
        expected to arrive immediately after the original collision)."""
        return list(reversed(self._records))

    def clear(self) -> None:
        self._records.clear()
        self._links.clear()

    # ------------------------------------------------------------------
    # Collision-set matching (§4.5)
    # ------------------------------------------------------------------
    def _forget(self, record: CollisionRecord) -> None:
        """Drop cached link scores involving a departed record, keeping
        the cache bounded over arbitrarily long sessions."""
        seq = record.sequence
        stale = [key for key in self._links if seq in key]
        for key in stale:
            del self._links[key]

    def link_score(self, a: CollisionRecord, b: CollisionRecord,
                   scorer) -> float | None:
        """Cached pairwise link score between two stored records.

        *scorer* is ``scorer(a, b) -> float`` (typically aligned
        cross-correlation at the second peaks, §4.2.2); a
        :class:`~repro.errors.ConfigurationError` from it — the pair
        cannot be aligned long enough to score — is cached as ``None``.
        """
        key = (min(a.sequence, b.sequence), max(a.sequence, b.sequence))
        if key not in self._links:
            try:
                self._links[key] = float(scorer(a, b))
            except ConfigurationError:
                self._links[key] = None
        return self._links[key]

    def component(self, seeds: list[CollisionRecord], scorer,
                  threshold: float) -> list[CollisionRecord]:
        """Stored records transitively linked to any of *seeds*.

        Builds the match graph over the stored records holding the same
        packet count as the seeds (a k-way set is assembled from k-packet
        collisions only, so cross-cardinality edges could never join the
        component and their correlations would be wasted) — an edge
        wherever the cached pairwise link score clears *threshold* and
        the gap signatures differ (identical-gap pairs are degenerate,
        §4.5) — union-finds its components, and returns the members of
        the seeds' component (the seeds themselves excluded), newest
        first. With no transitive links this reduces to the
        directly-matched records, i.e. pairwise §4.2.2 behaviour.
        """
        if not seeds:
            return []
        k = seeds[0].n_peaks
        eligible = [r for r in self._records
                    if r.n_peaks == k and r.n_peaks >= 2]
        seed_set = {id(s) for s in seeds}
        members = [r for r in eligible if id(r) not in seed_set]
        if not members:
            return []
        uf = _UnionFind([r.sequence for r in eligible]
                        + [s.sequence for s in seeds
                           if s.sequence not in
                           {r.sequence for r in eligible}])
        for i, a in enumerate(eligible):
            for b in eligible[i + 1:]:
                if gaps_close(a, b):
                    continue
                score = self.link_score(a, b, scorer)
                if score is not None and score >= threshold:
                    uf.union(a.sequence, b.sequence)
        roots = {uf.find(s.sequence) for s in seeds}
        linked = [r for r in members if uf.find(r.sequence) in roots]
        return list(reversed(linked))
