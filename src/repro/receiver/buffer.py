"""Store of recent unmatched collisions (§4.2.2).

"The AP stores recent unmatched collisions (i.e., stores the received
complex samples). It is sufficient to store the few most recent collisions
because, in 802.11, colliding sources try to retransmit a failed
transmission as soon as the medium is available."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.correlation import CorrelationPeak

__all__ = ["CollisionRecord", "CollisionBuffer"]


# eq=False: records compare (and are removed) by identity. The generated
# field-wise __eq__ would compare the sample arrays, which raises on
# numpy's ambiguous truth value the moment deque.remove scans *past* a
# different record — silently leaving matched records in the buffer.
@dataclass(eq=False)
class CollisionRecord:
    """One stored collision: raw samples plus detected packet starts."""

    samples: np.ndarray
    peaks: list[CorrelationPeak]
    sequence: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def offset(self) -> int:
        """Offset Δ of the second packet relative to the first (samples)."""
        if len(self.peaks) < 2:
            raise ConfigurationError("record holds fewer than two packets")
        positions = sorted(p.position for p in self.peaks)
        return positions[1] - positions[0]


class CollisionBuffer:
    """A small FIFO of unmatched collision records."""

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ConfigurationError("buffer capacity must be >= 1")
        self._records: deque[CollisionRecord] = deque(maxlen=capacity)
        self._counter = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def add(self, samples, peaks, meta: dict | None = None) -> CollisionRecord:
        record = CollisionRecord(
            samples=np.asarray(samples, dtype=complex).ravel(),
            peaks=list(peaks),
            sequence=self._counter,
            meta=dict(meta or {}),
        )
        self._counter += 1
        self._records.append(record)
        return record

    def remove(self, record: CollisionRecord) -> bool:
        """Remove *record*; True when it was present.

        Callers that just matched a record must assert on the return value
        — a False here means the record was already evicted or removed, a
        logic error in the caller's bookkeeping, not a benign no-op.
        """
        try:
            self._records.remove(record)
        except ValueError:
            return False
        return True

    def prune(self, keep) -> int:
        """Drop every record for which ``keep(record)`` is falsy.

        Returns the number of records dropped. Used by long-running
        receivers to age out collisions whose retransmission window has
        passed (a stale record can never match, it only wastes scans).
        """
        survivors = [r for r in self._records if keep(r)]
        dropped = len(self._records) - len(survivors)
        if dropped:
            self._records.clear()
            self._records.extend(survivors)
        return dropped

    def newest_first(self) -> list[CollisionRecord]:
        """Candidates for matching, most recent first (retransmissions are
        expected to arrive immediately after the original collision)."""
        return list(reversed(self._records))

    def clear(self) -> None:
        self._records.clear()
