"""The ordinary 802.11 receive path: sync, estimate, track, demod, CRC.

This is both (a) the "Current 802.11" baseline of §5.1(e) and (b) the
standard decoder that a ZigZag AP tries *first* on every reception —
ZigZag only engages when this fails (§4.2, §5.1d).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FrameError
from repro.phy.constellation import BPSK, get_constellation
from repro.phy.crc import strip_crc32
from repro.phy.estimation import ChannelEstimate, estimate_noise_power
from repro.phy.frame import HEADER_BITS, FrameHeader, scramble_bits
from repro.phy.preamble import Preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.frontend import StreamConfig, SymbolStreamDecoder
from repro.receiver.result import DecodeResult

__all__ = ["StandardDecoder"]


@dataclass
class StandardDecoder:
    """Decode one packet from a capture, assuming no collision.

    Parameters
    ----------
    preamble / shaper:
        The known preamble and the system's pulse shaping.
    noise_power:
        Receiver noise floor; estimated blindly from the capture if None.
    sync_threshold:
        Normalized-correlation detection threshold for packet start.
    coarse_freq:
        Coarse frequency-offset prior for the expected sender (the AP keeps
        one per associated client, §4.2.1); refined from the preamble.
    track_phase / use_equalizer:
        Ablation switches (Table 5.1).
    """

    preamble: Preamble
    shaper: PulseShaper = field(default_factory=PulseShaper)
    noise_power: float | None = None
    sync_threshold: float = 0.6
    coarse_freq: float = 0.0
    track_phase: bool = True
    use_equalizer: bool = True
    equalizer_taps: int = 5

    def __post_init__(self) -> None:
        self._sync = Synchronizer(self.preamble, self.shaper,
                                  threshold=self.sync_threshold)

    def _config(self, noise_power: float) -> StreamConfig:
        return StreamConfig(
            preamble=self.preamble,
            shaper=self.shaper,
            noise_power=noise_power,
            track_phase=self.track_phase,
            use_equalizer=self.use_equalizer,
            equalizer_taps=self.equalizer_taps,
        )

    def decode(self, signal, start_position: int | None = None,
               estimate: ChannelEstimate | None = None) -> DecodeResult:
        """Decode the first packet found in *signal*.

        *start_position* (symbol-0 pulse-centre sample index) skips
        detection; *estimate* skips acquisition too.
        """
        y = np.asarray(signal, dtype=complex).ravel()
        noise_power = self.noise_power if self.noise_power is not None \
            else estimate_noise_power(y)

        if start_position is None:
            try:
                peaks = self._sync.detect(y, coarse_freq=self.coarse_freq,
                                          max_peaks=1)
            except Exception:
                return DecodeResult.failure("capture too short for sync")
            if not peaks:
                return DecodeResult.failure("no preamble found")
            start_position = peaks[0].position

        if estimate is None:
            estimate = self._sync.acquire(
                y, start_position, coarse_freq=self.coarse_freq,
                noise_power=noise_power)
        start = start_position + estimate.sampling_offset
        stream = SymbolStreamDecoder(self._config(noise_power), estimate,
                                     start)
        return self.decode_with_stream(y, stream)

    def decode_with_stream(self, y: np.ndarray,
                           stream: SymbolStreamDecoder) -> DecodeResult:
        """Shared tail of the decode path: header, body, CRC."""
        pre_len = len(self.preamble)
        sps = self.shaper.sps
        available = int(np.floor(
            (y.size - stream.start + self.shaper.delay) / sps))
        first_stop = pre_len + HEADER_BITS
        if available < first_stop + 32:
            return DecodeResult.failure("capture truncates the header")

        head_chunk = stream.decode_chunk(y, first_stop)
        header_bits = scramble_bits(
            BPSK.demodulate(head_chunk.decisions[pre_len:]))
        try:
            header = FrameHeader.from_bits(header_bits)
        except FrameError as exc:
            return DecodeResult.failure(f"header unparseable: {exc}")

        body_constellation = get_constellation(header.modulation)
        stream.set_body_constellation(body_constellation)
        k = body_constellation.bits_per_symbol
        tail_bits = header.payload_bits + 32
        n_tail_symbols = (tail_bits + k - 1) // k
        total = first_stop + n_tail_symbols
        if total > available:
            return DecodeResult.failure(
                "capture shorter than the advertised frame length")

        tail_chunk = stream.decode_chunk(y, total)
        tail_decoded = scramble_bits(
            body_constellation.demodulate(tail_chunk.decisions),
            offset=HEADER_BITS)
        bits = np.concatenate([header_bits, tail_decoded[:tail_bits]])
        payload_and_header, crc_ok = strip_crc32(bits)
        payload = payload_and_header[HEADER_BITS:]
        soft = np.concatenate([head_chunk.soft[pre_len:], tail_chunk.soft])
        return DecodeResult(
            success=crc_ok,
            bits=bits,
            header=header,
            payload=payload,
            soft_symbols=soft,
            estimate=stream.estimate,
            via="standard",
            detail="" if crc_ok else "CRC mismatch",
        )
