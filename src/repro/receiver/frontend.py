"""The incremental "standard decoder" invoked chunk-by-chunk (§4.2.3a).

A :class:`SymbolStreamDecoder` owns the receive state for *one packet in one
capture*: fractional start position, channel estimate, decision-directed
phase tracker, and (optionally) a linear equalizer trained on the preamble.
Chunks must be decoded left-to-right; each call consumes the next symbol
range from an interference-free signal and returns soft symbols, hard
decisions, and the per-symbol tracked phases that the ZigZag re-encoder
needs for accurate subtraction.

The paper's key architectural claim — "ZigZag can employ a standard 802.11
decoder as a black box" — maps here: :class:`StandardDecoder` uses this
class to decode a whole packet as one big chunk, while the ZigZag engine
feeds it the zigzag chunk schedule. Both paths run the identical DSP.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.constellation import BPSK, Constellation
from repro.phy.equalizer import LmsEqualizer
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import HEADER_BITS
from repro.phy.preamble import Preamble
from repro.phy.pulse import MatchedSampler, PulseShaper
from repro.phy.tracking import PhaseTracker

__all__ = ["StreamConfig", "ChunkDecode", "SymbolStreamDecoder"]


@dataclass(frozen=True)
class StreamConfig:
    """Shared knobs for every stream decoder in one receiver.

    ``track_phase`` and ``use_equalizer`` exist specifically to reproduce
    the Table 5.1 ablations (frequency/phase tracking off; ISI filter off).
    """

    preamble: Preamble
    shaper: PulseShaper = PulseShaper()
    noise_power: float = 1.0
    track_phase: bool = True
    use_equalizer: bool = True
    equalizer_taps: int = 5
    kp: float = 0.08
    ki: float = 0.004
    edge_guard: int = 3


@dataclass
class ChunkDecode:
    """Output of decoding one chunk: symbol range [i0, i1) of the packet."""

    i0: int
    i1: int
    soft: np.ndarray
    decisions: np.ndarray
    phases: np.ndarray

    @property
    def effective_symbols(self) -> np.ndarray:
        """Decisions re-rotated by the tracked phases — what the channel
        actually carried, as far as the receiver can tell. This is the input
        to the re-encoder (§4.2.3b)."""
        return self.decisions * np.exp(1j * self.phases)


class SymbolStreamDecoder:
    """Stateful per-(packet, capture) decoder; see module docstring.

    Parameters
    ----------
    config:
        Shared :class:`StreamConfig`.
    estimate:
        Initial channel estimate (gain, freq offset). The gain is refined
        once the full preamble has been decoded interference-free.
    start:
        Fractional sample position of symbol 0's pulse centre in the
        capture buffer (integer peak position + sub-sample offset); symbol
        k sits at ``start + k * sps``.
    body_constellation:
        Constellation of the payload region (preamble and header are BPSK).
    data_aided_preamble:
        When True (forward decoding), symbols with index < L are tracked
        against the known preamble and used to refine gain / train the
        equalizer. Backward (time-reversed) streams set this False.
    """

    def __init__(self, config: StreamConfig, estimate: ChannelEstimate,
                 start: float, body_constellation: Constellation = BPSK,
                 data_aided_preamble: bool = True,
                 reversed_total: int | None = None,
                 pilots: np.ndarray | None = None) -> None:
        self.config = config
        self.estimate = estimate
        self.start = float(start)
        self.body_constellation = body_constellation
        self.data_aided_preamble = data_aided_preamble and reversed_total is None
        self.reversed_total = reversed_total
        # Optional per-symbol reference points (e.g. the forward pass's
        # decisions for a backward stream): the tracker locks to these
        # instead of its own slicer, hardening phase tracking without
        # affecting the independence of the measured soft symbols.
        self.pilots = None if pilots is None \
            else np.asarray(pilots, dtype=complex).ravel()
        self.sampler = MatchedSampler(config.shaper)
        self.tracker = PhaseTracker(kp=config.kp, ki=config.ki,
                                    enabled=config.track_phase)
        self.equalizer: LmsEqualizer | None = None
        self.channel_isi = None  # IsiFilter for re-encoding, once trained
        self.cursor = 0
        self._preamble_len = len(config.preamble) if data_aided_preamble else 0
        self._pre_acc = np.full(self._preamble_len, np.nan + 0j, dtype=complex)
        self._refined = not data_aided_preamble
        self._derotate_powers: dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Region bookkeeping
    # ------------------------------------------------------------------
    def constellation_at(self, index: int) -> Constellation:
        """Constellation used for symbol *index* (BPSK until the payload).

        For time-reversed streams (``reversed_total`` set) the payload
        region sits at the *front* and the preamble/header (BPSK) at the
        back.
        """
        if self.reversed_total is not None:
            boundary = self.reversed_total - (
                len(self.config.preamble) + HEADER_BITS)
            return self.body_constellation if index < boundary else BPSK
        if index < self._preamble_len + HEADER_BITS:
            return BPSK
        return self.body_constellation

    def set_body_constellation(self, constellation: Constellation) -> None:
        """Install the payload constellation once the header is parsed."""
        self.body_constellation = constellation

    # ------------------------------------------------------------------
    # Core chunk decode
    # ------------------------------------------------------------------
    def _interpolate(self, signal: np.ndarray, i0: int, i1: int) -> np.ndarray:
        sps = self.config.shaper.sps
        return self.sampler.sample(signal, self.start + sps * i0, i1 - i0)

    def _static_derotate(self, raw: np.ndarray, i0: int) -> np.ndarray:
        """Remove the static channel model: gain and frequency-offset ramp.

        The ramp is geometric in the symbol index, so its per-symbol
        rotation powers are cached per frequency estimate (it changes at
        most once, at preamble refinement) and each chunk costs one scalar
        rotation plus one vector multiply instead of fresh trigonometry.
        """
        est = self.estimate
        sps = self.config.shaper.sps
        gain = est.gain if est.gain != 0 else 1e-12
        freq = est.freq_offset
        powers = self._derotate_powers.get(freq)
        if powers is None or powers.size < raw.size:
            capacity = max(raw.size, 64,
                           0 if powers is None else 2 * powers.size)
            steps = np.full(capacity,
                            cmath.exp(-2j * math.pi * freq * sps))
            steps[0] = 1.0 + 0j
            powers = np.cumprod(steps)
            self._derotate_powers[freq] = powers
        rot0 = cmath.exp(-2j * math.pi * freq * (self.start + sps * i0))
        return raw * (powers[:raw.size] * (rot0 / gain))

    def decode_chunk(self, signal, i1: int) -> ChunkDecode:
        """Decode symbols ``[cursor, i1)`` from an interference-free signal.

        *signal* is the full capture buffer (already cleaned of other
        packets over this chunk's footprint). Chunks are strictly
        sequential; ``i1`` must exceed the current cursor.
        """
        i0 = self.cursor
        if i1 <= i0:
            raise ConfigurationError(
                f"chunk end {i1} must exceed cursor {i0}"
            )
        # The guard region only feeds the equalizer's FIR edges; when no
        # equalizer has been trained (clean channels at moderate SNR) the
        # guard symbols would be sampled, derotated, and sliced away.
        guard = self.config.edge_guard \
            if self.config.use_equalizer and self.equalizer is not None \
            else 0
        lo = max(0, i0 - guard)
        raw = self._interpolate(np.asarray(signal, dtype=complex), lo, i1 + guard)
        z = self._static_derotate(raw, lo)
        if self.equalizer is not None:
            z = self.equalizer.equalize(z)
        z = z[i0 - lo: i0 - lo + (i1 - i0)]

        soft = np.empty(i1 - i0, dtype=complex)
        decisions = np.empty(i1 - i0, dtype=complex)
        phases = np.empty(i1 - i0, dtype=float)
        # Process in segments of constant constellation / knowledge.
        seg_start = i0
        while seg_start < i1:
            seg_end = self._segment_end(seg_start, i1)
            local = slice(seg_start - i0, seg_end - i0)
            known = None
            is_preamble_segment = (self.data_aided_preamble
                                   and seg_start < self._preamble_len)
            if is_preamble_segment:
                known = self.config.preamble.symbols[seg_start:seg_end]
            elif self.pilots is not None and seg_end <= self.pilots.size:
                candidate = self.pilots[seg_start:seg_end]
                if np.all(candidate != 0):
                    known = candidate
            constellation = self.constellation_at(seg_start)
            seg_soft, seg_dec, seg_phases = self.tracker.process(
                z[local], constellation, known=known)
            soft[local] = seg_soft
            decisions[local] = seg_dec
            phases[local] = seg_phases
            if is_preamble_segment:
                self._pre_acc[seg_start:seg_end] = z[local]
            seg_start = seg_end

        self.cursor = i1
        if not self._refined and not np.any(np.isnan(self._pre_acc)):
            self._refine_from_preamble()
        return ChunkDecode(i0, i1, soft, decisions, phases)

    def _segment_end(self, start: int, limit: int) -> int:
        """Next boundary where knowledge/constellation changes."""
        if self.reversed_total is not None:
            pre_hdr = len(self.config.preamble) + HEADER_BITS
            boundaries = [self.reversed_total - pre_hdr]
        else:
            boundaries = [self._preamble_len,
                          self._preamble_len + HEADER_BITS]
        for b in boundaries:
            if start < b < limit:
                return b
        return limit

    # ------------------------------------------------------------------
    # Preamble-driven refinement (§4.2.4a + equalizer training)
    # ------------------------------------------------------------------
    def _refine_from_preamble(self) -> None:
        """Refine the gain and train the equalizer from the clean preamble.

        ``_pre_acc`` holds the preamble region after static derotation and
        tracker correction is *not* applied (we stored pre-tracker z), so a
        least-squares fit against the known symbols measures the residual
        complex gain; folding it into the estimate makes subsequent chunks
        (and crucially the re-encoded images) more accurate.
        """
        self._refined = True
        s = self.config.preamble.symbols
        z = self._pre_acc
        residual_gain = np.vdot(s, z) / np.vdot(s, s)
        if abs(residual_gain) > 1e-9:
            self.estimate = self.estimate.with_gain(
                self.estimate.gain * residual_gain)
            # The tracker has been absorbing exactly this static phase; now
            # that the static model includes it, re-zero the loop so the
            # next chunk is not double-corrected.
            self.tracker.phase -= float(np.angle(residual_gain))
            z = z / residual_gain
        if self.config.use_equalizer and z.size >= self.config.equalizer_taps:
            # Only train when the preamble residual exceeds what receiver
            # noise alone explains — otherwise a 32-symbol fit would add
            # pure misadjustment noise (no ISI to remove).
            residual_power = float(np.mean(np.abs(z - s) ** 2))
            gain_power = abs(self.estimate.gain) ** 2
            noise_in_symbol_domain = self.config.noise_power / max(
                gain_power, 1e-30)
            if residual_power > 1.5 * noise_in_symbol_domain:
                eq = LmsEqualizer(n_taps=self.config.equalizer_taps)
                eq.fit_least_squares(
                    z, s, ridge=2.0 * z.size * residual_power)
                self.equalizer = eq
                self.channel_isi = eq.inverse_channel(
                    max(9, 2 * self.config.equalizer_taps + 1))

    # ------------------------------------------------------------------
    # State export for backward decoding / re-encoding
    # ------------------------------------------------------------------
    @property
    def tracked_freq_cycles(self) -> float:
        """Residual frequency the tracker converged to, cycles/symbol."""
        return self.tracker.freq / (2.0 * np.pi)

    def total_freq_offset(self) -> float:
        """Static estimate + tracked residual, cycles per sample."""
        sps = self.config.shaper.sps
        return self.estimate.freq_offset + self.tracked_freq_cycles / sps

    def phase_at_cursor(self) -> float:
        """Tracker phase that will apply to the next symbol."""
        return self.tracker.phase
