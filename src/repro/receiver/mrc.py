"""Maximal Ratio Combining (§4.3b and Fig 4-1d).

MRC combines several noisy estimates of the same symbol stream, weighting
each by its reliability (channel power over noise). The paper's footnote
example: BPSK receptions -0.2 and +0.5 of the same bit combine to
(0.5 - 0.2) / 2 = 0.15 > 0, decoding "1" — exactly what
:func:`mrc_combine` computes with equal weights.

ZigZag uses MRC twice: combining forward- and backward-pass symbol
estimates (every bit appears in both collisions), and combining the two
faulty copies of Bob's packet in the capture-effect pattern of Fig 4-1d.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.constellation import Constellation

__all__ = ["mrc_combine", "mrc_decide"]


def mrc_combine(streams, weights=None) -> np.ndarray:
    """Weighted average of several gain-normalized soft symbol streams.

    Parameters
    ----------
    streams:
        Sequence of equal-length complex arrays, each an independent soft
        estimate of the same transmitted symbols (already normalized so a
        noiseless estimate equals the constellation point).
    weights:
        Per-stream reliabilities (e.g. |H|^2 / sigma^2). Equal by default.
        Entries may be per-stream scalars or per-symbol arrays.
    """
    arrays = [np.asarray(s, dtype=complex).ravel() for s in streams]
    if not arrays:
        raise ConfigurationError("mrc_combine needs at least one stream")
    length = arrays[0].size
    if any(a.size != length for a in arrays):
        raise ConfigurationError("all MRC streams must have equal length")
    if weights is None:
        weights = [1.0] * len(arrays)
    if len(weights) != len(arrays):
        raise ConfigurationError("one weight per stream required")
    weight_arrays = [np.broadcast_to(np.asarray(w, dtype=float), (length,))
                     for w in weights]
    numerator = np.zeros(length, dtype=complex)
    denominator = np.zeros(length, dtype=float)
    for arr, w in zip(arrays, weight_arrays):
        numerator += w * arr
        denominator += w
    if np.any(denominator <= 0):
        raise ConfigurationError("MRC weights must sum to a positive value")
    return numerator / denominator


def mrc_decide(streams, constellation: Constellation,
               weights=None) -> np.ndarray:
    """Combine soft streams and hard-demodulate the result to bits."""
    combined = mrc_combine(streams, weights)
    return constellation.demodulate(combined)
