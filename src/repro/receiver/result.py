"""Result containers shared by all receiver designs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import FrameHeader
from repro.utils.bits import bit_error_rate

__all__ = ["DecodeResult", "PacketObservation"]


@dataclass
class DecodeResult:
    """Outcome of decoding one packet (by any receiver design).

    Attributes
    ----------
    success:
        True iff the frame parsed and its CRC-32 matched.
    bits:
        The recovered body bits (header + payload + CRC), possibly empty
        when synchronization failed outright.
    header:
        Parsed frame header when available (may be present even if the CRC
        failed — useful for retransmission matching).
    payload:
        Recovered payload bits (empty on hard failure).
    soft_symbols:
        Gain-normalized soft symbol estimates for the *body* (after
        equalization and phase correction); what MRC combines.
    estimate:
        The receiver's final channel estimate for this packet.
    via:
        Which path produced the result: "standard", "zigzag", "sic", ...
    """

    success: bool
    bits: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    header: FrameHeader | None = None
    payload: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    soft_symbols: np.ndarray = field(
        default_factory=lambda: np.zeros(0, complex))
    estimate: ChannelEstimate | None = None
    via: str = "standard"
    detail: str = ""

    def ber_against(self, true_bits) -> float:
        """BER versus ground truth, counting missing bits as errors.

        The paper's loss metric treats a packet as received iff its BER is
        below 1e-3 (§5.1f); undecoded packets therefore count as BER 0.5+.
        """
        truth = np.asarray(true_bits, dtype=np.uint8).ravel()
        if truth.size == 0:
            return 0.0
        if self.bits.size < truth.size:
            got = self.bits
            missing = truth.size - got.size
            errors = int(np.count_nonzero(got != truth[:got.size])) + missing
            return errors / truth.size
        return bit_error_rate(truth, self.bits[:truth.size])

    def delivered(self, true_bits, ber_threshold: float = 1e-3) -> bool:
        """The paper's delivery rule: BER below threshold (§5.1f)."""
        return self.ber_against(true_bits) < ber_threshold

    @classmethod
    def failure(cls, detail: str, via: str = "standard") -> "DecodeResult":
        return cls(success=False, via=via, detail=detail)


@dataclass
class PacketObservation:
    """Ground truth about one transmitted packet, for evaluation only."""

    body_bits: np.ndarray
    label: str = ""
    offset: int = 0
    n_symbols: int = 0
