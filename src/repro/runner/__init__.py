"""Parallel Monte-Carlo runner (the supported experiment entry point).

Every figure in the paper is a Monte-Carlo sweep over collision
scenarios. This subsystem turns those sweeps into data, declaratively:

- :mod:`repro.runner.spec` — :class:`ScenarioSpec`, a declarative
  description of a collision scenario (senders, channel, backoff, design
  under test) loadable from TOML;
- :mod:`repro.runner.seeding` — deterministic, spawn-safe per-trial
  seeding built on :class:`numpy.random.SeedSequence`;
- :mod:`repro.runner.runner` — :class:`MonteCarloRunner`, which fans
  trials out across worker processes in batches and aggregates
  per-trial metrics into means with confidence intervals;
- :mod:`repro.runner.scenarios` — the scenario registry mapping a spec's
  ``kind`` to a trial function;
- :mod:`repro.runner.cache` — a per-process cache of expensive reference
  signals (preambles, pulse shapers, synchronizers) reused across trials;
- :mod:`repro.runner.resilience` — the supervision layer: per-trial
  fault isolation (:class:`FailurePolicy`, :class:`TrialFailure`), pool
  crash recovery and watchdog timeouts (:class:`PoolSupervisor`), and
  checkpoint/resume journaling (:class:`CheckpointJournal`);
- :mod:`repro.runner.chaos` — deterministic fault injection
  (:class:`FaultSpec`) for proving the supervision layer never changes
  what a surviving trial computes;
- :mod:`repro.runner.cli` — the ``python -m repro`` command line.

Results are bit-identical for a given seed regardless of worker count:
trial *i* always draws from ``SeedSequence(seed, spawn_key=(i,))`` and
aggregation is ordered by trial index. The same holds under faults: a
retried trial re-derives the same child sequence, so chaos-injected runs
agree bit-for-bit with fault-free runs on every surviving trial.
"""

from repro.runner.builders import hidden_pair_scenario
from repro.runner.cache import SignalCache, cache_stats, shared_cache
from repro.runner.chaos import FaultSpec
from repro.runner.resilience import (
    CheckpointJournal,
    FailurePolicy,
    SupervisorStats,
    TrialFailure,
)
from repro.runner.results import (
    RunResult,
    SweepResult,
    TrialResult,
    merge_flow_stats,
)
from repro.runner.runner import MonteCarloRunner
from repro.runner.shm import cleanup_arenas, find_leaked_arenas
from repro.runner.scenarios import (
    TrialContext,
    available_scenarios,
    get_scenario,
    scenario,
    scenario_designs,
)
from repro.runner.seeding import trial_rng, trial_seed, trial_seed_sequence
from repro.runner.spec import (
    BackoffSpec,
    ChannelSpec,
    ImpairmentsSpec,
    ScenarioSpec,
    SenderSpec,
    parse_sweep,
)

__all__ = [
    "BackoffSpec",
    "ChannelSpec",
    "CheckpointJournal",
    "FailurePolicy",
    "FaultSpec",
    "ImpairmentsSpec",
    "MonteCarloRunner",
    "RunResult",
    "ScenarioSpec",
    "SenderSpec",
    "SignalCache",
    "SupervisorStats",
    "SweepResult",
    "TrialContext",
    "TrialFailure",
    "TrialResult",
    "available_scenarios",
    "cache_stats",
    "cleanup_arenas",
    "find_leaked_arenas",
    "get_scenario",
    "hidden_pair_scenario",
    "merge_flow_stats",
    "parse_sweep",
    "scenario",
    "scenario_designs",
    "shared_cache",
    "trial_rng",
    "trial_seed",
    "trial_seed_sequence",
]
