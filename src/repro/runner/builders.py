"""Signal-level scenario builders shared by scenarios, tests, benchmarks.

These build raw collision captures (with ground-truth frames and channel
placements) for trial functions that drive the ZigZag machinery directly,
below the :class:`~repro.testbed.experiment.PairExperiment` level.
Promoted from the test helpers so benchmarks no longer reach into
``tests/``; ``tests/helpers.py`` re-exports them.

:func:`build_stream_session` is the declarative front of the streaming
closed-loop subsystem: it maps a :class:`~repro.runner.spec.ScenarioSpec`
onto a :class:`~repro.link.LinkSession` (clients from ``[[sender]]``
entries or ``params.n_clients``, topology from ``params.hidden_pairs``,
session knobs from ``[params]``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.link import (
    LinkSession,
    MultiCellConfig,
    MultiCellSession,
    SessionConfig,
    StreamClient,
    Topology,
)
from repro.phy.channel import ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.impairments import BurstNoise, ImpairmentPipeline
from repro.phy.medium import Transmission, synthesize
from repro.phy.sync import Synchronizer
from repro.runner.cache import cached_preamble, cached_shaper, shared_cache
from repro.testbed.deployment import CellPlan, Deployment
from repro.utils.bits import random_bits
from repro.zigzag.engine import PacketSpec, PlacementParams

__all__ = ["STREAM_CLIENT_NAMES", "build_cell_session",
           "build_city_session", "build_stream_session", "get_deployment",
           "hidden_pair_scenario"]


def hidden_pair_scenario(rng, preamble, shaper, *, snr_db=12.0,
                         payload_bits=200, offsets=(160, 64),
                         phase_noise=1e-3, noise_power=1.0,
                         freq_spread=4e-3, oracle=False,
                         snr_b_db=None, sender_impairments=None,
                         capture_impairments=None):
    """Build two collisions of the same (Alice, Bob) packet pair.

    *sender_impairments* (an :class:`~repro.phy.impairments.
    ImpairmentPipeline`) rides on both senders' channels;
    *capture_impairments* distorts each summed capture (AP front end /
    interferers). Returns (captures, frames, specs, placements).
    """
    amp_a = np.sqrt(10 ** (snr_db / 10) * noise_power)
    amp_b = np.sqrt(10 ** ((snr_b_db if snr_b_db is not None else snr_db)
                           / 10) * noise_power)
    frames = {
        "A": Frame.make(random_bits(payload_bits, rng), src=1, seq=1,
                        preamble=preamble),
        "B": Frame.make(random_bits(payload_bits, rng), src=2, seq=2,
                        preamble=preamble),
    }
    params = {
        "A": ChannelParams(
            gain=amp_a * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-freq_spread, freq_spread)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=phase_noise,
            impairments=sender_impairments),
        "B": ChannelParams(
            gain=amp_b * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-freq_spread, freq_spread)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=phase_noise,
            impairments=sender_impairments),
    }
    captures = []
    for bob_offset in offsets:
        captures.append(synthesize(
            [Transmission.from_symbols(frames["A"].symbols, shaper,
                                       params["A"], 0, "A"),
             Transmission.from_symbols(frames["B"].symbols, shaper,
                                       params["B"], bob_offset, "B")],
            noise_power, rng, leading=8, tail=40,
            impairments=capture_impairments))
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    placements = []
    for ci, capture in enumerate(captures):
        for t in capture.transmissions:
            if oracle:
                from repro.phy.estimation import ChannelEstimate
                est = ChannelEstimate(
                    gain=t.params.gain,
                    freq_offset=t.params.freq_offset,
                    sampling_offset=t.params.sampling_offset,
                    snr_db=snr_db)
            else:
                coarse = params[t.label].freq_offset \
                    + rng.normal(0, 1.5e-5)
                est = sync.acquire(capture.samples, t.symbol0,
                                   coarse_freq=coarse,
                                   noise_power=noise_power)
            placements.append(PlacementParams(
                t.label, ci, t.symbol0 + est.sampling_offset, est))
    specs = {name: PacketSpec(name, frames[name].n_symbols, BPSK)
             for name in frames}
    return captures, frames, specs, placements


# Default client names for streaming sessions built without explicit
# [[sender]] tables; also bounds n_clients / n_senders.
STREAM_CLIENT_NAMES = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _parse_hidden_pairs(text) -> tuple[tuple[str, str], ...]:
    """``"A:B,B:C"`` -> ``(("A", "B"), ("B", "C"))``."""
    pairs = []
    for piece in str(text).split(","):
        a, sep, b = piece.strip().partition(":")
        if not sep or not a or not b:
            raise ConfigurationError(
                f"hidden_pairs must look like 'A:B,B:C', got {text!r}")
        pairs.append((a.strip(), b.strip()))
    return tuple(pairs)


def _parse_hidden_cliques(text) -> tuple[tuple[str, ...], ...]:
    """``"A:B:C,D:E"`` -> ``(("A", "B", "C"), ("D", "E"))``.

    Each comma-separated group is one set of mutually-hidden clients.
    """
    cliques = []
    for piece in str(text).split(","):
        names = tuple(n.strip() for n in piece.strip().split(":"))
        if len(names) < 2 or not all(names):
            raise ConfigurationError(
                f"hidden_cliques must look like 'A:B:C,D:E', got {text!r}")
        cliques.append(names)
    return tuple(cliques)


def build_stream_session(spec, rng: np.random.Generator, design: str,
                         default_load: float | None = None) -> LinkSession:
    """A :class:`~repro.link.LinkSession` from a declarative spec.

    Clients come from the spec's ``[[sender]]`` entries (name, SNR,
    optional fixed ``freq_offset`` and per-client ``offered_load``); with
    none declared, ``params.n_clients`` (default 3) symmetric clients
    named A, B, C, ... at ``params.snr_db`` are created. Frequency
    offsets not pinned by the spec are drawn from ± ``channel.
    freq_spread`` with *rng* — build the two compared designs' sessions
    from identically-seeded generators for common random numbers.

    Recognized ``[params]`` extras: ``n_clients``, ``snr_db``,
    ``max_attempts``, ``chunk_samples``, ``buffer_max_age``,
    ``hidden_pairs`` (e.g. ``"A:B"``; every unlisted pair then senses
    perfectly), ``hidden_cliques`` (e.g. ``"A:B:C"``: groups of
    mutually-hidden clients, enabling the AP's k-way collision
    resolution), ``max_collision_packets`` (override the derived k),
    ``offered_load`` (via *default_load*), ``engine`` (``"event"``, the
    default heap-scheduled core, or ``"slot"``, the reference per-slot
    walk — see :mod:`repro.link.events`).
    """
    spread = spec.channel.freq_spread
    if spec.senders:
        entries = [(s.name, s.snr_db, s.freq_offset,
                    s.offered_load if s.offered_load is not None
                    else default_load)
                   for s in spec.senders]
    else:
        n_clients = int(spec.param("n_clients", 3))
        if not 1 <= n_clients <= len(STREAM_CLIENT_NAMES):
            raise ConfigurationError(
                f"params.n_clients must be in [1, {len(STREAM_CLIENT_NAMES)}]")
        snr = float(spec.param("snr_db", 12.0))
        entries = [(STREAM_CLIENT_NAMES[i], snr, None, default_load)
                   for i in range(n_clients)]
    clients = [
        StreamClient(
            name=name, src=i + 1, snr_db=snr,
            freq_offset=(freq if freq is not None
                         else float(rng.uniform(-spread, spread))),
            offered_load=load)
        for i, (name, snr, freq, load) in enumerate(entries)
    ]
    hidden = spec.param("hidden_pairs")
    cliques = spec.param("hidden_cliques")
    max_k = spec.param("max_collision_packets")
    imp = spec.impairments
    config = SessionConfig(
        payload_bits=spec.payload_bits,
        n_packets=spec.n_packets,
        max_attempts=int(spec.param("max_attempts", 6)),
        noise_power=spec.channel.noise_power,
        slot_samples=spec.slot_samples,
        backoff=spec.backoff.build(),
        phase_noise_std=spec.channel.phase_noise_std,
        tx_evm=spec.channel.tx_evm,
        coarse_freq_error=spec.channel.coarse_freq_error,
        sense_probability=spec.sense_probability,
        hidden_pairs=(_parse_hidden_pairs(hidden)
                      if hidden is not None else None),
        hidden_cliques=(_parse_hidden_cliques(cliques)
                        if cliques is not None else None),
        max_collision_packets=(int(max_k)
                               if max_k is not None else None),
        modulation=spec.modulation,
        preamble_length=spec.preamble_length,
        chunk_samples=int(spec.param("chunk_samples", 1024)),
        buffer_max_age=int(spec.param("buffer_max_age", 24)),
        engine=str(spec.param("engine", "event")),
        sender_impairments=(imp.sender_pipeline() if imp.sender else None),
        capture_impairments=(imp.capture_pipeline()
                             if imp.capture else None),
    )
    return LinkSession(config, clients, design=design, rng=rng,
                       preamble=cached_preamble(spec.preamble_length),
                       shaper=cached_shaper())


# ----------------------------------------------------------------------
# Geometry-derived deployments (the [deployment] spec table)
# ----------------------------------------------------------------------
def get_deployment(spec) -> Deployment:
    """The spec's generated :class:`Deployment`, process-locally cached.

    A deployment is pure in its (config, seed) pair, so every trial of a
    run — and every worker process — regenerates the identical layout;
    the cache just skips the pathloss-matrix draw after the first trial
    in each process.
    """
    dep = spec.deployment
    if dep.is_empty:
        raise ConfigurationError(
            "this scenario derives its topology from geometry; "
            "add a [deployment] table (n_aps, n_clients, ...) to the spec")
    dep.validate()
    return shared_cache().get(
        ("deployment", dep),
        lambda: Deployment.generate(dep.config(), seed=dep.seed))


# At most this many out-of-cell interferers are approximated per cell in
# sharded mode; the strongest dominate the sum and each stage costs one
# noise draw per chunk.
_MAX_APPROX_INTERFERERS = 3


def _interference_stages(spec, deployment: Deployment,
                         plan: CellPlan) -> list:
    """Bursty-noise stand-ins for the strongest out-of-cell transmitters.

    Sharded (one-cell-per-worker) runs cannot exchange real cross-cell
    waveforms, so each foreign client the AP hears above the interference
    floor becomes a ``burst_noise`` stage: power at the victim AP from
    the SNR matrix, duty cycle from the client's offered load (a
    saturated client holds the medium roughly a packet in three once MAC
    overhead and backoff are paid), burst length of one air chunk.
    """
    dep = spec.deployment
    stages = []
    heard = deployment.interferers(plan.ap, dep.interference_floor_db)
    for client, snr in heard[:_MAX_APPROX_INTERFERERS]:
        load = dep.client_offered_load(client)
        duty = 0.35 if load is None else min(1.0, float(load))
        stages.append(BurstNoise(
            power_db=float(snr), duty_cycle=duty,
            burst_samples=int(spec.param("chunk_samples", 1024))))
    return stages


def build_cell_session(spec, rng: np.random.Generator, design: str,
                       deployment: Deployment, plan: CellPlan, *,
                       approximate_interference: bool = False
                       ) -> LinkSession:
    """One cell of a deployment as a :class:`~repro.link.LinkSession`.

    Clients carry the plan's derived names, global ``src`` ids and
    serving-AP SNRs; the topology is the plan's derived sense
    probabilities (:meth:`Topology.from_cell`), and per-client offered
    load comes from the ``[deployment]`` load mix. With
    *approximate_interference* the strongest out-of-cell transmitters
    ride the capture pipeline as bursty noise (sharded mode); leave it
    off when a :class:`~repro.link.MultiCellSession` exchanges the real
    waveforms instead.
    """
    dep = spec.deployment
    spread = spec.channel.freq_spread
    clients = [
        StreamClient(
            name=name, src=src, snr_db=snr,
            freq_offset=float(rng.uniform(-spread, spread)),
            offered_load=dep.client_offered_load(index))
        for name, src, snr, index
        in zip(plan.names, plan.srcs, plan.snr_db, plan.clients)
    ]
    topology = Topology.from_cell(plan)
    imp = spec.impairments
    capture = imp.capture_pipeline() if imp.capture else None
    if approximate_interference:
        stages = _interference_stages(spec, deployment, plan)
        if stages:
            capture = ImpairmentPipeline(
                tuple(capture.stages if capture else ()) + tuple(stages))
    # Big derived cells can contain large hidden cliques; cap the AP's
    # k-way resolution cost unless the spec raises it explicitly.
    max_k = min(topology.collision_packets(),
                int(spec.param("max_collision_packets", 4)))
    config = SessionConfig(
        payload_bits=spec.payload_bits,
        n_packets=spec.n_packets,
        max_attempts=int(spec.param("max_attempts", 6)),
        noise_power=spec.channel.noise_power,
        slot_samples=spec.slot_samples,
        backoff=spec.backoff.build(),
        phase_noise_std=spec.channel.phase_noise_std,
        tx_evm=spec.channel.tx_evm,
        coarse_freq_error=spec.channel.coarse_freq_error,
        topology=topology,
        max_collision_packets=max_k,
        modulation=spec.modulation,
        preamble_length=spec.preamble_length,
        chunk_samples=int(spec.param("chunk_samples", 1024)),
        buffer_max_age=int(spec.param("buffer_max_age", 24)),
        engine=str(spec.param("engine", "event")),
        sender_impairments=(imp.sender_pipeline() if imp.sender else None),
        capture_impairments=capture,
    )
    return LinkSession(config, clients, design=design, rng=rng,
                       preamble=cached_preamble(spec.preamble_length),
                       shaper=cached_shaper())


def build_city_session(spec, rng: np.random.Generator,
                       design: str) -> MultiCellSession:
    """Every populated cell of the spec's deployment, coupled.

    Builds one event-engine session per cell (each from its own child
    generator of *rng*, so the cell count doesn't perturb per-cell
    streams) and wraps them in a :class:`~repro.link.MultiCellSession`
    that exchanges real inter-cell interference waveforms at horizon
    boundaries — no bursty-noise approximation. With
    ``deployment.coupled_workers != 1`` the coordinator steps cells on
    a pool of pinned worker processes (``repro.link.parallel``), with
    bit-identical results.
    """
    deployment = get_deployment(spec)
    dep = spec.deployment
    cells = []
    for plan in deployment.cells():
        cell_rng = np.random.default_rng(int(rng.integers(1 << 63)))
        cells.append((plan, build_cell_session(
            spec, cell_rng, design, deployment, plan,
            approximate_interference=False)))
    return MultiCellSession(
        deployment, cells,
        config=MultiCellConfig(
            horizon_chunks=dep.horizon_chunks,
            interference_floor_db=dep.interference_floor_db,
            workers=dep.coupled_workers,
            faults=(spec.faults if not spec.faults.is_empty else None)),
        rng=np.random.default_rng(int(rng.integers(1 << 63))))
