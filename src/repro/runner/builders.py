"""Signal-level scenario builders shared by scenarios, tests, benchmarks.

These build raw collision captures (with ground-truth frames and channel
placements) for trial functions that drive the ZigZag machinery directly,
below the :class:`~repro.testbed.experiment.PairExperiment` level.
Promoted from the test helpers so benchmarks no longer reach into
``tests/``; ``tests/helpers.py`` re-exports them.
"""

from __future__ import annotations

import numpy as np

from repro.phy.channel import ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.sync import Synchronizer
from repro.utils.bits import random_bits
from repro.zigzag.engine import PacketSpec, PlacementParams

__all__ = ["hidden_pair_scenario"]


def hidden_pair_scenario(rng, preamble, shaper, *, snr_db=12.0,
                         payload_bits=200, offsets=(160, 64),
                         phase_noise=1e-3, noise_power=1.0,
                         freq_spread=4e-3, oracle=False,
                         snr_b_db=None, sender_impairments=None,
                         capture_impairments=None):
    """Build two collisions of the same (Alice, Bob) packet pair.

    *sender_impairments* (an :class:`~repro.phy.impairments.
    ImpairmentPipeline`) rides on both senders' channels;
    *capture_impairments* distorts each summed capture (AP front end /
    interferers). Returns (captures, frames, specs, placements).
    """
    amp_a = np.sqrt(10 ** (snr_db / 10) * noise_power)
    amp_b = np.sqrt(10 ** ((snr_b_db if snr_b_db is not None else snr_db)
                           / 10) * noise_power)
    frames = {
        "A": Frame.make(random_bits(payload_bits, rng), src=1, seq=1,
                        preamble=preamble),
        "B": Frame.make(random_bits(payload_bits, rng), src=2, seq=2,
                        preamble=preamble),
    }
    params = {
        "A": ChannelParams(
            gain=amp_a * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-freq_spread, freq_spread)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=phase_noise,
            impairments=sender_impairments),
        "B": ChannelParams(
            gain=amp_b * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-freq_spread, freq_spread)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=phase_noise,
            impairments=sender_impairments),
    }
    captures = []
    for bob_offset in offsets:
        captures.append(synthesize(
            [Transmission.from_symbols(frames["A"].symbols, shaper,
                                       params["A"], 0, "A"),
             Transmission.from_symbols(frames["B"].symbols, shaper,
                                       params["B"], bob_offset, "B")],
            noise_power, rng, leading=8, tail=40,
            impairments=capture_impairments))
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    placements = []
    for ci, capture in enumerate(captures):
        for t in capture.transmissions:
            if oracle:
                from repro.phy.estimation import ChannelEstimate
                est = ChannelEstimate(
                    gain=t.params.gain,
                    freq_offset=t.params.freq_offset,
                    sampling_offset=t.params.sampling_offset,
                    snr_db=snr_db)
            else:
                coarse = params[t.label].freq_offset \
                    + rng.normal(0, 1.5e-5)
                est = sync.acquire(capture.samples, t.symbol0,
                                   coarse_freq=coarse,
                                   noise_power=noise_power)
            placements.append(PlacementParams(
                t.label, ci, t.symbol0 + est.sampling_offset, est))
    specs = {name: PacketSpec(name, frames[name].n_symbols, BPSK)
             for name in frames}
    return captures, frames, specs, placements
