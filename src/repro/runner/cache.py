"""Per-process cache of expensive reference signals.

Every trial of a Monte-Carlo run needs the same handful of reference
objects: the PN preamble, the RRC pulse shaper (tap computation), and the
synchronizer/detector templates built from the *shaped preamble waveform*
— the re-encoded reference signal the receiver correlates against. Worker
processes live for a whole batch of trials, so rebuilding these per trial
is pure waste; scenario functions fetch them from this cache instead.

The cache is process-local (a worker inherits an empty one and fills it
on first use), keyed by constructor parameters, and never holds per-trial
state — everything in it is deterministic in its key, so caching cannot
perturb results.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.phy.preamble import Preamble, default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.zigzag.detect import CollisionDetector

__all__ = [
    "SignalCache",
    "cache_stats",
    "cached_detector",
    "cached_preamble",
    "cached_reference_waveform",
    "cached_shaper",
    "cached_synchronizer",
    "shared_cache",
]


class SignalCache:
    """A keyed memo with hit/miss accounting."""

    def __init__(self) -> None:
        self._store: dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for *key*, building it on first use."""
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = self._store[key] = builder()
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)


_SHARED = SignalCache()


def shared_cache() -> SignalCache:
    """The process-wide cache used by the built-in scenarios."""
    return _SHARED


def cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the shared cache (diagnostics, tests)."""
    return {"hits": _SHARED.hits, "misses": _SHARED.misses,
            "size": len(_SHARED)}


def cached_preamble(length: int = 32) -> Preamble:
    """The default PN preamble of *length* symbols (LFSR run memoized)."""
    return _SHARED.get(("preamble", length),
                       lambda: default_preamble(length))


def cached_shaper(sps: int = 2, span: int = 6, beta: float = 0.35) -> PulseShaper:
    """An RRC pulse shaper with memoized tap computation."""
    return _SHARED.get(("shaper", sps, span, beta),
                       lambda: PulseShaper(sps=sps, span=span, beta=beta))


def cached_synchronizer(preamble_length: int = 32, *,
                        threshold: float = 0.3) -> Synchronizer:
    """A synchronizer whose shaped-preamble template is built once."""
    return _SHARED.get(
        ("sync", preamble_length, threshold),
        lambda: Synchronizer(cached_preamble(preamble_length),
                             cached_shaper(), threshold=threshold))


def cached_detector(preamble_length: int = 32, *,
                    beta: float = 0.42) -> CollisionDetector:
    """A collision detector sharing the cached preamble/shaper."""
    return _SHARED.get(
        ("detector", preamble_length, beta),
        lambda: CollisionDetector(cached_preamble(preamble_length),
                                  cached_shaper(), beta=beta))


def cached_reference_waveform(preamble_length: int = 32):
    """The shaped preamble waveform — the re-encoded reference signal."""
    return _SHARED.get(
        ("reference", preamble_length),
        lambda: cached_shaper().shape(
            cached_preamble(preamble_length).symbols))
