"""Deterministic chaos injection inside Monte-Carlo workers.

The supervision layer (:mod:`repro.runner.resilience`) claims that a run
survives worker kills, hangs, trial exceptions, and shared-memory
corruption with surviving results bit-identical to a fault-free run. This
module is how that claim gets *proved* rather than asserted: a
``[faults]`` table in the scenario TOML arms a :class:`ChaosInjector`
inside every worker, which injects exactly those failures at seeded,
reproducible points.

Two properties make the injection compatible with the determinism
contract:

- **Fault draws never touch trial randomness.** Each decision comes from
  ``SeedSequence(faults.seed, spawn_key=(_FAULT_SALT, index, attempt))``
  — a stream disjoint from every trial's ``SeedSequence(seed, (i,))``
  data stream, so arming faults cannot perturb what a surviving trial
  computes.
- **Draws are per (trial, attempt).** A fault that killed attempt 0 of
  trial *i* is redrawn on attempt 1, so supervised retries converge
  instead of replaying the same kill forever; and because the *data*
  stream depends only on the trial index, the retried trial is
  bit-identical to the one the fault interrupted.

Kill and hang faults are armed only inside worker processes — injecting
them in the parent would take down the supervisor itself, which is the
checkpoint/resume story (``--checkpoint`` / ``--resume``), not the
supervision one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, FaultInjectionError

__all__ = ["ChaosInjector", "FaultSpec", "KILL_EXIT_CODE"]

# Workers felled by an injected kill exit with this code, so a chaos
# crash is distinguishable from a real one in pool post-mortems.
KILL_EXIT_CODE = 86

# Disambiguates fault draws from trial-data SeedSequence spawn keys.
_FAULT_SALT = 0xFA017


@dataclass(frozen=True)
class FaultSpec:
    """The ``[faults]`` TOML table: per-trial fault injection probabilities.

    All probabilities are evaluated independently per (trial, attempt)
    from the deterministic stream described in the module docstring.
    ``hang_seconds`` bounds an injected hang so an unwatched run still
    terminates; the watchdog (``[resilience].batch_timeout``) is expected
    to fire long before it elapses.
    """

    kill_worker_prob: float = 0.0
    hang_trial_prob: float = 0.0
    raise_in_trial_prob: float = 0.0
    corrupt_shm_slot_prob: float = 0.0
    hang_seconds: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kill_worker_prob", "hang_trial_prob",
                     "raise_in_trial_prob", "corrupt_shm_slot_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"[faults].{name} must be in [0, 1], got {value}")
        if self.hang_seconds < 0:
            raise ConfigurationError("[faults].hang_seconds must be >= 0")

    @property
    def is_empty(self) -> bool:
        """True when no fault kind can ever fire."""
        return (self.kill_worker_prob == 0.0
                and self.hang_trial_prob == 0.0
                and self.raise_in_trial_prob == 0.0
                and self.corrupt_shm_slot_prob == 0.0)


class ChaosInjector:
    """Injects seeded faults around trial execution inside a worker.

    ``in_worker`` is detected automatically (a process with a parent is a
    pool worker); pass it explicitly only in tests. In the parent process
    kill and hang faults are disarmed — the degraded inline path must
    always make progress — while exception faults stay armed everywhere
    (the per-trial catch handles them identically in both places).
    """

    def __init__(self, faults: FaultSpec,
                 in_worker: bool | None = None) -> None:
        self.faults = faults
        if in_worker is None:
            in_worker = multiprocessing.parent_process() is not None
        self.in_worker = in_worker

    def _draws(self, index: int, attempt: int) -> np.ndarray:
        sequence = np.random.SeedSequence(
            entropy=int(self.faults.seed),
            spawn_key=(_FAULT_SALT, int(index), int(attempt)))
        # Fixed draw order (kill, hang, raise, corrupt) so adding a fault
        # kind later cannot silently reshuffle existing soak baselines.
        return np.random.default_rng(sequence).uniform(size=4)

    def pre_trial(self, index: int, attempt: int) -> None:
        """Maybe kill, hang, or raise before trial *index* runs."""
        if self.faults.is_empty:
            return
        kill, hang, raise_, _ = self._draws(index, attempt)
        if self.in_worker and kill < self.faults.kill_worker_prob:
            os._exit(KILL_EXIT_CODE)
        if self.in_worker and hang < self.faults.hang_trial_prob:
            time.sleep(self.faults.hang_seconds)
        if raise_ < self.faults.raise_in_trial_prob:
            raise FaultInjectionError(
                f"injected fault in trial {index} (attempt {attempt})")

    def corrupt_slot(self, index: int, attempt: int) -> bool:
        """Should this trial's shared-memory capture be corrupted?"""
        if self.faults.corrupt_shm_slot_prob == 0.0 or not self.in_worker:
            return False
        return bool(self._draws(index, attempt)[3]
                    < self.faults.corrupt_shm_slot_prob)
