"""The ``python -m repro`` / ``repro`` command line.

Commands::

    repro run SCENARIO.toml [--workers N] [--trials N] [--seed S]
                            [--set key=value ...] [--json]
                            [--checkpoint PATH [--resume]]
    repro sweep SCENARIO.toml --param snr_db=0:20:2 [--metrics a,b] ...
    repro list
    repro demo [--seed S]
    repro perf [--smoke] [--out PATH] [--json]

``run`` executes one scenario file and prints a metric table (mean, 95%
CI per metric) plus merged per-flow counters. ``sweep`` re-runs the
scenario along a parameter grid and prints one row per grid point.
``--set`` applies dotted-path overrides (``channel.noise_power=0.5``,
``sender.alice.snr_db=14``, ``params.sinr_db=8``) before running.

``--checkpoint PATH`` journals completed trials to a JSONL file as they
land; re-running with ``--resume`` skips everything already journaled
(the journal carries a digest of the spec, so resuming with a different
scenario is rejected). Failure handling — retries, watchdog timeouts,
skip-vs-abort — is configured in the scenario file's ``[resilience]``
table; when trials fail under ``mode = "skip"`` or ``"retry"``, ``run``
prints a failure summary table after the metrics.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError, RunAbortedError
from repro.runner.results import RunResult
from repro.runner.runner import MonteCarloRunner
from repro.runner.scenarios import available_scenarios, scenario_designs
from repro.runner.spec import ScenarioSpec, _coerce, parse_sweep

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel Monte-Carlo runner for the ZigZag "
                    "reproduction (Gollakota & Katabi, SIGCOMM 2008).")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("scenario", help="path to a ScenarioSpec TOML file")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes (0 = one per CPU)")
        p.add_argument("--trials", type=int, default=None,
                       help="override [scenario].n_trials")
        p.add_argument("--seed", type=int, default=None,
                       help="override the root seed")
        p.add_argument("--set", dest="overrides", action="append",
                       default=[], metavar="KEY=VALUE",
                       help="dotted-path override, repeatable")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
        p.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="journal completed trials to a JSONL file")
        p.add_argument("--resume", action="store_true",
                       help="skip trials already in --checkpoint "
                            "(validated against the spec)")

    run_p = sub.add_parser("run", help="run one scenario file")
    add_common(run_p)

    sweep_p = sub.add_parser("sweep", help="run a scenario along a grid")
    add_common(sweep_p)
    sweep_p.add_argument("--param", required=True,
                         help="sweep expression, e.g. snr_db=0:20:2 or "
                              "design=zigzag,802.11")
    sweep_p.add_argument("--metrics", default=None,
                         help="comma-separated metrics to tabulate")

    sub.add_parser("list", help="list registered scenario kinds")

    demo_p = sub.add_parser("demo", help="decode one hidden-terminal "
                                         "collision pair end to end")
    demo_p.add_argument("--seed", type=int, default=1)

    perf_p = sub.add_parser(
        "perf", help="benchmark the DSP hot paths against their "
                     "pre-optimization references (writes BENCH_perf.json)")
    perf_p.add_argument("--smoke", action="store_true",
                        help="tiny sizes; exercises the harness only")
    perf_p.add_argument("--out", default=None,
                        help="report path (default BENCH_perf.json)")
    perf_p.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")
    return parser


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    spec = ScenarioSpec.from_toml(args.scenario)
    for expr in args.overrides:
        key, sep, value = expr.partition("=")
        if not sep:
            raise ReproError(f"--set needs KEY=VALUE, got {expr!r}")
        spec = spec.with_override(key.strip(), _coerce(value))
    if args.trials is not None:
        spec = spec.with_override("n_trials", args.trials)
    if args.seed is not None:
        spec = spec.with_override("seed", args.seed)
    return spec


def _print_run(result: RunResult, as_json: bool) -> None:
    # Design-independent scenarios ignore spec.design; label them "n/a"
    # rather than implying a design comparison that never ran.
    design = result.spec.design \
        if scenario_designs(result.spec.kind) is not None else "n/a"
    if as_json:
        payload = {
            "scenario": result.spec.kind,
            "design": design,
            "n_trials": result.spec.n_trials,
            "seed": result.spec.seed,
            "elapsed_s": result.elapsed,
            "metrics": result.summary(),
            "n_failed": result.n_failed,
            "failure_classes": result.failure_classes(),
        }
        # Only report supervision when it had to act: a clean run's JSON
        # stays byte-identical across worker counts (inline_batches is
        # routine bookkeeping that varies with the execution mode).
        if result.supervision is not None:
            stats = result.supervision.as_dict()
            if result.n_failed or any(
                    v for k, v in stats.items() if k != "inline_batches"):
                payload["supervision"] = stats
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(f"scenario={result.spec.kind} design={design} "
          f"trials={result.spec.n_trials} seed={result.spec.seed} "
          f"workers={result.n_workers} elapsed={result.elapsed:.2f}s")
    print(result.format_table())
    if result.failures:
        print()
        print(result.format_failure_table())
    flows = result.flows()
    if flows:
        print("\nper-flow totals:")
        for name, stats in sorted(flows.items()):
            print(f"  {name:<12} sent={stats.sent:<5d} "
                  f"delivered={stats.delivered:<5d} "
                  f"loss={stats.loss_rate:.3f}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for name, doc in available_scenarios().items():
                print(f"{name:<18} {doc}")
            return 0
        if args.command == "perf":
            # Imported lazily: the perf suite pulls in the whole DSP stack.
            from repro.perf import bench
            payload = bench.run_perf_suite(smoke=args.smoke)
            out = args.out if args.out is not None else bench.DEFAULT_REPORT
            bench.write_report(payload, out)
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(bench.format_summary(payload))
                print(f"wrote {out}")
            return 0
        if args.command == "demo":
            from repro import quick_hidden_terminal_demo
            results = quick_hidden_terminal_demo(seed=args.seed)
            for name, row in results.items():
                print(f"{name:<8} decoded={row['decoded']} "
                      f"ber={row['ber']:.5f}")
            return 0

        spec = _load_spec(args)
        runner = MonteCarloRunner(n_workers=args.workers,
                                  checkpoint=args.checkpoint,
                                  resume=args.resume)
        if args.command == "run":
            _print_run(runner.run(spec), args.json)
            return 0
        # sweep
        param, values = parse_sweep(args.param)
        sweep = runner.sweep(spec, param, values)
        if args.json:
            payload = {
                "scenario": spec.kind,
                "param": param,
                "points": [{"value": value, "metrics": result.summary()}
                           for value, result in sweep.points],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            metrics = (args.metrics.split(",") if args.metrics else None)
            print(sweep.format_table(metrics))
        return 0
    except RunAbortedError as exc:
        # The supervisor gave up under fail_fast: summarize what failed
        # instead of dumping a traceback from inside a worker.
        print(f"repro: run aborted: {exc}", file=sys.stderr)
        for failure in exc.failures:
            print(f"  trial {failure.index}: {failure.error_class} "
                  f"({failure.stage}, {failure.attempts} attempt(s)): "
                  f"{failure.message}", file=sys.stderr)
        return 3
    except (ReproError, OSError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
