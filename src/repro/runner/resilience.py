"""Fault-tolerant execution for the Monte-Carlo runner.

ZigZag itself is a graceful-degradation design — a collision the decoder
cannot resolve falls back to 802.11-equivalent behavior (§4.4) — and the
runner meets the same bar: one trial exception, one hung batch, or one
OOM-killed worker must cost *that trial's attempt*, never the whole
sweep. This module supplies the three pieces the runner threads through
its execution paths:

- :class:`FailurePolicy` (the ``[resilience]`` TOML table) — what to do
  when a trial fails: ``fail_fast`` (abort, the pre-supervision
  behavior), ``skip`` (record a :class:`TrialFailure` and keep going),
  or ``retry`` (capped exponential backoff). A retried trial re-derives
  the *same* ``SeedSequence(seed, spawn_key=(i,))`` child as the attempt
  it replaces, so retries are bit-identical to a fault-free run.
- :class:`PoolSupervisor` — supervised batch execution over a process
  pool: per-batch watchdog timeouts, ``BrokenProcessPool`` detection
  with pool respawn and resubmission of only the unfinished batches, and
  a degradation ladder (split the failing batch, ultimately run the
  offending trials inline in the parent where a worker crash cannot
  recur).
- :class:`CheckpointJournal` — an append-only JSONL journal of completed
  trials, written as batches land, so a run interrupted by SIGKILL of
  the parent resumes at grid-point + trial granularity
  (``--checkpoint`` / ``--resume`` on the CLI).

The chaos-injection harness (:mod:`repro.runner.chaos`) exists to prove
all of this: ``tests/test_runner_resilience.py`` and
``benchmarks/bench_chaos_soak.py`` inject worker kills, hangs, trial
exceptions, and shared-memory corruption, then assert the surviving
results are bit-identical to a fault-free run. See
``docs/resilience.md``.

The parallel multi-cell coordinator (:mod:`repro.link.parallel`) is the
second supervised surface and follows :class:`PoolSupervisor`'s
watchdog idiom one level down: every horizon-barrier wait carries a
timeout (``MultiCellConfig.step_timeout_s``), and a hung, killed, or
corrupting cell worker tears the pool down and degrades the block to
sequential stepping in the parent — bit-identical results, wall-clock
cost only. Its inline-degradation ladder mirrors this module's "run the
offending trials inline" last rung, and ``tests/test_multicell_parallel.py``
proves it with the same chaos harness.
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Executor, Future, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    ReproError,
    RunAbortedError,
    TrialTimeoutError,
    WorkerCrashError,
    error_class,
)
from repro.testbed.metrics import FlowStats

__all__ = [
    "BatchTask",
    "CheckpointJournal",
    "FailurePolicy",
    "PoolSupervisor",
    "SupervisorStats",
    "TrialFailure",
    "raise_failure",
    "spec_digest",
]

_POLICY_MODES = ("fail_fast", "skip", "retry")
_VERIFY_MODES = ("auto", "on", "off")


@dataclass(frozen=True)
class FailurePolicy:
    """The ``[resilience]`` TOML table: what a trial failure costs.

    ``mode`` picks the response to a failed trial; ``max_retries`` bounds
    both retry attempts and the pool-crash/watchdog ladders;
    ``backoff_base``/``backoff_cap`` shape the capped exponential delay
    between retry attempts (seconds). ``batch_timeout`` > 0 arms a
    per-batch watchdog (seconds); ``verify_shm`` controls checksum
    verification of shared-memory captures (``auto`` = only when a
    ``[faults]`` table is active).
    """

    mode: str = "fail_fast"
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    batch_timeout: float = 0.0
    verify_shm: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in _POLICY_MODES:
            raise ConfigurationError(
                f"[resilience].mode must be one of {_POLICY_MODES}, "
                f"got {self.mode!r}")
        if self.max_retries < 0:
            raise ConfigurationError("[resilience].max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                "[resilience] backoff values must be >= 0")
        if self.batch_timeout < 0:
            raise ConfigurationError(
                "[resilience].batch_timeout must be >= 0 (0 disables)")
        if self.verify_shm not in _VERIFY_MODES:
            raise ConfigurationError(
                f"[resilience].verify_shm must be one of {_VERIFY_MODES}, "
                f"got {self.verify_shm!r}")

    def retry_delay(self, attempt: int) -> float:
        """Backoff before re-running a trial that failed *attempt* times."""
        if self.backoff_base == 0.0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))

    def should_verify_shm(self, faults_active: bool) -> bool:
        """Checksum shared-memory captures on this run?"""
        if self.verify_shm == "on":
            return True
        if self.verify_shm == "off":
            return False
        return faults_active


@dataclass(frozen=True)
class TrialFailure:
    """One trial's terminal failure, classified via the errors taxonomy.

    ``error_class`` is the exception's most-derived class name
    (:func:`repro.errors.error_class`); ``stage`` locates the failure in
    the execution pipeline (``trial``, ``synthesis``, ``timeout``,
    ``worker``, ``transport``). ``exception`` carries the live exception
    when it survived the process boundary (``fail_fast`` re-raises it);
    it is excluded from equality and never serialized.
    """

    index: int
    error_class: str
    message: str
    attempts: int = 1
    stage: str = "trial"
    exception: BaseException | None = field(
        default=None, compare=False, repr=False)

    @classmethod
    def from_exception(cls, index: int, exc: BaseException, *,
                       attempts: int = 1, stage: str = "trial"
                       ) -> "TrialFailure":
        carried: BaseException | None = exc
        try:
            pickle.dumps(exc)
        except Exception:
            # An unpicklable exception would poison the whole result
            # batch on its way back through the pool's result queue.
            carried = None
        return cls(index=index, error_class=error_class(exc),
                   message=str(exc), attempts=attempts, stage=stage,
                   exception=carried)


def raise_failure(failure: TrialFailure,
                  collected: tuple = ()) -> None:
    """The ``fail_fast`` abort: re-raise a failure as an exception.

    A failure whose live exception is a :class:`ReproError` re-raises it
    unchanged (callers keep matching on the taxonomy); anything else —
    including an injected :class:`FaultInjectionError`, which is a chaos
    artifact rather than a scenario error — is wrapped in
    :class:`RunAbortedError` carrying every failure collected before the
    abort, so the CLI can print a failure summary instead of a bare
    traceback.
    """
    if isinstance(failure.exception, ReproError) \
            and not isinstance(failure.exception, FaultInjectionError):
        raise failure.exception
    message = (f"trial {failure.index} failed at stage "
               f"{failure.stage!r} ({failure.error_class}: "
               f"{failure.message}); fail_fast policy aborts the run")
    raise RunAbortedError(message, failures=(failure, *collected)) \
        from failure.exception


@dataclass
class SupervisorStats:
    """What the supervisor had to do to finish the run."""

    pool_respawns: int = 0
    watchdog_timeouts: int = 0
    batches_split: int = 0
    trial_retries: int = 0
    inline_batches: int = 0
    inline_fallbacks: int = 0
    transport_retries: int = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in (
            "pool_respawns", "watchdog_timeouts", "batches_split",
            "trial_retries", "inline_batches", "inline_fallbacks",
            "transport_retries")}


@dataclass(frozen=True)
class BatchTask:
    """How the supervisor runs one batch of trial indices.

    ``submit(pool, indices, attempt)`` schedules the batch on a pool and
    returns a future resolving to per-index outcomes (results or
    :class:`TrialFailure`, in index order); ``run_inline`` executes the
    same batch in the parent process — the bottom rung of the degradation
    ladder, where worker kills and hangs cannot recur.
    """

    submit: Callable[[Executor, list[int], int], Future]
    run_inline: Callable[[list[int], int], list]


@dataclass
class _Job:
    """One schedulable batch: which trials, which attempt, which rung."""

    indices: list[int]
    attempt: int = 0
    crashes: int = 0
    inline: bool = False
    ready_at: float = 0.0


class PoolSupervisor:
    """Supervised batch execution with watchdog, respawn, and retry.

    ``pool_factory`` creates a fresh ``ProcessPoolExecutor`` on demand
    (``None`` runs every batch inline — the single-worker path rides the
    same policy machinery). ``window`` bounds concurrently submitted
    batches to the worker count so the per-batch watchdog measures run
    time, not queue time. ``on_success`` is invoked as each trial result
    is finalized (the checkpoint journal hook).
    """

    def __init__(self, pool_factory: Callable[[], Executor] | None,
                 policy: FailurePolicy, *, window: int = 1,
                 on_success: Callable[[int, Any], None] | None = None
                 ) -> None:
        self._pool_factory = pool_factory
        self.policy = policy
        self.window = max(1, window)
        self.on_success = on_success
        self.stats = SupervisorStats()
        self._pool: Executor | None = None

    # -- public --------------------------------------------------------
    def execute(self, task: BatchTask, batches: Sequence[Sequence[int]]
                ) -> tuple[dict[int, Any], list[TrialFailure]]:
        """Run every batch to completion under the failure policy.

        Returns ``(results, failures)``: results keyed by trial index,
        plus the terminal :class:`TrialFailure` records (empty unless the
        policy is ``skip``, or ``retry`` exhausted its attempts).
        ``fail_fast`` re-raises the first failure's exception instead.
        """
        pending: list[_Job] = [
            _Job(list(batch), inline=self._pool_factory is None)
            for batch in batches if len(batch) > 0]
        results: dict[int, Any] = {}
        failures: dict[int, TrialFailure] = {}
        active: dict[Future, tuple[_Job, float]] = {}
        try:
            while pending or active:
                if self._step_inline(task, pending, results, failures):
                    continue
                self._fill_window(task, pending, active)
                if not active:
                    self._sleep_until_ready(pending)
                    continue
                broken = self._collect(active, pending, results, failures)
                if broken:
                    self._recover_from_crash(active, pending)
                    continue
                self._check_watchdog(active, pending, failures)
        finally:
            self._shutdown(terminate=bool(active))
        return results, [failures[i] for i in sorted(failures)]

    # -- scheduling ----------------------------------------------------
    def _step_inline(self, task: BatchTask, pending: list[_Job],
                     results: dict, failures: dict) -> bool:
        now = time.monotonic()
        ready = [job for job in pending if job.inline and job.ready_at <= now]
        for job in ready:
            pending.remove(job)
            self.stats.inline_batches += 1
            outcomes = task.run_inline(job.indices, job.attempt)
            self._absorb(job, outcomes, pending, results, failures)
        return bool(ready)

    def _fill_window(self, task: BatchTask, pending: list[_Job],
                     active: dict) -> None:
        now = time.monotonic()
        while len(active) < self.window:
            job = next((j for j in pending
                        if not j.inline and j.ready_at <= now), None)
            if job is None:
                return
            pending.remove(job)
            future = task.submit(self._ensure_pool(), job.indices,
                                 job.attempt)
            deadline = (now + self.policy.batch_timeout
                        if self.policy.batch_timeout > 0 else math.inf)
            active[future] = (job, deadline)

    def _sleep_until_ready(self, pending: list[_Job]) -> None:
        if not pending:
            return
        wake = min(job.ready_at for job in pending)
        delay = wake - time.monotonic()
        if delay > 0:
            time.sleep(min(delay, 0.5))

    def _collect(self, active: dict, pending: list[_Job],
                 results: dict, failures: dict) -> bool:
        """Absorb finished futures; True means the pool broke."""
        finite = [deadline for _, deadline in active.values()
                  if deadline != math.inf]
        timeout = None
        if finite:
            timeout = max(0.02, min(0.5,
                                    min(finite) - time.monotonic() + 0.01))
        done, _ = wait(list(active), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        broken = False
        for future in done:
            job, _ = active.pop(future)
            try:
                outcomes = future.result()
            except BrokenExecutor:
                broken = True
                self._requeue_after_crash(job, pending)
            except Exception as exc:  # the batch function itself blew up
                outcomes = [
                    TrialFailure.from_exception(
                        index, exc, attempts=job.attempt + 1, stage="worker")
                    for index in job.indices]
                self._absorb(job, outcomes, pending, results, failures)
            else:
                self._absorb(job, outcomes, pending, results, failures)
        return broken

    # -- failure handling ----------------------------------------------
    def _absorb(self, job: _Job, outcomes: list, pending: list[_Job],
                results: dict, failures: dict) -> None:
        if len(outcomes) != len(job.indices):
            raise WorkerCrashError(
                f"batch returned {len(outcomes)} outcomes for "
                f"{len(job.indices)} trials")
        retry: list[int] = []
        for index, outcome in zip(job.indices, outcomes):
            if not isinstance(outcome, TrialFailure):
                results[index] = outcome
                if self.on_success is not None:
                    self.on_success(index, outcome)
                continue
            if self.policy.mode == "retry" \
                    and job.attempt < self.policy.max_retries:
                retry.append(index)
            elif self.policy.mode == "fail_fast":
                self._abort(outcome, failures)
            else:
                failures[index] = outcome
        if retry:
            self.stats.trial_retries += len(retry)
            pending.append(_Job(
                retry, attempt=job.attempt + 1, crashes=job.crashes,
                inline=job.inline,
                ready_at=time.monotonic()
                + self.policy.retry_delay(job.attempt)))

    def _abort(self, failure: TrialFailure, failures: dict) -> None:
        self._shutdown(terminate=True)
        raise_failure(failure, tuple(failures[i] for i in sorted(failures)))

    def _requeue_after_crash(self, job: _Job, pending: list[_Job]) -> None:
        # Bump the attempt so a deterministically-seeded kill fault does
        # not replay; trial data streams are attempt-independent.
        requeued = _Job(job.indices, attempt=job.attempt + 1,
                        crashes=job.crashes + 1, inline=job.inline)
        if not requeued.inline \
                and requeued.crashes > max(1, self.policy.max_retries):
            requeued.inline = True
            self.stats.inline_fallbacks += 1
        pending.append(requeued)

    def _recover_from_crash(self, active: dict, pending: list[_Job]
                            ) -> None:
        self.stats.pool_respawns += 1
        for job, _ in active.values():
            self._requeue_after_crash(job, pending)
        active.clear()
        self._shutdown(terminate=True)

    def _check_watchdog(self, active: dict, pending: list[_Job],
                        failures: dict) -> None:
        now = time.monotonic()
        expired = [future for future, (_, deadline) in active.items()
                   if now > deadline]
        if not expired:
            return
        self.stats.watchdog_timeouts += len(expired)
        victims = [active[future][0] for future in expired]
        survivors = [job for future, (job, _) in active.items()
                     if future not in expired]
        active.clear()
        # A hung worker cannot be cancelled through the executor API;
        # reclaiming it means killing the pool, which also takes down the
        # innocent in-flight batches — they requeue at the same attempt.
        self._shutdown(terminate=True)
        pending.extend(survivors)
        for job in victims:
            self._handle_timeout(job, pending, failures)

    def _handle_timeout(self, job: _Job, pending: list[_Job],
                        failures: dict) -> None:
        if len(job.indices) > 1:
            # Split to isolate the hung trial before spending retries.
            mid = len(job.indices) // 2
            self.stats.batches_split += 1
            for half in (job.indices[:mid], job.indices[mid:]):
                pending.append(_Job(list(half), attempt=job.attempt + 1,
                                    crashes=job.crashes, inline=job.inline))
            return
        index = job.indices[0]
        if self.policy.mode == "retry" \
                and job.attempt < self.policy.max_retries:
            self.stats.trial_retries += 1
            pending.append(_Job([index], attempt=job.attempt + 1,
                                crashes=job.crashes, inline=job.inline,
                                ready_at=time.monotonic()
                                + self.policy.retry_delay(job.attempt)))
            return
        message = (f"trial {index} exceeded the "
                   f"{self.policy.batch_timeout:.3g}s batch watchdog "
                   f"(attempt {job.attempt + 1})")
        failure = TrialFailure(
            index=index, error_class="TrialTimeoutError", message=message,
            attempts=job.attempt + 1, stage="timeout",
            exception=TrialTimeoutError(message))
        if self.policy.mode == "fail_fast":
            self._abort(failure, failures)
        failures[index] = failure

    # -- pool lifecycle ------------------------------------------------
    def _ensure_pool(self) -> Executor:
        if self._pool_factory is None:
            raise ConfigurationError("supervisor has no pool factory")
        if self._pool is None:
            self._pool = self._pool_factory()
        return self._pool

    def _shutdown(self, *, terminate: bool) -> None:
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if terminate:
            # Watchdog / crash path: workers may be hung or dead, so a
            # cooperative shutdown could block forever. Kill first.
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=not terminate, cancel_futures=True)
        except Exception:
            pass


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def spec_digest(spec: Any) -> str:
    """A short stable digest of a spec's canonical dict form.

    ``n_trials`` is excluded: the journal keys trials by index, so
    extending a run (``--trials 100`` after journaling 50) is the same
    experiment with more samples, not a different one. Everything that
    changes what a trial *computes* (kind, seed, senders, channel,
    design, params, ...) is included.
    """
    payload = spec.to_dict()
    scenario = dict(payload.get("scenario", {}))
    scenario.pop("n_trials", None)
    payload["scenario"] = scenario
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _encode_extra(value: Any) -> Any:
    """Best-effort JSON encoding of a trial's ``extra`` payload.

    Numpy arrays/scalars and tuples round-trip exactly (tagged); anything
    else falls back to a ``__repr__`` marker. Aggregation (metrics,
    flows, airtime) never reads ``extra``, so a lossy entry cannot change
    a resumed run's summary.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        flat = value.ravel()
        if np.iscomplexobj(flat):
            data = [[float(v.real), float(v.imag)] for v in flat]
        else:
            data = [v.item() for v in flat]
        return {"__nd__": [str(value.dtype), list(value.shape), data]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_extra(v) for v in value]}
    if isinstance(value, list):
        return [_encode_extra(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_extra(v) for k, v in value.items()}
    return {"__repr__": repr(value)}


def _decode_extra(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode_extra(v) for v in value]
    if isinstance(value, dict):
        if "__nd__" in value and len(value) == 1:
            dtype, shape, data = value["__nd__"]
            if np.issubdtype(np.dtype(dtype), np.complexfloating):
                flat = [complex(re, im) for re, im in data]
            else:
                flat = data
            return np.array(flat, dtype=dtype).reshape(shape)
        if "__tuple__" in value and len(value) == 1:
            return tuple(_decode_extra(v) for v in value["__tuple__"])
        return {k: _decode_extra(v) for k, v in value.items()}
    return value


class CheckpointJournal:
    """Append-only JSONL journal of completed trials.

    Line 1 is a header binding the journal to a spec digest; every other
    line is one completed trial, keyed by ``(point, index)`` so a sweep
    resumes at grid-point + trial granularity. Lines are flushed as they
    land — a SIGKILLed parent loses at most the trial being written
    (a torn trailing line is tolerated and re-run on resume). Schema:
    ``docs/resilience.md``.
    """

    VERSION = 1

    def __init__(self, path: Path, digest: str) -> None:
        self.path = Path(path)
        self.digest = digest
        self._handle = None

    @classmethod
    def open(cls, path: str | Path, spec: Any, *,
             resume: bool) -> "CheckpointJournal":
        """Open (resume) or start (truncate) a journal for *spec*."""
        journal = cls(Path(path), spec_digest(spec))
        if resume and journal.path.exists():
            journal._validate_header()
        else:
            journal._write_header(spec)
        return journal

    # -- header --------------------------------------------------------
    def _write_header(self, spec: Any) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"kind": "header", "version": self.VERSION,
                  "digest": self.digest, "scenario": spec.kind,
                  "seed": spec.seed}
        with open(self.path, "w") as handle:
            handle.write(json.dumps(header) + "\n")

    def _validate_header(self) -> None:
        with open(self.path) as handle:
            first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            raise ConfigurationError(
                f"{self.path} is not a checkpoint journal") from None
        if header.get("kind") != "header" \
                or header.get("version") != self.VERSION:
            raise ConfigurationError(
                f"{self.path} is not a version-{self.VERSION} "
                "checkpoint journal")
        if header.get("digest") != self.digest:
            raise ConfigurationError(
                f"checkpoint {self.path} was written by a different "
                f"scenario spec (digest {header.get('digest')!r} != "
                f"{self.digest!r}); refusing to resume")

    # -- writing -------------------------------------------------------
    def record(self, point: str, trial: Any) -> None:
        """Journal one completed trial (flushed immediately)."""
        if self._handle is None:
            self._handle = open(self.path, "a")
        flows = None
        if trial.flows is not None:
            flows = {name: [stats.sent, stats.delivered,
                            stats.airtime_slots, list(stats.bers)]
                     for name, stats in trial.flows.items()}
        entry = {"kind": "trial", "point": point, "index": trial.index,
                 "metrics": {k: float(v) for k, v in trial.metrics.items()},
                 "airtime": float(trial.airtime), "flows": flows,
                 "extra": _encode_extra(trial.extra)}
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------
    def completed(self, point: str) -> dict[int, Any]:
        """Journaled trials of one grid point, keyed by trial index."""
        from repro.runner.results import TrialResult

        if not self.path.exists():
            return {}
        out: dict[int, TrialResult] = {}
        with open(self.path) as handle:
            for line in handle:
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn trailing line from a killed writer
                if entry.get("kind") != "trial" \
                        or entry.get("point") != point:
                    continue
                flows = None
                if entry["flows"] is not None:
                    flows = {
                        name: FlowStats(sent=sent, delivered=delivered,
                                        airtime_slots=airtime, bers=bers)
                        for name, (sent, delivered, airtime, bers)
                        in entry["flows"].items()}
                out[entry["index"]] = TrialResult(
                    index=entry["index"], metrics=entry["metrics"],
                    flows=flows, airtime=entry["airtime"],
                    extra=_decode_extra(entry["extra"]))
        return out
