"""Trial and run results: aggregation with confidence intervals.

A scenario's trial function produces one :class:`TrialResult` per trial —
scalar metrics, optionally per-flow :class:`~repro.testbed.metrics.FlowStats`
and airtime. The runner collects them (always ordered by trial index, so
aggregation is worker-count independent) into a :class:`RunResult`, which
reports each metric as a mean with a normal-approximation confidence
interval, and merges flow counters across trials. A parameter sweep
yields a :class:`SweepResult` — one :class:`RunResult` per grid point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.runner.resilience import SupervisorStats, TrialFailure
from repro.testbed.metrics import FlowStats
from repro.utils.stats import confidence_interval_mean

__all__ = ["RunResult", "SweepResult", "TrialResult", "merge_flow_stats"]


@dataclass(frozen=True)
class TrialResult:
    """What one Monte-Carlo trial produced."""

    index: int
    metrics: dict[str, float]
    flows: dict[str, FlowStats] | None = None
    airtime: float = 0.0
    extra: dict[str, Any] | None = None


def merge_flow_stats(items: Iterable[FlowStats]) -> FlowStats:
    """Sum per-flow counters accumulated by independent trials."""
    merged = FlowStats()
    for stats in items:
        merged.sent += stats.sent
        merged.delivered += stats.delivered
        merged.airtime_slots += stats.airtime_slots
        merged.bers.extend(stats.bers)
    return merged


@dataclass
class RunResult:
    """Aggregated outcome of every trial of one scenario run.

    ``failures`` holds the terminal :class:`TrialFailure` records of
    trials the supervision layer could not complete under the spec's
    failure policy (empty on a clean run, and always empty under
    ``fail_fast``, which raises instead); ``supervision`` reports what
    the supervisor had to do (pool respawns, retries, watchdog fires) to
    produce the result.
    """

    spec: Any
    trials: list[TrialResult]
    n_workers: int = 1
    elapsed: float = 0.0
    failures: list[TrialFailure] = field(default_factory=list)
    supervision: SupervisorStats | None = None

    def __post_init__(self) -> None:
        self.trials = sorted(self.trials, key=lambda t: t.index)
        self.failures = sorted(self.failures, key=lambda f: f.index)

    # -- per-metric access ---------------------------------------------
    @property
    def metric_names(self) -> list[str]:
        names: list[str] = []
        for trial in self.trials:
            for name in trial.metrics:
                if name not in names:
                    names.append(name)
        return names

    def series(self, metric: str) -> np.ndarray:
        """Per-trial values of one metric, in trial-index order."""
        values = [t.metrics[metric] for t in self.trials
                  if metric in t.metrics]
        if not values:
            raise ConfigurationError(f"no metric named {metric!r}")
        return np.asarray(values, dtype=float)

    def mean(self, metric: str) -> float:
        """Sample mean of one metric across trials."""
        return float(self.series(metric).mean())

    def ci(self, metric: str, z: float = 1.96) -> tuple[float, float, float]:
        """(mean, low, high) confidence interval for one metric."""
        return confidence_interval_mean(self.series(metric), z=z)

    def summary(self) -> dict[str, dict[str, float]]:
        """``{metric: {mean, lo, hi, n}}`` over every metric observed."""
        out = {}
        for name in self.metric_names:
            mean, lo, hi = self.ci(name)
            out[name] = {"mean": mean, "lo": lo, "hi": hi,
                         "n": int(self.series(name).size)}
        return out

    # -- failure accounting ---------------------------------------------
    @property
    def n_completed(self) -> int:
        return len(self.trials)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    def failure_classes(self) -> dict[str, int]:
        """``{error_class: count}`` over the terminal failures."""
        counts: dict[str, int] = {}
        for failure in self.failures:
            counts[failure.error_class] = \
                counts.get(failure.error_class, 0) + 1
        return counts

    def format_failure_table(self) -> str:
        """A plain-text failure summary (what the CLI prints)."""
        if not self.failures:
            return "failures: none"
        total = self.n_completed + self.n_failed
        rows = [f"failures: {self.n_failed} of {total} trials",
                f"{'error class':<24} {'stage':<10} {'n':>4}  example"]
        groups: dict[tuple[str, str], list[TrialFailure]] = {}
        for failure in self.failures:
            groups.setdefault(
                (failure.error_class, failure.stage), []).append(failure)
        for (error_class, stage), members in sorted(groups.items()):
            first = members[0]
            example = f"#{first.index}: {first.message}"
            if len(example) > 48:
                example = example[:45] + "..."
            rows.append(f"{error_class:<24} {stage:<10} "
                        f"{len(members):>4d}  {example}")
        return "\n".join(rows)

    # -- flows ----------------------------------------------------------
    @property
    def total_airtime(self) -> float:
        return float(sum(t.airtime for t in self.trials))

    def flows(self) -> dict[str, FlowStats]:
        """Per-flow counters merged across every trial that reported them."""
        buckets: dict[str, list[FlowStats]] = {}
        for trial in self.trials:
            for name, stats in (trial.flows or {}).items():
                buckets.setdefault(name, []).append(stats)
        return {name: merge_flow_stats(items)
                for name, items in buckets.items()}

    # -- presentation ---------------------------------------------------
    def format_table(self) -> str:
        """A plain-text metric table (what the CLI prints)."""
        rows = [f"{'metric':<24} {'mean':>10} {'95% CI':>23} {'n':>4}"]
        for name, cell in self.summary().items():
            rows.append(
                f"{name:<24} {cell['mean']:>10.5f} "
                f"[{cell['lo']:>10.5f},{cell['hi']:>10.5f}] "
                f"{cell['n']:>4d}")
        return "\n".join(rows)


@dataclass
class SweepResult:
    """One :class:`RunResult` per value of a swept parameter."""

    param: str
    points: list[tuple[Any, RunResult]] = field(default_factory=list)

    def values(self) -> list[Any]:
        return [value for value, _ in self.points]

    def result_at(self, value: Any) -> RunResult:
        for point, result in self.points:
            if point == value:
                return result
        raise ConfigurationError(f"no sweep point {value!r}")

    def curve(self, metric: str) -> tuple[list[Any], np.ndarray,
                                          np.ndarray, np.ndarray]:
        """``(values, means, lows, highs)`` of one metric along the sweep."""
        means, los, his = [], [], []
        for _, result in self.points:
            mean, lo, hi = result.ci(metric)
            means.append(mean)
            los.append(lo)
            his.append(hi)
        return (self.values(), np.asarray(means), np.asarray(los),
                np.asarray(his))

    def format_table(self, metrics: list[str] | None = None) -> str:
        """A plain-text sweep table, one row per grid point."""
        if not self.points:
            return "(empty sweep)"
        names = metrics or self.points[0][1].metric_names
        head = f"{self.param:>12} | " + " | ".join(
            f"{name:>14}" for name in names)
        rows = [head, "-" * len(head)]
        for value, result in self.points:
            cells = []
            for name in names:
                try:
                    cells.append(f"{result.mean(name):>14.5f}")
                except ConfigurationError:
                    cells.append(f"{'-':>14}")
            rows.append(f"{value!s:>12} | " + " | ".join(cells))
        return "\n".join(rows)
