"""The parallel Monte-Carlo executor.

:class:`MonteCarloRunner` fans a scenario's trials out across worker
processes. Trials are grouped into contiguous batches so each worker
amortizes its warm-up (imports, reference-signal cache fills) over many
trials of PHY work; per-trial randomness is derived from the trial index
alone (:mod:`repro.runner.seeding`), and aggregation is ordered by trial
index — so for a given root seed, results are **bit-identical whether the
run uses 1 worker or 40, fork or spawn**.

``n_workers=1`` executes inline with zero process overhead (and is the
reference the parallel path is tested against). The generic :meth:`map`
drives arbitrary module-level trial functions through the same machinery,
which is how the deterministic figure benchmarks ride the runner.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.runner.results import RunResult, SweepResult, TrialResult
from repro.runner.scenarios import (
    TrialContext,
    get_batched_scenario,
    get_scenario,
    scenario_designs,
    scenario_supports_impairments,
)
from repro.runner.shm import CaptureRef, SharedCaptureArena
from repro.runner.spec import ScenarioSpec

__all__ = ["MonteCarloRunner"]


def _coerce_trial(raw: Any, index: int) -> TrialResult:
    """Normalize a scenario function's return value to a TrialResult."""
    if isinstance(raw, TrialResult):
        if raw.index != index:
            raw = replace(raw, index=index)
        return raw
    if isinstance(raw, dict):
        return TrialResult(index=index,
                           metrics={k: float(v) for k, v in raw.items()})
    raise ConfigurationError(
        f"scenario returned {type(raw).__name__}; expected dict or "
        "TrialResult")


def _scenario_batch(spec_dict: dict, indices: Sequence[int]
                    ) -> list[TrialResult]:
    """Worker entry point: run a contiguous batch of scenario trials.

    Receives the spec in plain-dict form so the call is spawn-safe; the
    per-process reference-signal cache persists across the batch.
    """
    spec = ScenarioSpec.from_dict(spec_dict)
    fn = get_scenario(spec.kind)
    return [_coerce_trial(fn(spec, TrialContext.for_trial(spec.seed, i)), i)
            for i in indices]


def _synth_batch_shm(spec_dict: dict, indices: Sequence[int],
                     arena_name: str | None, n_slots: int,
                     slot_samples: int, captures_per_trial: int) -> list:
    """Worker entry point: synthesize a batch of trials for batched decode.

    Runs the scenario's rng-bound synthesis hook per trial (same
    per-trial :class:`TrialContext` streams as the loop path) and writes
    each capture into its preassigned shared-memory slot — trial *i*'s
    capture *j* owns slot ``i * captures_per_trial + j``, so workers
    never contend and need no locking. Captures that overflow their slot
    (or exceed the per-trial slot count) travel pickled instead.
    """
    spec = ScenarioSpec.from_dict(spec_dict)
    hooks = get_batched_scenario(spec.kind)
    arena = None
    if arena_name is not None:
        arena = SharedCaptureArena.attach(arena_name, n_slots,
                                          slot_samples)
    try:
        out = []
        for i in indices:
            payload = hooks.synthesize(
                spec, TrialContext.for_trial(spec.seed, i))
            if arena is not None:
                payload.captures = [
                    arena.write(i * captures_per_trial + j
                                if j < captures_per_trial else -1, c)
                    for j, c in enumerate(payload.captures)]
            out.append(payload)
        return out
    finally:
        if arena is not None:
            arena.close()


def _map_batch(fn: Callable, root_seed: int,
               items: Sequence[tuple[int, Any]], with_values: bool
               ) -> list[tuple[int, Any]]:
    """Worker entry point for :meth:`MonteCarloRunner.map`."""
    out = []
    for index, value in items:
        ctx = TrialContext.for_trial(root_seed, index)
        out.append((index, fn(ctx, value) if with_values else fn(ctx)))
    return out


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


@dataclass
class MonteCarloRunner:
    """Runs scenario trials, fanning out across processes when asked.

    - ``n_workers``: process count; 1 (default) runs inline. ``0`` means
      "one per CPU".
    - ``batch_size``: trials per submitted batch; defaults to an even
      split across workers so each process gets one warm batch.
    - ``start_method``: ``fork``/``spawn``/``forkserver``; default picks
      ``fork`` where available. Results do not depend on the choice.
    """

    n_workers: int = 1
    batch_size: int | None = None
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.n_workers == 0:
            self.n_workers = os.cpu_count() or 1
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1 (or 0 = auto)")
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")

    # ------------------------------------------------------------------
    def run(self, spec: ScenarioSpec, *,
            n_trials: int | None = None) -> RunResult:
        """Run every trial of *spec* and aggregate (see RunResult)."""
        if n_trials is not None:
            spec = replace(spec, n_trials=n_trials)
        supported = scenario_designs(spec.kind)
        if supported is not None and spec.design not in supported:
            raise ConfigurationError(
                f"scenario {spec.kind!r} does not support design "
                f"{spec.design!r} (supported: {list(supported)})")
        if not spec.impairments.is_empty \
                and not scenario_supports_impairments(spec.kind):
            raise ConfigurationError(
                f"scenario {spec.kind!r} does not apply the spec's "
                "[impairments] table; running it would silently ignore "
                "the pipelines (impairment-aware scenarios: pair, "
                "capture, testbed_pair, hidden_pair_*, ap_stream, "
                "offered_load)")
        indices = list(range(spec.n_trials))
        started = time.perf_counter()
        if spec.batch_size > 1:
            trials = self._run_batched(spec, indices)
        elif self.n_workers == 1 or len(indices) <= 1:
            trials = _scenario_batch(spec.to_dict(), indices)
        else:
            spec_dict = spec.to_dict()
            trials = []
            with self._pool() as pool:
                futures = [pool.submit(_scenario_batch, spec_dict, batch)
                           for batch in self._batches(indices)]
                for future in futures:
                    trials.extend(future.result())
        return RunResult(spec=spec, trials=trials,
                         n_workers=self.n_workers,
                         elapsed=time.perf_counter() - started)

    def _run_batched(self, spec: ScenarioSpec,
                     indices: list[int]) -> list[TrialResult]:
        """Batched execution: pooled synthesis, trial-axis decode.

        Workers run only the rng-bound synthesis (with per-trial seed
        streams identical to the loop path) and hand captures over
        through one parent-owned shared-memory arena; the parent then
        decodes ``spec.batch_size`` trials per pass through the
        scenario's batched engine, in trial-index order. Results are
        bit-identical to the loop path for any batch size or worker
        count — the batched engine's equivalence contract plus unchanged
        seeding make the mode a pure throughput knob.
        """
        hooks = get_batched_scenario(spec.kind)
        per_trial = hooks.captures_per_trial
        use_pool = self.n_workers > 1 and len(indices) > 1
        payloads: list = [None] * len(indices)
        arena = None
        try:
            if not use_pool:
                for i in indices:
                    payloads[i] = hooks.synthesize(
                        spec, TrialContext.for_trial(spec.seed, i))
            else:
                arena = SharedCaptureArena.create(
                    len(indices) * per_trial,
                    hooks.capture_samples_bound(spec))
                spec_dict = spec.to_dict()
                with self._pool() as pool:
                    futures = [
                        pool.submit(_synth_batch_shm, spec_dict, batch,
                                    arena.name, arena.n_slots,
                                    arena.slot_samples, per_trial)
                        for batch in self._batches(indices)]
                    for future in futures:
                        for payload in future.result():
                            payloads[payload.index] = payload
                for payload in payloads:
                    payload.captures = [
                        ref.resolve(arena) if isinstance(ref, CaptureRef)
                        else np.asarray(ref, dtype=complex).ravel()
                        for ref in payload.captures]
            trials = []
            for lo in range(0, len(payloads), spec.batch_size):
                group = payloads[lo:lo + spec.batch_size]
                results = hooks.decode(spec, group)
                trials.extend(
                    _coerce_trial(result, payload.index)
                    for result, payload in zip(results, group))
            return trials
        finally:
            if arena is not None:
                arena.close()

    def sweep(self, spec: ScenarioSpec, param: str,
              values: Sequence[Any]) -> SweepResult:
        """Run *spec* once per value of the dotted-path *param*.

        Every grid point reuses the same root seed (common random
        numbers), so along-the-sweep differences are the parameter's
        effect, not resampling noise.
        """
        if not values:
            raise ConfigurationError("sweep needs at least one value")
        return SweepResult(param=param, points=[
            (value, self.run(spec.with_override(param, value)))
            for value in values])

    def map(self, fn: Callable, n_trials: int | None = None, *,
            seed: int = 0, values: Sequence[Any] | None = None) -> list:
        """Run a bare trial function through the fan-out machinery.

        Without *values*, calls ``fn(ctx)`` for each trial index; with
        *values*, calls ``fn(ctx, value)`` once per value (a deterministic
        grid). *fn* must be module-level (picklable) to use more than one
        worker. Returns results in index order.
        """
        if values is None:
            if n_trials is None or n_trials < 1:
                raise ConfigurationError("map needs n_trials or values")
            items = [(i, None) for i in range(n_trials)]
            with_values = False
        else:
            items = list(enumerate(values))
            with_values = True
        if self.n_workers == 1 or len(items) <= 1:
            pairs = _map_batch(fn, seed, items, with_values)
        else:
            pairs = []
            with self._pool() as pool:
                futures = [
                    pool.submit(_map_batch, fn, seed, batch, with_values)
                    for batch in self._batches(items)]
                for future in futures:
                    pairs.extend(future.result())
        return [result for _, result in sorted(pairs, key=lambda p: p[0])]

    # ------------------------------------------------------------------
    def _batches(self, items: list) -> list[list]:
        size = self.batch_size
        if size is None:
            size = max(1, -(-len(items) // self.n_workers))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _pool(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(
            self.start_method or _default_start_method())
        return ProcessPoolExecutor(max_workers=self.n_workers,
                                   mp_context=context)
