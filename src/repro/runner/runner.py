"""The parallel Monte-Carlo executor.

:class:`MonteCarloRunner` fans a scenario's trials out across worker
processes. Trials are grouped into contiguous batches so each worker
amortizes its warm-up (imports, reference-signal cache fills) over many
trials of PHY work; per-trial randomness is derived from the trial index
alone (:mod:`repro.runner.seeding`), and aggregation is ordered by trial
index — so for a given root seed, results are **bit-identical whether the
run uses 1 worker or 40, fork or spawn**.

Execution is supervised (:mod:`repro.runner.resilience`): a trial
exception, a hung batch, or a killed worker costs one attempt under the
spec's ``[resilience]`` failure policy instead of aborting the run, a
crashed pool is respawned with only its unfinished batches resubmitted,
and completed trials can be journaled to a ``--checkpoint`` JSONL file
for grid-point + trial granularity resume. Because a retried trial
re-derives the same ``SeedSequence`` child, supervision never changes
what a surviving trial computes — the chaos harness
(:mod:`repro.runner.chaos`) proves it bit-identically.

``n_workers=1`` executes inline with zero process overhead (and is the
reference the parallel path is tested against). The generic :meth:`map`
drives arbitrary module-level trial functions through the same machinery,
which is how the deterministic figure benchmarks ride the runner.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CaptureTransportError, ConfigurationError, ReproError
from repro.runner.chaos import ChaosInjector
from repro.runner.resilience import (
    BatchTask,
    CheckpointJournal,
    PoolSupervisor,
    SupervisorStats,
    TrialFailure,
    raise_failure,
)
from repro.runner.results import RunResult, SweepResult, TrialResult
from repro.runner.scenarios import (
    TrialContext,
    deployment_scenarios,
    get_batched_scenario,
    get_scenario,
    impairment_scenarios,
    scenario_designs,
    scenario_supports_deployment,
    scenario_supports_impairments,
)
from repro.runner.shm import CaptureRef, SharedCaptureArena
from repro.runner.spec import ScenarioSpec

__all__ = ["MonteCarloRunner"]


def _coerce_trial(raw: Any, index: int) -> TrialResult:
    """Normalize a scenario function's return value to a TrialResult."""
    if isinstance(raw, TrialResult):
        if raw.index != index:
            raw = replace(raw, index=index)
        return raw
    if isinstance(raw, dict):
        return TrialResult(index=index,
                           metrics={k: float(v) for k, v in raw.items()})
    raise ConfigurationError(
        f"scenario returned {type(raw).__name__}; expected dict or "
        "TrialResult")


def _run_trial_guarded(fn: Callable, spec: ScenarioSpec, index: int,
                       attempt: int, injector: ChaosInjector | None
                       ) -> TrialResult | TrialFailure:
    """One fault-isolated trial: a failure is a record, not a poison pill.

    The context is re-derived from ``(spec.seed, index)`` alone, so a
    retried trial (higher *attempt*) computes bit-identically to the
    attempt a fault interrupted.
    """
    try:
        if injector is not None:
            injector.pre_trial(index, attempt)
        return _coerce_trial(
            fn(spec, TrialContext.for_trial(spec.seed, index)), index)
    except Exception as exc:
        return TrialFailure.from_exception(index, exc,
                                           attempts=attempt + 1)


def _scenario_batch(spec_dict: dict, indices: Sequence[int],
                    attempt: int = 0) -> list:
    """Worker entry point: run a contiguous batch of scenario trials.

    Receives the spec in plain-dict form so the call is spawn-safe; the
    per-process reference-signal cache persists across the batch. Each
    trial is individually guarded — the returned list holds a
    ``TrialResult`` or ``TrialFailure`` per index, in order.
    """
    spec = ScenarioSpec.from_dict(spec_dict)
    fn = get_scenario(spec.kind)
    injector = ChaosInjector(spec.faults)
    return [_run_trial_guarded(fn, spec, i, attempt, injector)
            for i in indices]


def _synth_batch_shm(spec_dict: dict, indices: Sequence[int], attempt: int,
                     arena_name: str | None, n_slots: int,
                     slot_samples: int, captures_per_trial: int,
                     checksum: bool) -> list:
    """Worker entry point: synthesize a batch of trials for batched decode.

    Runs the scenario's rng-bound synthesis hook per trial (same
    per-trial :class:`TrialContext` streams as the loop path) and writes
    each capture into its preassigned shared-memory slot — trial *i*'s
    capture *j* owns slot ``i * captures_per_trial + j``, so workers
    never contend and need no locking. Captures that overflow their slot
    (or exceed the per-trial slot count) travel pickled instead. With
    *checksum*, each ref carries a CRC32 the parent verifies on arrival.

    Per-trial synthesis is guarded like the loop path: a failed trial
    yields a ``TrialFailure`` in its list position instead of poisoning
    the batch.
    """
    spec = ScenarioSpec.from_dict(spec_dict)
    hooks = get_batched_scenario(spec.kind)
    injector = ChaosInjector(spec.faults)
    arena = None
    if arena_name is not None:
        arena = SharedCaptureArena.attach(arena_name, n_slots,
                                          slot_samples)
    try:
        out = []
        for i in indices:
            try:
                injector.pre_trial(i, attempt)
                payload = hooks.synthesize(
                    spec, TrialContext.for_trial(spec.seed, i))
                if arena is not None:
                    corrupt = injector.corrupt_slot(i, attempt)
                    refs = []
                    for j, capture in enumerate(payload.captures):
                        slot = (i * captures_per_trial + j
                                if j < captures_per_trial else -1)
                        ref = arena.write(slot, capture, checksum=checksum)
                        if corrupt and ref.slot >= 0 and ref.size > 0:
                            # Chaos: flip a sample *after* the checksum
                            # was computed, as real corruption would.
                            arena.grid[ref.slot, 0] += 1.0 + 1.0j
                            corrupt = False
                        refs.append(ref)
                    payload.captures = refs
                out.append(payload)
            except Exception as exc:
                out.append(TrialFailure.from_exception(
                    i, exc, attempts=attempt + 1, stage="synthesis"))
        return out
    finally:
        if arena is not None:
            arena.close()


def _map_batch(fn: Callable, root_seed: int,
               items: Sequence[tuple[int, Any]], with_values: bool
               ) -> list[tuple[int, Any]]:
    """Worker entry point for :meth:`MonteCarloRunner.map`."""
    out = []
    for index, value in items:
        ctx = TrialContext.for_trial(root_seed, index)
        out.append((index, fn(ctx, value) if with_values else fn(ctx)))
    return out


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


@dataclass
class MonteCarloRunner:
    """Runs scenario trials, fanning out across processes when asked.

    - ``n_workers``: process count; 1 (default) runs inline. ``0`` means
      "one per CPU".
    - ``batch_size``: trials per submitted batch; defaults to an even
      split across workers so each process gets one warm batch.
    - ``start_method``: ``fork``/``spawn``/``forkserver``; default picks
      ``fork`` where available. Results do not depend on the choice.
    - ``checkpoint``: path to a JSONL journal; completed trials are
      appended as batches land. ``resume`` re-runs only the trials the
      journal is missing (validated against a digest of the spec).

    Failure handling (policy, retries, watchdog) is configured on the
    *spec* (``[resilience]``), not the runner, so a checked-in scenario
    file carries its own robustness contract.
    """

    n_workers: int = 1
    batch_size: int | None = None
    start_method: str | None = None
    checkpoint: str | Path | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.n_workers == 0:
            self.n_workers = os.cpu_count() or 1
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1 (or 0 = auto)")
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.resume and self.checkpoint is None:
            raise ConfigurationError("resume=True needs a checkpoint path")
        self._journal_obj: CheckpointJournal | None = None

    # ------------------------------------------------------------------
    def run(self, spec: ScenarioSpec, *, n_trials: int | None = None,
            _point: str = "") -> RunResult:
        """Run every trial of *spec* and aggregate (see RunResult)."""
        if n_trials is not None:
            spec = replace(spec, n_trials=n_trials)
        supported = scenario_designs(spec.kind)
        if supported is not None and spec.design not in supported:
            raise ConfigurationError(
                f"scenario {spec.kind!r} does not support design "
                f"{spec.design!r} (supported: {list(supported)})")
        if not spec.impairments.is_empty \
                and not scenario_supports_impairments(spec.kind):
            raise ConfigurationError(
                f"scenario {spec.kind!r} does not apply the spec's "
                "[impairments] table; running it would silently ignore "
                "the pipelines (impairment-aware scenarios: "
                f"{', '.join(impairment_scenarios())})")
        if not spec.deployment.is_empty \
                and not scenario_supports_deployment(spec.kind):
            raise ConfigurationError(
                f"scenario {spec.kind!r} does not consume the spec's "
                "[deployment] table; running it would silently fall "
                "back to the default topology (deployment scenarios: "
                f"{', '.join(deployment_scenarios())})")
        spec.deployment.validate()
        journal = self._ensure_journal(spec)
        indices = list(range(spec.n_trials))
        completed: dict[int, TrialResult] = {}
        if journal is not None and self.resume:
            completed = {i: t for i, t in journal.completed(_point).items()
                         if i < spec.n_trials}
            indices = [i for i in indices if i not in completed]
        record = None
        if journal is not None:
            record = lambda index, trial: journal.record(_point, trial)  # noqa: E731
        started = time.perf_counter()
        if spec.batch_size > 1:
            trials, failures, stats = self._run_batched(spec, indices,
                                                        record)
        else:
            trials, failures, stats = self._run_loop(spec, indices, record)
        return RunResult(spec=spec,
                         trials=list(completed.values()) + trials,
                         n_workers=self.n_workers,
                         elapsed=time.perf_counter() - started,
                         failures=failures, supervision=stats)

    # -- loop-path execution -------------------------------------------
    def _run_loop(self, spec: ScenarioSpec, indices: list[int],
                  record: Callable[[int, TrialResult], None] | None
                  ) -> tuple[list[TrialResult], list[TrialFailure],
                             SupervisorStats | None]:
        if not indices:
            return [], [], None
        spec_dict = spec.to_dict()
        use_pool = self.n_workers > 1 and len(indices) > 1
        task = BatchTask(
            submit=lambda pool, idx, attempt: pool.submit(
                _scenario_batch, spec_dict, idx, attempt),
            run_inline=lambda idx, attempt: _scenario_batch(
                spec_dict, idx, attempt))
        supervisor = PoolSupervisor(self._pool if use_pool else None,
                                    spec.resilience,
                                    window=self.n_workers,
                                    on_success=record)
        results, failures = supervisor.execute(task, self._batches(indices))
        return ([results[i] for i in sorted(results)], failures,
                supervisor.stats)

    # -- batched execution ---------------------------------------------
    def _run_batched(self, spec: ScenarioSpec, indices: list[int],
                     record: Callable[[int, TrialResult], None] | None
                     ) -> tuple[list[TrialResult], list[TrialFailure],
                                SupervisorStats | None]:
        """Batched execution: pooled synthesis, trial-axis decode.

        Workers run only the rng-bound synthesis (with per-trial seed
        streams identical to the loop path) and hand captures over
        through one parent-owned shared-memory arena; the parent then
        decodes ``spec.batch_size`` trials per pass through the
        scenario's batched engine, in trial-index order. Results are
        bit-identical to the loop path for any batch size or worker
        count — the batched engine's equivalence contract plus unchanged
        seeding make the mode a pure throughput knob.

        Degraded-mode ladder: a corrupted shared-memory capture is
        re-synthesized inline from its own seed; a batched-decode
        exception drops the affected group to the per-trial loop path
        (bit-identical by the equivalence contract); only a trial that
        fails there too becomes a :class:`TrialFailure`. The arena is
        unlinked on *every* exit path — ``finally`` here plus the
        module-level ``atexit`` guard in :mod:`repro.runner.shm`.
        """
        if not indices:
            return [], [], None
        hooks = get_batched_scenario(spec.kind)
        per_trial = hooks.captures_per_trial
        policy = spec.resilience
        checksum = policy.should_verify_shm(not spec.faults.is_empty)
        use_pool = self.n_workers > 1 and len(indices) > 1
        spec_dict = spec.to_dict()
        arena = None
        trials: list[TrialResult] = []
        failures: dict[int, TrialFailure] = {}
        try:
            if use_pool:
                arena = SharedCaptureArena.create(
                    (max(indices) + 1) * per_trial,
                    hooks.capture_samples_bound(spec))
            arena_name = arena.name if arena is not None else None
            n_slots = arena.n_slots if arena is not None else 0
            slot_samples = arena.slot_samples if arena is not None else 0
            task = BatchTask(
                submit=lambda pool, idx, attempt: pool.submit(
                    _synth_batch_shm, spec_dict, idx, attempt, arena_name,
                    n_slots, slot_samples, per_trial, checksum),
                run_inline=lambda idx, attempt: _synth_batch_shm(
                    spec_dict, idx, attempt, None, 0, 0, per_trial,
                    False))
            supervisor = PoolSupervisor(self._pool if use_pool else None,
                                        policy, window=self.n_workers)
            payloads, synth_failures = supervisor.execute(
                task, self._batches(indices))
            for failure in synth_failures:
                failures[failure.index] = failure
            for index in sorted(payloads):
                payload = payloads[index]
                try:
                    payload.captures = [
                        ref.resolve(arena) if isinstance(ref, CaptureRef)
                        else np.asarray(ref, dtype=complex).ravel()
                        for ref in payload.captures]
                except CaptureTransportError:
                    # Corrupted slot: re-derive the trial's samples from
                    # its own SeedSequence child — bit-identical.
                    supervisor.stats.transport_retries += 1
                    payloads[index] = hooks.synthesize(
                        spec, TrialContext.for_trial(spec.seed, index))
            order = sorted(payloads)
            loop_fn = None
            for lo in range(0, len(order), spec.batch_size):
                group_indices = order[lo:lo + spec.batch_size]
                group = [payloads[i] for i in group_indices]
                try:
                    decoded = hooks.decode(spec, group)
                    batch_trials = [
                        _coerce_trial(result, payload.index)
                        for result, payload in zip(decoded, group)]
                except Exception:
                    supervisor.stats.inline_fallbacks += 1
                    if loop_fn is None:
                        loop_fn = get_scenario(spec.kind)
                    batch_trials = []
                    for index in group_indices:
                        outcome = _run_trial_guarded(loop_fn, spec, index,
                                                     0, None)
                        if isinstance(outcome, TrialFailure):
                            if policy.mode == "fail_fast":
                                raise_failure(
                                    outcome, tuple(failures.values()))
                            failures[index] = outcome
                        else:
                            batch_trials.append(outcome)
                for trial in batch_trials:
                    trials.append(trial)
                    if record is not None:
                        record(trial.index, trial)
            return (trials, [failures[i] for i in sorted(failures)],
                    supervisor.stats)
        finally:
            if arena is not None:
                arena.close()

    # ------------------------------------------------------------------
    def sweep(self, spec: ScenarioSpec, param: str,
              values: Sequence[Any]) -> SweepResult:
        """Run *spec* once per value of the dotted-path *param*.

        Every grid point reuses the same root seed (common random
        numbers), so along-the-sweep differences are the parameter's
        effect, not resampling noise. With a checkpoint, each grid point
        journals under its own key — a resumed sweep skips completed
        points entirely and picks up a half-finished point at the first
        missing trial.
        """
        if not values:
            raise ConfigurationError("sweep needs at least one value")
        points = []
        for value in values:
            point_spec = spec.with_override(param, value)
            points.append((value, self.run(point_spec,
                                           _point=f"{param}={value!r}")))
        return SweepResult(param=param, points=points)

    def map(self, fn: Callable, n_trials: int | None = None, *,
            seed: int = 0, values: Sequence[Any] | None = None) -> list:
        """Run a bare trial function through the fan-out machinery.

        Without *values*, calls ``fn(ctx)`` for each trial index; with
        *values*, calls ``fn(ctx, value)`` once per value (a deterministic
        grid). *fn* must be module-level (picklable) to use more than one
        worker. Returns results in index order.

        A failed batch cancels every batch still queued and raises a
        :class:`ReproError` naming the batch (and first item index) that
        failed, chained to the original exception.
        """
        if values is None:
            if n_trials is None or n_trials < 1:
                raise ConfigurationError("map needs n_trials or values")
            items = [(i, None) for i in range(n_trials)]
            with_values = False
        else:
            items = list(enumerate(values))
            with_values = True
        if self.n_workers == 1 or len(items) <= 1:
            pairs = _map_batch(fn, seed, items, with_values)
        else:
            pairs = []
            batches = self._batches(items)
            with self._pool() as pool:
                futures = {
                    pool.submit(_map_batch, fn, seed, batch, with_values):
                    number for number, batch in enumerate(batches)}
                current = None
                try:
                    for future in as_completed(futures):
                        current = future
                        pairs.extend(future.result())
                except Exception as exc:
                    for other in futures:
                        other.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
                    number = futures.get(current, -1)
                    first = batches[number][0][0] if number >= 0 else "?"
                    raise ReproError(
                        f"map batch {number} (first item index {first}) "
                        f"failed: {exc}") from exc
        return [result for _, result in sorted(pairs, key=lambda p: p[0])]

    # ------------------------------------------------------------------
    def _ensure_journal(self, spec: ScenarioSpec
                        ) -> CheckpointJournal | None:
        if self.checkpoint is None:
            return None
        if self._journal_obj is None:
            self._journal_obj = CheckpointJournal.open(
                self.checkpoint, spec, resume=self.resume)
        return self._journal_obj

    def _batches(self, items: list) -> list[list]:
        size = self.batch_size
        if size is None:
            size = max(1, -(-len(items) // self.n_workers))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _pool(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(
            self.start_method or _default_start_method())
        return ProcessPoolExecutor(max_workers=self.n_workers,
                                   mp_context=context)
