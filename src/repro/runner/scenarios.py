"""Scenario registry: mapping a spec's ``kind`` to a trial function.

A *scenario* is a function ``fn(spec, ctx) -> dict | TrialResult`` that
runs ONE Monte-Carlo trial: build the collision(s) for this trial from
``ctx.rng`` (or hand ``ctx.seed`` to a legacy integer-seeded driver), run
the design under test, and return scalar metrics (plus optional
:class:`~repro.testbed.metrics.FlowStats`/airtime/extra payloads via
:class:`~repro.runner.results.TrialResult`). The runner handles trial
fan-out, seeding, and aggregation; scenario functions stay single-trial
and pure-in-their-context.

Register new scenarios with the :func:`scenario` decorator; list them
with :func:`available_scenarios` or ``python -m repro list``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError, ReproError, ScheduleError
from repro.mac.hidden import HiddenScenario
from repro.phy.channel import ChannelParams
from repro.phy.frame import HEADER_BITS
from repro.phy.impairments import ImpairmentPipeline
from repro.phy.medium import Transmission, synthesize
from repro.phy.sync import Synchronizer
from repro.receiver.decoder import StandardDecoder
from repro.receiver.frontend import StreamConfig, SymbolStreamDecoder
from repro.runner.builders import (
    STREAM_CLIENT_NAMES,
    build_cell_session,
    build_city_session,
    build_stream_session,
    get_deployment,
    hidden_pair_scenario,
)
from repro.runner.cache import cached_preamble, cached_shaper, shared_cache
from repro.runner.results import TrialResult
from repro.runner.seeding import trial_rng, trial_seed, trial_seed_sequence
from repro.runner.spec import ScenarioSpec
from repro.testbed.experiment import (
    Design,
    PairExperiment,
    PairExperimentConfig,
    run_capture_sweep_point,
    run_three_sender_experiment,
)
from repro.testbed.metrics import BER_DELIVERY_THRESHOLD, FlowStats
from repro.testbed.topology import SensingClass, default_testbed
from repro.utils.bits import bit_error_rate
from repro.zigzag.batch import BatchedPairDecoder
from repro.zigzag.decoder import ZigZagPairDecoder, extract_bits
from repro.zigzag.engine import PacketSpec
from repro.zigzag.schedule import Placement, greedy_schedule

__all__ = [
    "BatchedScenarioHooks",
    "CollisionPayload",
    "TrialContext",
    "available_scenarios",
    "deployment_scenarios",
    "get_scenario",
    "get_batched_scenario",
    "impairment_scenarios",
    "scenario",
    "scenario_supports_batching",
    "scenario_supports_deployment",
    "scenario_supports_impairments",
]

ScenarioFn = Callable[[ScenarioSpec, "TrialContext"], Any]

_REGISTRY: dict[str, ScenarioFn] = {}
# Which spec.design values a scenario honors. None means the scenario is
# design-independent (it ignores the field or compares designs
# internally); the runner rejects specs whose design a scenario would
# silently ignore, and the CLI labels design-independent runs "n/a".
_DESIGN_SUPPORT: dict[str, tuple[str, ...] | None] = {}
# Whether a scenario threads spec.impairments through its signal path.
# The runner rejects specs carrying an [impairments] table for scenarios
# that would silently ignore it — an un-applied impairment reads as
# "ZigZag is robust to X" when X never happened.
_IMPAIRMENT_SUPPORT: dict[str, bool] = {}
# Whether a scenario consumes the spec's [deployment] table (a geometry-
# derived multi-cell topology). Same rejection logic: a deployment table
# a scenario ignores would silently run the default topology instead.
_DEPLOYMENT_SUPPORT: dict[str, bool] = {}
_ALL_DESIGNS = ("zigzag", "802.11", "collision-free")


@dataclass(frozen=True)
class TrialContext:
    """Everything one trial may draw randomness from."""

    index: int
    seed: int
    seed_sequence: np.random.SeedSequence
    rng: np.random.Generator

    @classmethod
    def for_trial(cls, root_seed: int, index: int) -> "TrialContext":
        """The canonical context of trial *index* under *root_seed*."""
        sequence = trial_seed_sequence(root_seed, index)
        return cls(index=index, seed=trial_seed(root_seed, index),
                   seed_sequence=sequence, rng=trial_rng(root_seed, index))


def scenario(name: str, *, designs: tuple[str, ...] | None = _ALL_DESIGNS,
             impairments: bool = False, deployment: bool = False
             ) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a trial function under a spec ``kind``.

    *designs* lists the ``spec.design`` values the scenario honors
    (default: all three); pass ``None`` for scenarios that are
    design-independent. *impairments* declares that the scenario threads
    the spec's ``[impairments]`` pipelines through its signal path;
    *deployment* that it builds its topology from the spec's
    ``[deployment]`` table. The runner rejects specs carrying either
    table for scenarios that don't consume it.
    """

    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in _REGISTRY:
            raise ConfigurationError(f"scenario {name!r} already registered")
        _REGISTRY[name] = fn
        _DESIGN_SUPPORT[name] = designs
        _IMPAIRMENT_SUPPORT[name] = impairments
        _DEPLOYMENT_SUPPORT[name] = deployment
        return fn

    return register


def scenario_designs(name: str) -> tuple[str, ...] | None:
    """Designs the scenario honors, or None if design-independent."""
    get_scenario(name)  # raise on unknown kinds
    return _DESIGN_SUPPORT[name]


def scenario_supports_impairments(name: str) -> bool:
    """Does the scenario apply the spec's ``[impairments]`` pipelines?"""
    get_scenario(name)  # raise on unknown kinds
    return _IMPAIRMENT_SUPPORT[name]


def scenario_supports_deployment(name: str) -> bool:
    """Does the scenario consume the spec's ``[deployment]`` table?"""
    get_scenario(name)  # raise on unknown kinds
    return _DEPLOYMENT_SUPPORT[name]


def impairment_scenarios() -> list[str]:
    """Sorted kinds that apply ``[impairments]`` (for error messages)."""
    return sorted(n for n, ok in _IMPAIRMENT_SUPPORT.items() if ok)


def deployment_scenarios() -> list[str]:
    """Sorted kinds that consume ``[deployment]`` (for error messages)."""
    return sorted(n for n, ok in _DEPLOYMENT_SUPPORT.items() if ok)


def get_scenario(name: str) -> ScenarioFn:
    """Look up a registered trial function by ``kind``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: "
            f"{sorted(_REGISTRY)}") from None


def available_scenarios() -> dict[str, str]:
    """``{kind: first docstring line}`` for every registered scenario."""
    return {name: (fn.__doc__ or "").strip().splitlines()[0]
            for name, fn in sorted(_REGISTRY.items())}


# ----------------------------------------------------------------------
# Batched execution hooks (ScenarioSpec.batch_size > 1)
# ----------------------------------------------------------------------
@dataclass
class CollisionPayload:
    """One trial's synthesized collision, ready for decoding.

    The batched execution mode splits a trial into rng-bound synthesis
    (workers) and numpy-bound decoding (the parent's trial-axis engine);
    this is what crosses the boundary. ``captures`` holds raw sample
    arrays in the parent, but :class:`~repro.runner.shm.CaptureRef`
    entries while in flight through shared memory. ``error`` set means
    synthesis itself failed and the decode stage must skip the trial
    (the loop path records the same failure metrics).
    """

    index: int
    captures: list
    specs: dict[str, PacketSpec]
    placements: list[Placement]
    truth: dict[str, np.ndarray]
    error: str | None = None


@dataclass(frozen=True)
class BatchedScenarioHooks:
    """How a scenario runs under ``batch_size > 1``.

    ``synthesize(spec, ctx)`` builds one trial's :class:`CollisionPayload`
    drawing ONLY from ``ctx`` — the same per-trial SeedSequence streams
    the loop path uses, which is what keeps results batch-size-invariant.
    ``decode(spec, payloads)`` turns a batch of payloads into
    per-trial :class:`TrialResult`s (same order). ``captures_per_trial``
    and ``capture_samples_bound`` size the shared-memory arena; the bound
    is advisory — oversized captures fall back to pickling.
    """

    synthesize: Callable[[ScenarioSpec, TrialContext], CollisionPayload]
    decode: Callable[[ScenarioSpec, list], list[TrialResult]]
    captures_per_trial: int
    capture_samples_bound: Callable[[ScenarioSpec], int]


_BATCHED_REGISTRY: dict[str, BatchedScenarioHooks] = {}


def scenario_supports_batching(name: str) -> bool:
    """Does the scenario register a trial-axis batched engine?"""
    get_scenario(name)  # raise on unknown kinds
    return name in _BATCHED_REGISTRY


def get_batched_scenario(name: str) -> BatchedScenarioHooks:
    """Look up a scenario's batched hooks by ``kind``."""
    get_scenario(name)  # raise on unknown kinds
    try:
        return _BATCHED_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"scenario {name!r} has no batched engine; set batch_size = 1 "
            f"(batched kinds: {sorted(_BATCHED_REGISTRY)})") from None


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
def _fairness_ratio(values) -> float:
    """Max/min throughput ratio, with a defined degenerate value.

    A trial where *every* sender got zero throughput is total starvation,
    not unfairness — report the perfectly-even ratio 1.0 rather than the
    0.0 that ``max/max(min, eps)`` would produce (which reads as "more
    fair than equal shares" to anything aggregating the metric).
    """
    values = [float(v) for v in values]
    top = max(values)
    if top <= 0.0:
        return 1.0
    return top / max(min(values), 1e-9)


def _experiment_config(spec: ScenarioSpec) -> PairExperimentConfig:
    ch = spec.channel
    imp = spec.impairments
    return PairExperimentConfig(
        payload_bits=spec.payload_bits,
        n_packets=spec.n_packets,
        max_rounds=spec.max_rounds,
        noise_power=ch.noise_power,
        slot_samples=spec.slot_samples,
        backoff=spec.backoff.build(),
        phase_noise_std=ch.phase_noise_std,
        tx_evm=ch.tx_evm,
        freq_spread=ch.freq_spread,
        coarse_freq_error=ch.coarse_freq_error,
        modulation=spec.modulation,
        preamble_length=spec.preamble_length,
        sender_impairments=(imp.sender_pipeline()
                            if imp.sender else None),
        capture_impairments=(imp.capture_pipeline()
                             if imp.capture else None),
    )


def _pair_snrs(spec: ScenarioSpec) -> tuple[float, float]:
    # params.snr_db, when present, overrides the [[sender]] entries for
    # BOTH senders — so a CLI sweep `--param snr_db=...` takes effect
    # even on specs that declare named senders.
    snr_override = spec.param("snr_db")
    if snr_override is not None:
        return float(snr_override), float(snr_override)
    if len(spec.senders) >= 2:
        return spec.senders[0].snr_db, spec.senders[1].snr_db
    snr = spec.senders[0].snr_db if spec.senders else 12.0
    return snr, snr


@scenario("pair", impairments=True)
def pair_trial(spec: ScenarioSpec, ctx: TrialContext) -> TrialResult:
    """Two saturated senders to one AP under the design under test (§5.2).

    Senders come from the spec's ``[[sender]]`` entries (first two); with
    none, ``params.snr_db`` sets a symmetric pair. Metrics are normalized
    per-sender and total throughput plus per-sender loss.
    """
    snr_a, snr_b = _pair_snrs(spec)
    experiment = PairExperiment(
        snr_a, snr_b, sense_probability=spec.sense_probability,
        config=_experiment_config(spec), rng=ctx.rng,
        preamble=cached_preamble(spec.preamble_length),
        shaper=cached_shaper())
    flows, airtime = experiment.run(Design(spec.design))
    shared = max(airtime, 1e-9)
    names = sorted(flows)
    metrics = {}
    for name, stats in flows.items():
        metrics[f"throughput_{name}"] = stats.delivered / shared
        metrics[f"loss_{name}"] = stats.loss_rate
    metrics["throughput_total"] = sum(
        metrics[f"throughput_{n}"] for n in names)
    return TrialResult(index=ctx.index, metrics=metrics, flows=flows,
                       airtime=airtime)


@scenario("capture", impairments=True)
def capture_trial(spec: ScenarioSpec, ctx: TrialContext) -> dict:
    """One Fig 5-4 capture-effect point: SNR_A = SNR_B + params.sinr_db.

    Wraps :func:`repro.testbed.experiment.run_capture_sweep_point` with a
    per-trial derived seed; metrics are the normalized throughputs
    ``A``, ``B`` and ``total``.
    """
    return run_capture_sweep_point(
        float(spec.param("sinr_db", 8.0)), Design(spec.design),
        snr_b_db=float(spec.param("snr_b_db", 9.0)),
        config=_experiment_config(spec), seed=ctx.seed,
        preamble=cached_preamble(spec.preamble_length),
        shaper=cached_shaper())


@scenario("three_senders", designs=("zigzag",))
def three_senders_trial(spec: ScenarioSpec, ctx: TrialContext) -> dict:
    """Three mutually-hidden senders, ZigZag AP (Fig 5-9, §4.5).

    Metrics: per-sender normalized throughput, their total, and the
    max/min fairness ratio.
    """
    tput = run_three_sender_experiment(
        snr_db=float(spec.param("snr_db", 12.0)),
        n_packets=spec.n_packets, payload_bits=spec.payload_bits,
        seed=ctx.seed, slot_samples=spec.slot_samples,
        noise_power=spec.channel.noise_power,
        preamble=cached_preamble(spec.preamble_length),
        shaper=cached_shaper())
    metrics = {f"throughput_{name}": value for name, value in tput.items()}
    values = list(tput.values())
    metrics["throughput_total"] = float(sum(values))
    metrics["fairness_ratio"] = _fairness_ratio(values)
    return metrics


@scenario("zigzag_ber", designs=None)
def zigzag_ber_trial(spec: ScenarioSpec, ctx: TrialContext) -> dict:
    """Fig 5-3 BER micro-benchmark: ZigZag vs the Collision-Free Scheduler.

    One hidden-pair collision pair per trial, decoded forward-only and
    forward+backward; the same frames are also sent in separate slots and
    decoded interference-free. Metrics: ``ber_fwd``, ``ber_both``,
    ``ber_free`` (each averaged over the pair's two packets).
    """
    rng = ctx.rng
    preamble = cached_preamble(spec.preamble_length)
    shaper = cached_shaper()
    noise_power = spec.channel.noise_power
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=noise_power)
    snr_db = float(spec.param("snr_db", 10.0))
    captures, frames, specs, placements = hidden_pair_scenario(
        rng, preamble, shaper, snr_db=snr_db,
        payload_bits=spec.payload_bits, noise_power=noise_power)
    metrics = {}
    for use_backward, key in ((False, "ber_fwd"), (True, "ber_both")):
        outcome = ZigZagPairDecoder(
            config, use_backward=use_backward).decode(
            [c.samples for c in captures], specs, placements)
        metrics[key] = float(np.mean(
            [outcome.results[n].ber_against(frames[n].body_bits)
             for n in frames]))
    # Collision-Free Scheduler baseline: same frames, separate slots; BER
    # measured over the full recovered stream with known framing.
    sync = Synchronizer(preamble, shaper)
    free = []
    for name, frame in frames.items():
        params = ChannelParams(
            gain=np.sqrt(10 ** (snr_db / 10) * noise_power)
            * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-4e-3, 4e-3)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3)
        cap = synthesize([Transmission.from_symbols(
            frame.symbols, shaper, params, 0, "x")], noise_power, rng,
            leading=8, tail=30)
        t = cap.transmissions[0]
        est = sync.acquire(
            cap.samples, t.symbol0,
            coarse_freq=params.freq_offset + rng.normal(0, 1.5e-5),
            noise_power=noise_power)
        stream = SymbolStreamDecoder(
            config, est, t.symbol0 + est.sampling_offset)
        chunk = stream.decode_chunk(cap.samples, frame.n_symbols)
        bits, _, _ = extract_bits(
            chunk.soft, PacketSpec(name, frame.n_symbols), len(preamble))
        free.append(bit_error_rate(
            frame.body_bits, bits[:frame.body_bits.size]))
    metrics["ber_free"] = float(np.mean(free))
    return metrics


@scenario("schedule_failure", designs=None)
def schedule_failure_trial(spec: ScenarioSpec, ctx: TrialContext) -> dict:
    """Fig 4-7: does greedy chunk scheduling fail for this backoff draw?

    ``params.n_senders`` mutually-hidden senders collide ``n_senders``
    times with fresh jitter drawn from the spec's backoff policy; the
    trial reports ``failed`` = 1.0 when no complete decode order exists.
    The run-level mean of ``failed`` is the figure's failure probability.
    """
    rng = ctx.rng
    n_senders = int(spec.param("n_senders", 3))
    n_symbols = int(spec.param("n_symbols", 600))
    picker = spec.backoff.build()
    hidden = HiddenScenario(n_senders=n_senders,
                            slot_samples=spec.slot_samples, picker=picker)
    names = [f"s{i}" for i in range(n_senders)]
    rounds = hidden.collision_offsets(rng, n_senders)
    placements = [
        # Each transmission lands with an independent fractional sampling
        # phase, as on real hardware — exact sample ties do not occur.
        Placement(name, c, float(off) + rng.uniform(0, 1), n_symbols, 2)
        for c, offsets in enumerate(rounds)
        for name, off in zip(names, offsets)
    ]
    try:
        # The 1-symbol margin matches the physical engine: packets closer
        # than a symbol (same slot, fractional gap) are undecodable.
        greedy_schedule(placements, margin_symbols=1.0)
    except ScheduleError:
        return {"failed": 1.0}
    return {"failed": 0.0}


@scenario("testbed_pair", designs=None, impairments=True)
def testbed_pair_trial(spec: ScenarioSpec, ctx: TrialContext) -> TrialResult:
    """One §5.6 campaign draw: a random testbed pair under both designs.

    Samples a sender pair (with a reachable AP) from the 14-node testbed
    and runs it under Current 802.11 and ZigZag. Metrics compare the two
    designs; ``extra`` carries per-flow detail and the sensing class for
    the Fig 5-5..5-8 CDFs and scatter plots.
    """
    rng = ctx.rng
    testbed = shared_cache().get(
        ("testbed", int(spec.param("testbed_seed", 7))),
        lambda: default_testbed(seed=int(spec.param("testbed_seed", 7))))
    a, b, ap = testbed.sample_pair(rng)
    sense = min(testbed.sense_probability(a, b),
                testbed.sense_probability(b, a))
    sensing_class = testbed.sensing_class(a, b)
    config = _experiment_config(spec)
    metrics: dict[str, float] = {}
    extra: dict[str, Any] = {"pair": (a, b, ap),
                             "class": sensing_class.value}
    flows_out: dict[str, FlowStats] = {}
    for design in (Design.CURRENT_80211, Design.ZIGZAG):
        experiment = PairExperiment(
            float(testbed.snr_db[ap, a]), float(testbed.snr_db[ap, b]),
            sense_probability=sense, config=config,
            rng=np.random.default_rng(int(rng.integers(1 << 31))),
            preamble=cached_preamble(spec.preamble_length),
            shaper=cached_shaper())
        flows, airtime = experiment.run(design)
        shared = max(airtime, 1e-9)
        tag = "80211" if design is Design.CURRENT_80211 else "zigzag"
        metrics[f"throughput_{tag}"] = sum(
            s.delivered for s in flows.values()) / shared
        metrics[f"loss_{tag}"] = float(np.mean(
            [s.loss_rate for s in flows.values()]))
        extra[tag] = {
            "flow_throughputs": {n: s.delivered / shared
                                 for n, s in flows.items()},
            "loss": [s.loss_rate for s in flows.values()],
        }
        for name, stats in flows.items():
            flows_out[f"{tag}_{name}"] = stats
    metrics["hidden"] = float(sensing_class is not SensingClass.PERFECT)
    return TrialResult(index=ctx.index, metrics=metrics, flows=flows_out,
                       extra=extra)


@scenario("receiver_stream", designs=("zigzag",))
def receiver_stream_trial(spec: ScenarioSpec, ctx: TrialContext) -> dict:
    """The assembled §5.1(d) AP on a two-collision hidden-pair stream.

    Feeds the high-level :class:`repro.ZigZagReceiver` the two captures of
    a hidden pair; metrics are the number of packets recovered (0..2), the
    mean BER over the recovered ones, and — as a measured baseline — the
    packets a current-802.11 AP (plain :class:`StandardDecoder` per
    transmission) delivers from the same captures.
    """
    from repro.core import ReceiverConfig, ZigZagReceiver
    from repro.phy.frame import Frame
    from repro.utils.bits import random_bits

    rng = ctx.rng
    preamble = cached_preamble(spec.preamble_length)
    shaper = cached_shaper()
    noise_power = spec.channel.noise_power
    snr_db = float(spec.param("snr_db", 13.0))
    amplitude = np.sqrt(10 ** (snr_db / 10) * noise_power)
    spread = spec.channel.freq_spread
    frames = {
        "A": Frame.make(random_bits(spec.payload_bits, rng), src=1,
                        preamble=preamble),
        "B": Frame.make(random_bits(spec.payload_bits, rng), src=2,
                        preamble=preamble),
    }
    freqs = {n: float(rng.uniform(-spread, spread)) for n in frames}
    receiver = ZigZagReceiver(ReceiverConfig(
        preamble=preamble, shaper=shaper, noise_power=noise_power,
        expected_symbols=frames["A"].n_symbols))
    # The AP knows each client's coarse frequency offset from association
    # time (§4.2.1) — seed the table the way _learn() would.
    for src, name in ((1, "A"), (2, "B")):
        receiver.clients.update(src, freqs[name])
    captures = []
    for offsets in ((0, 160), (0, 60)):
        txs = []
        for (name, frame), offset in zip(frames.items(), offsets):
            params = ChannelParams(
                gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                freq_offset=freqs[name],
                sampling_offset=float(rng.uniform(0, 1)),
                phase_noise_std=spec.channel.phase_noise_std)
            txs.append(Transmission.from_symbols(
                frame.symbols, shaper, params, offset, name))
        captures.append(synthesize(txs, noise_power, rng,
                                   leading=8, tail=30))
    decoded = []
    for capture in captures:
        try:
            decoded.extend(r for r in receiver.receive(capture.samples)
                           if r.success)
        except ReproError:
            continue
    bers = []
    for result in decoded:
        if result.header is not None and result.header.src in (1, 2):
            truth = frames["A" if result.header.src == 1 else "B"]
            bers.append(result.ber_against(truth.body_bits))
    # Measured current-802.11 baseline on the same air: a plain
    # StandardDecoder applied to each transmission in each collision.
    baseline_delivered = 0
    for capture in captures:
        for t in capture.transmissions:
            decoder = StandardDecoder(
                preamble, shaper, noise_power=noise_power,
                coarse_freq=freqs[t.label])
            try:
                result = decoder.decode(capture.samples,
                                        start_position=t.symbol0)
            except ReproError:
                continue
            if result.ber_against(frames[t.label].body_bits) \
                    < BER_DELIVERY_THRESHOLD:
                baseline_delivered += 1
    return {"packets_recovered": float(len(decoded)),
            "mean_ber": float(np.mean(bers)) if bers else 1.0,
            "packets_recovered_80211": float(baseline_delivered)}


# ----------------------------------------------------------------------
# Streaming closed-loop scenarios (the repro.link subsystem)
# ----------------------------------------------------------------------
def _stream_designs_trial(spec: ScenarioSpec, ctx: TrialContext,
                          default_load: float | None) -> TrialResult:
    """One closed-loop soak under BOTH AP designs, common random numbers.

    Each design's session is built from an identically-seeded generator,
    so the air starts out the same and differences are the receiver's
    doing (the closed loop then diverges through its own feedback). The
    per-client metrics describe the ZigZag session — the design under
    study — while aggregate throughput/loss/delivered pairs compare it
    with the Current-802.11 AP on the same scenario.
    """
    reports = {}
    for design, tag in (("zigzag", "zigzag"), ("802.11", "80211")):
        session = build_stream_session(
            spec, np.random.default_rng(ctx.seed), design,
            default_load=default_load)
        reports[tag] = session.run()
    metrics: dict[str, float] = {}
    flows = {}
    for tag, report in reports.items():
        stats_all = list(report.flows.values())
        metrics[f"throughput_{tag}"] = report.throughput()
        metrics[f"delivered_{tag}"] = float(report.total_delivered)
        metrics[f"loss_{tag}"] = float(np.mean(
            [s.loss_rate for s in stats_all])) if stats_all else 0.0
        metrics[f"timed_out_{tag}"] = float(report.timed_out)
        for name, stats in report.flows.items():
            flows[f"{tag}_{name}"] = stats
    zz = reports["zigzag"]
    for name in zz.flows:
        metrics[f"throughput_{name}"] = zz.throughput(name)
        metrics[f"loss_{name}"] = zz.flows[name].loss_rate
    rx = zz.receiver_stats
    metrics["zigzag_matches"] = float(rx.zigzag_matches)
    metrics["collisions_stored"] = float(rx.collisions_stored)
    # Match-path observability (§4.2.2/§4.5): "buffer scanned but the
    # score stayed below threshold" vs "nothing was ever scoreable" are
    # different soak-run failure modes; surface both, plus the k-way
    # counters, per run.
    metrics["match_attempts"] = float(rx.match_attempts)
    metrics["match_rejects_threshold"] = float(rx.match_rejects_threshold)
    metrics["multiway_matches"] = float(rx.multiway_matches)
    metrics["max_resident_samples"] = zz.counters["max_resident_samples"]
    extra = {tag: dict(report.counters)
             for tag, report in reports.items()}
    return TrialResult(index=ctx.index, metrics=metrics, flows=flows,
                       airtime=zz.airtime_packets, extra=extra)


@scenario("ap_stream", designs=None, impairments=True)
def ap_stream_trial(spec: ScenarioSpec, ctx: TrialContext) -> TrialResult:
    """N-client closed-loop streaming soak: ZigZag AP vs current 802.11.

    Continuous air, streaming burst segmentation, live ACK/retransmission
    feedback (§4.2.2, §4.4) — the paper's online system rather than
    hand-built collision pairs. Saturated clients unless the spec sets
    per-sender ``offered_load``. Topology via ``params.hidden_pairs``
    (e.g. ``"A:B"``) or ``sense_probability``. Metrics: per-client
    throughput/loss (ZigZag session) plus aggregate
    ``throughput/delivered/loss_{zigzag,80211}`` comparison pairs.
    """
    return _stream_designs_trial(spec, ctx, default_load=None)


@scenario("three_senders_stream", designs=("zigzag",), impairments=True)
def three_senders_stream_trial(spec: ScenarioSpec,
                               ctx: TrialContext) -> TrialResult:
    """Fig 5-9 through the online AP: n mutually-hidden streaming senders.

    ``params.n_senders`` (default 3) saturated clients form one hidden
    clique over continuous air; each collision then carries all n
    packets, and the closed-loop ZigZag AP resolves the k-way collision
    sets assembled from its buffer's match graph (§4.5) — the same
    physics as the offline ``three_senders`` testbed loop, but running
    through the streaming ``link`` subsystem with real segmentation,
    matching, ACKs and retransmissions. Metrics: per-sender and total
    wall-clock normalized throughput, ``collision_throughput_*``
    (delivered packets per detected-collision airtime, the offline Fig
    5-9 normalization basis), ``fairness_ratio``, and the receiver's
    match/k-way counters. Sweep ``--param n_senders=2:4`` for the
    throughput-vs-k curve.
    """
    if spec.senders:
        raise ConfigurationError(
            "three_senders_stream builds its own symmetric clique from "
            "params.n_senders/snr_db; [[sender]] tables would be "
            "silently ignored — use the ap_stream scenario with "
            "params.hidden_cliques for per-sender control")
    n = int(spec.param("n_senders", 3))
    if not 2 <= n <= len(STREAM_CLIENT_NAMES):
        raise ConfigurationError(
            f"params.n_senders must be in [2, {len(STREAM_CLIENT_NAMES)}]")
    names = list(STREAM_CLIENT_NAMES[:n])
    overrides = dict(spec.extra_params)
    overrides["n_clients"] = n
    overrides["hidden_cliques"] = ":".join(names)
    overrides.pop("hidden_pairs", None)
    clique_spec = dataclasses.replace(
        spec, params=tuple(sorted(overrides.items())))
    session = build_stream_session(
        clique_spec, np.random.default_rng(ctx.seed), "zigzag")
    report = session.run()
    rx = report.receiver_stats
    metrics: dict[str, float] = {}
    for name in names:
        metrics[f"throughput_{name}"] = report.throughput(name)
        metrics[f"loss_{name}"] = report.flows[name].loss_rate
    metrics["throughput_total"] = report.throughput()
    metrics["fairness_ratio"] = _fairness_ratio(
        [report.throughput(name) for name in names])
    # The offline three_senders scenario normalizes by collision count
    # (each collision is one packet-airtime of fully-overlapped medium);
    # report the same basis so the two paths are directly comparable.
    collisions = max(float(rx.collisions_detected), 1.0)
    for name in names:
        metrics[f"collision_throughput_{name}"] = \
            report.flows[name].delivered / collisions
    metrics["collision_throughput_total"] = \
        report.total_delivered / collisions
    metrics["collisions_detected"] = float(rx.collisions_detected)
    metrics["zigzag_matches"] = float(rx.zigzag_matches)
    metrics["multiway_attempts"] = float(rx.multiway_attempts)
    metrics["multiway_matches"] = float(rx.multiway_matches)
    metrics["packets_multiway"] = float(rx.packets_multiway)
    metrics["match_attempts"] = float(rx.match_attempts)
    metrics["match_rejects_threshold"] = float(rx.match_rejects_threshold)
    metrics["timed_out"] = float(report.timed_out)
    return TrialResult(index=ctx.index, metrics=metrics,
                       flows=dict(report.flows),
                       airtime=report.airtime_packets,
                       extra={"counters": dict(report.counters)})


@scenario("offered_load", designs=None, impairments=True)
def offered_load_trial(spec: ScenarioSpec, ctx: TrialContext) -> TrialResult:
    """One point of a throughput/loss-vs-offered-load curve.

    Clients offer ``params.offered_load`` (default 0.6) of a packet-
    airtime each (Poisson arrivals); sweep it with
    ``--param offered_load=0.2:1.0:0.2`` for the classic S-vs-G curves
    of the ZigZag AP against the current-802.11 AP. Metrics match
    ``ap_stream``.
    """
    load = float(spec.param("offered_load", 0.6))
    return _stream_designs_trial(spec, ctx, default_load=load)


# ----------------------------------------------------------------------
# Geometry-derived city scenarios (the [deployment] spec table)
# ----------------------------------------------------------------------
@scenario("city_scale", designs=None, impairments=True, deployment=True)
def city_scale_trial(spec: ScenarioSpec, ctx: TrialContext) -> TrialResult:
    """One cell of a geometry-derived city block, ZigZag vs 802.11.

    The ``[deployment]`` table generates the block (APs on a jittered
    grid, clients by pathloss-strongest association, hidden pairs from
    inter-client SNR); trial *i* runs cell ``i mod n_cells``, so a run
    whose ``n_trials`` is a multiple of the cell count covers the block
    evenly and the runner's process pool shards one cell per worker.
    Out-of-cell transmitters the AP hears above
    ``deployment.interference_floor_db`` are approximated as bursty
    noise on the capture path (the coupled alternative is
    ``city_multicell``). Metrics mirror ``ap_stream`` aggregates plus
    the cell's derived shape (``cell_clients``, ``cell_hidden_pairs``).
    """
    deployment = get_deployment(spec)
    cells = deployment.cells()
    plan = cells[ctx.index % len(cells)]
    metrics: dict[str, float] = {}
    flows = {}
    extra: dict[str, Any] = {"ap": plan.ap, "clients": plan.names}
    reports = {}
    for design, tag in (("zigzag", "zigzag"), ("802.11", "80211")):
        session = build_cell_session(
            spec, np.random.default_rng(ctx.seed), design, deployment,
            plan, approximate_interference=True)
        report = session.run()
        reports[tag] = report
        stats_all = list(report.flows.values())
        metrics[f"throughput_{tag}"] = report.throughput()
        metrics[f"delivered_{tag}"] = float(report.total_delivered)
        metrics[f"loss_{tag}"] = float(np.mean(
            [s.loss_rate for s in stats_all])) if stats_all else 0.0
        metrics[f"timed_out_{tag}"] = float(report.timed_out)
        for name, stats in report.flows.items():
            flows[f"{tag}_{name}"] = stats
    zz = reports["zigzag"]
    rx = zz.receiver_stats
    metrics["zigzag_matches"] = float(rx.zigzag_matches)
    metrics["multiway_matches"] = float(rx.multiway_matches)
    metrics["max_resident_samples"] = zz.counters["max_resident_samples"]
    metrics["cell_clients"] = float(plan.n_clients)
    metrics["cell_hidden_pairs"] = float(len(plan.hidden_pairs))
    extra["counters"] = {tag: dict(r.counters)
                         for tag, r in reports.items()}
    return TrialResult(index=ctx.index, metrics=metrics, flows=flows,
                       airtime=zz.airtime_packets, extra=extra)


@scenario("city_multicell", designs=("zigzag", "802.11"),
          impairments=True, deployment=True)
def city_multicell_trial(spec: ScenarioSpec,
                         ctx: TrialContext) -> TrialResult:
    """The whole coupled city block under the design under test.

    One :class:`~repro.link.MultiCellSession` per trial: every populated
    cell runs its own event engine and the coordinator exchanges real
    inter-cell interference waveforms at horizon boundaries — the
    reference physics the sharded ``city_scale`` approximation is
    measured against. With ``deployment.coupled_workers != 1`` the
    cells step on a pool of pinned worker processes with bit-identical
    results (``coupled_workers``/``coupled_degraded`` record how the
    block was actually driven). Metrics: block throughput/delivered,
    per-cell throughput (``throughput_ap{a}``), timed-out cell count,
    the summed resident-sample peak, and the exchange counters.
    """
    city = build_city_session(
        spec, np.random.default_rng(ctx.seed), spec.design)
    report = city.run()
    metrics: dict[str, float] = {
        "coupled_workers": float(report.workers),
        "coupled_degraded": float(report.degraded),
        "throughput_total": report.throughput(),
        "delivered_total": float(report.total_delivered),
        "timed_out_cells": float(report.timed_out_cells),
        "max_resident_samples": float(report.max_resident_samples),
        "windows": report.counters["windows"],
        "injections": report.counters["injections"],
        "samples_injected": report.counters["samples_injected"],
        "samples_clipped": report.counters["samples_clipped"],
    }
    flows = {}
    losses = []
    for ap, cell_report in sorted(report.cells.items()):
        metrics[f"throughput_ap{ap}"] = cell_report.throughput()
        for name, stats in cell_report.flows.items():
            flows[f"ap{ap}_{name}"] = stats
            losses.append(stats.loss_rate)
    metrics["loss_mean"] = float(np.mean(losses)) if losses else 0.0
    return TrialResult(index=ctx.index, metrics=metrics, flows=flows,
                       extra={"counters": dict(report.counters)})


# ----------------------------------------------------------------------
# Impaired hidden-pair scenarios (beyond the quasi-static channel)
# ----------------------------------------------------------------------
def _impaired_pair_metrics(spec: ScenarioSpec, ctx: TrialContext,
                           default_sender: tuple = (),
                           default_capture: tuple = ()) -> dict:
    """One impaired hidden-pair trial: ZigZag vs the standard decoder.

    Builds the canonical two-collision hidden pair with the spec's
    ``[impairments]`` pipelines (falling back to the scenario's default
    stages when the table is empty), ZigZag-decodes the pair, and — on
    the same two captures — runs the plain :class:`StandardDecoder` per
    transmission, keeping each packet's best BER. The metric pairs chart
    how each receiver degrades as the impairment worsens.
    """
    rng = ctx.rng
    preamble = cached_preamble(spec.preamble_length)
    shaper = cached_shaper()
    noise_power = spec.channel.noise_power
    imp = spec.impairments
    sender_pipe = imp.sender_pipeline() if imp.sender \
        else ImpairmentPipeline.from_specs(default_sender)
    capture_pipe = imp.capture_pipeline() if imp.capture \
        else ImpairmentPipeline.from_specs(default_capture)
    snr_db = float(spec.param("snr_db", 12.0))
    bers_z = {"A": 1.0, "B": 1.0}
    bers_s = {"A": 1.0, "B": 1.0}
    try:
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, snr_db=snr_db,
            payload_bits=spec.payload_bits, noise_power=noise_power,
            sender_impairments=sender_pipe if len(sender_pipe) else None,
            capture_impairments=capture_pipe if len(capture_pipe) else None)
    except ReproError:
        captures = []
    if captures:
        config = StreamConfig(preamble=preamble, shaper=shaper,
                              noise_power=noise_power)
        try:
            outcome = ZigZagPairDecoder(config).decode(
                [c.samples for c in captures], specs, placements)
            bers_z = {n: outcome.results[n].ber_against(
                frames[n].body_bits) for n in frames}
        except ReproError:
            pass
        for capture in captures:
            for t in capture.transmissions:
                coarse = t.params.freq_offset + rng.normal(
                    0, spec.channel.coarse_freq_error)
                decoder = StandardDecoder(
                    preamble, shaper, noise_power=noise_power,
                    coarse_freq=coarse)
                try:
                    result = decoder.decode(capture.samples,
                                            start_position=t.symbol0)
                except ReproError:
                    continue
                bers_s[t.label] = min(
                    bers_s[t.label],
                    result.ber_against(frames[t.label].body_bits))
    delivered = {key: float(sum(b < BER_DELIVERY_THRESHOLD
                                for b in bers.values()))
                 for key, bers in (("zigzag", bers_z), ("standard", bers_s))}
    return {"ber_zigzag": float(np.mean(list(bers_z.values()))),
            "ber_standard": float(np.mean(list(bers_s.values()))),
            "delivered_zigzag": delivered["zigzag"],
            "delivered_standard": delivered["standard"]}


@scenario("hidden_pair_impaired", designs=None, impairments=True)
def hidden_pair_impaired_trial(spec: ScenarioSpec,
                               ctx: TrialContext) -> dict:
    """Hidden pair under the spec's ``[impairments]`` pipelines.

    The fully declarative variant: whatever ``[[impairments.sender]]`` /
    ``[[impairments.capture]]`` stages the TOML file lists (identity when
    absent). Metrics: ``ber_zigzag``, ``ber_standard``,
    ``delivered_zigzag``, ``delivered_standard`` (packets out of 2).
    """
    return _impaired_pair_metrics(spec, ctx)


@scenario("hidden_pair_fading", designs=None, impairments=True)
def hidden_pair_fading_trial(spec: ScenarioSpec,
                             ctx: TrialContext) -> dict:
    """Hidden pair under time-varying Rayleigh fading.

    Defaults to one per-sender ``rayleigh`` stage whose coherence time is
    ``params.coherence_samples`` (400); an explicit ``[impairments]``
    table overrides the default. Short coherence moves the channel within
    one packet, stressing ZigZag's chunk-by-chunk subtraction.
    """
    coherence = int(spec.param("coherence_samples", 400))
    return _impaired_pair_metrics(
        spec, ctx,
        default_sender=({"kind": "rayleigh",
                         "coherence_samples": coherence},))


@scenario("hidden_pair_frontend", designs=None, impairments=True)
def hidden_pair_frontend_trial(spec: ScenarioSpec,
                               ctx: TrialContext) -> dict:
    """Hidden pair through a nonlinear AP front end.

    Defaults to a capture pipeline of soft clipping (``params.
    saturation``, relative to the stronger sender's amplitude), ADC
    quantization (``params.enob``), IQ imbalance and DC offset; an
    explicit ``[impairments]`` table overrides the default.
    """
    snr_db = float(spec.param("snr_db", 12.0))
    amplitude = float(np.sqrt(10 ** (snr_db / 10)
                              * spec.channel.noise_power))
    saturation = float(spec.param("saturation", 3.0)) * amplitude
    full_scale = float(spec.param("full_scale", 4.0)) * amplitude
    return _impaired_pair_metrics(
        spec, ctx,
        default_capture=(
            {"kind": "clip", "saturation": saturation},
            {"kind": "quantize", "enob": float(spec.param("enob", 7.0)),
             "full_scale": full_scale},
            {"kind": "iq_imbalance",
             "amplitude_db": float(spec.param("iq_amplitude_db", 0.2)),
             "phase_deg": float(spec.param("iq_phase_deg", 1.0))},
            {"kind": "dc_offset",
             "dc_i": float(spec.param("dc_offset", 0.01)) * amplitude,
             "dc_q": -float(spec.param("dc_offset", 0.01)) * amplitude},
        ))


# ----------------------------------------------------------------------
# Batched hidden-pair decode (the batch_size > 1 reference scenario)
# ----------------------------------------------------------------------
def _pair_stream_config(spec: ScenarioSpec) -> StreamConfig:
    return StreamConfig(preamble=cached_preamble(spec.preamble_length),
                        shaper=cached_shaper(),
                        noise_power=spec.channel.noise_power)


def _hidden_pair_decode_synth(spec: ScenarioSpec,
                              ctx: TrialContext) -> CollisionPayload:
    """Synthesize one hidden-pair trial from the trial's own rng.

    This is the rng-bound half of a ``hidden_pair_decode`` trial — every
    draw comes from ``ctx.rng`` in the same order regardless of
    ``batch_size``, so per-trial seed streams (and therefore results)
    are identical between the loop and batched modes.
    """
    rng = ctx.rng
    preamble = cached_preamble(spec.preamble_length)
    shaper = cached_shaper()
    imp = spec.impairments
    sender_pipe = imp.sender_pipeline() if imp.sender else None
    capture_pipe = imp.capture_pipeline() if imp.capture else None
    try:
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper,
            snr_db=float(spec.param("snr_db", 12.0)),
            payload_bits=spec.payload_bits,
            noise_power=spec.channel.noise_power,
            sender_impairments=sender_pipe,
            capture_impairments=capture_pipe)
    except ReproError as exc:
        return CollisionPayload(ctx.index, [], {}, [], {},
                                error=str(exc))
    return CollisionPayload(
        index=ctx.index,
        captures=[c.samples for c in captures],
        specs=specs,
        placements=placements,
        truth={name: frames[name].body_bits for name in frames})


def _pair_payload_result(payload: CollisionPayload,
                         outcome) -> TrialResult:
    """Per-trial metrics + FlowStats from a (possibly failed) decode.

    Shared verbatim by the loop and batched paths so the two modes can
    only differ if the decoded bits themselves differ.
    """
    flows = {name: FlowStats() for name in sorted(payload.truth)} or \
        {name: FlowStats() for name in ("A", "B")}
    bers = {}
    for name, stats in flows.items():
        ber = 1.0
        if outcome is not None and name in outcome.results:
            ber = float(outcome.results[name].ber_against(
                payload.truth[name]))
        bers[name] = ber
        stats.record(ber)
    delivered = float(sum(b < BER_DELIVERY_THRESHOLD
                          for b in bers.values()))
    return TrialResult(
        index=payload.index,
        metrics={"ber": float(np.mean(list(bers.values()))),
                 "delivered": delivered,
                 "decode_failed": float(outcome is None)},
        flows=flows)


@scenario("hidden_pair_decode", designs=None, impairments=True)
def hidden_pair_decode_trial(spec: ScenarioSpec,
                             ctx: TrialContext) -> TrialResult:
    """ZigZag hidden-pair decode with an optional batched engine.

    One canonical two-collision hidden pair per trial; metrics are the
    pair-mean BER against ground truth, packets delivered (of 2), and a
    decode-failure flag, plus per-sender :class:`FlowStats`. With
    ``batch_size > 1`` the runner synthesizes trials in the worker pool
    and decodes them through the trial-axis
    :class:`~repro.zigzag.batch.BatchedPairDecoder` in groups — results
    are bit-identical to this loop path by the batched engine's
    equivalence contract.
    """
    payload = _hidden_pair_decode_synth(spec, ctx)
    outcome = None
    if payload.error is None:
        try:
            outcome = ZigZagPairDecoder(_pair_stream_config(spec)).decode(
                payload.captures, payload.specs, payload.placements)
        except ReproError:
            outcome = None
    return _pair_payload_result(payload, outcome)


def _hidden_pair_decode_batch(spec: ScenarioSpec,
                              payloads: list) -> list[TrialResult]:
    """Decode a batch of hidden-pair payloads through the trial axis.

    Error parity with the loop path: a whole-batch failure (or a trial
    whose scalar fallback raises inside ``decode_batch``) replays every
    trial through the scalar decoder with the loop path's own per-trial
    try/except, so a failing trial yields the identical failure metrics
    instead of poisoning its batch.
    """
    config = _pair_stream_config(spec)
    live = [p for p in payloads if p.error is None]
    outcomes: dict[int, Any] = {}
    if live:
        trials = [(p.captures, p.specs, p.placements) for p in live]
        try:
            results = BatchedPairDecoder(config).decode_batch(trials)
        except ReproError:
            scalar = ZigZagPairDecoder(config)
            results = []
            for trial in trials:
                try:
                    results.append(scalar.decode(*trial))
                except ReproError:
                    results.append(None)
        for payload, outcome in zip(live, results):
            outcomes[payload.index] = outcome
    return [_pair_payload_result(p, outcomes.get(p.index))
            for p in payloads]


def _hidden_pair_capture_bound(spec: ScenarioSpec) -> int:
    """Upper bound on one capture's sample count (arena slot sizing)."""
    shaper = cached_shaper()
    n_symbols = (spec.preamble_length + HEADER_BITS
                 + spec.payload_bits + 32)
    waveform = shaper.sps * (n_symbols - 1) + shaper.taps.size
    # leading=8 + max offset 160 + waveform + tail=40, with slack for
    # alternate offsets via params; overflow just falls back to pickle.
    return int(1.25 * (8 + 160 + waveform + 40)) + 64


_BATCHED_REGISTRY["hidden_pair_decode"] = BatchedScenarioHooks(
    synthesize=_hidden_pair_decode_synth,
    decode=_hidden_pair_decode_batch,
    captures_per_trial=2,
    capture_samples_bound=_hidden_pair_capture_bound,
)
