"""Deterministic, spawn-safe per-trial seeding.

Trial *i* of a run with root seed *s* always derives its randomness from
``SeedSequence(s, spawn_key=(i,))`` — a function of the trial index only,
never of which worker process executes the trial or in what order. This is
what makes :class:`~repro.runner.runner.MonteCarloRunner` results
bit-identical across worker counts and start methods.

Legacy experiment APIs that take an integer seed get :func:`trial_seed`,
a 63-bit integer drawn from the same sequence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["trial_rng", "trial_seed", "trial_seed_sequence", "trial_seeds"]


def trial_seed_sequence(root_seed: int, trial_index: int) -> np.random.SeedSequence:
    """The canonical :class:`~numpy.random.SeedSequence` for one trial."""
    return np.random.SeedSequence(entropy=int(root_seed),
                                  spawn_key=(int(trial_index),))


def trial_rng(root_seed: int, trial_index: int) -> np.random.Generator:
    """A fresh generator for one trial, independent of all other trials."""
    return np.random.default_rng(trial_seed_sequence(root_seed, trial_index))


def trial_seed(root_seed: int, trial_index: int) -> int:
    """A stable 63-bit integer seed for legacy ``seed=``-style APIs."""
    state = trial_seed_sequence(root_seed, trial_index).generate_state(
        2, np.uint32)
    return (int(state[0]) | (int(state[1]) << 32)) & ((1 << 63) - 1)


def trial_seeds(root_seed: int, n_trials: int) -> list[int]:
    """Integer seeds for trials ``0 .. n_trials-1`` (see :func:`trial_seed`)."""
    return [trial_seed(root_seed, i) for i in range(n_trials)]
