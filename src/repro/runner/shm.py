"""Shared-memory capture handoff between synthesis workers and the
batched decode engine.

The batched execution mode splits each trial in two: workers synthesize
captures (the rng-bound half) while the parent runs the trial-axis decode
engine (the numpy-bound half). Captures are a few hundred kilobytes of
complex samples each; pickling them through the pool's result queue would
copy every byte twice. Instead the parent creates **one**
:class:`~multiprocessing.shared_memory.SharedMemory` block shaped as an
``(n_slots, slot_samples)`` complex grid, workers attach by name and write
their captures into preassigned rows, and the parent hands zero-copy row
views straight to the ``(N, samples)`` engine.

The parent owns the block: it creates it before the pool fans out and
unlinks it after decoding. Worker-side segments would be torn down by the
resource tracker at worker exit — parent ownership sidesteps that whole
class of lifetime bugs. A capture that outgrows its slot (or arrives after
the arena filled) falls back to pickling, flagged with ``slot == -1``, so
the arena is purely an optimization and never a correctness constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CaptureRef", "SharedCaptureArena"]

_ITEMSIZE = np.dtype(complex).itemsize


@dataclass(frozen=True)
class CaptureRef:
    """Where one capture's samples live: an arena slot, or inline.

    ``slot >= 0`` means rows ``arena.view(slot, size)``; ``slot == -1``
    means the samples travelled pickled in ``inline`` (overflow path).
    """

    slot: int
    size: int
    inline: np.ndarray | None = None

    def resolve(self, arena: "SharedCaptureArena | None") -> np.ndarray:
        if self.slot < 0:
            if self.inline is None:
                raise ConfigurationError("inline capture ref has no data")
            return self.inline
        if arena is None:
            raise ConfigurationError(
                "arena-backed capture ref but no arena attached")
        return arena.view(self.slot, self.size)


class SharedCaptureArena:
    """A fixed ``(n_slots, slot_samples)`` complex grid in shared memory.

    Create in the parent with :meth:`create`; workers :meth:`attach` by
    name. Slot assignment is the caller's business (the runner assigns
    ``captures_per_trial`` consecutive slots per trial index, so workers
    never contend for slots and need no locking).
    """

    def __init__(self, shm: shared_memory.SharedMemory, n_slots: int,
                 slot_samples: int, *, owner: bool) -> None:
        self._shm = shm
        self.n_slots = n_slots
        self.slot_samples = slot_samples
        self._owner = owner
        self.grid = np.ndarray((n_slots, slot_samples), dtype=complex,
                               buffer=shm.buf)

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, n_slots: int,
               slot_samples: int) -> "SharedCaptureArena":
        if n_slots < 1 or slot_samples < 1:
            raise ConfigurationError("arena needs positive dimensions")
        shm = shared_memory.SharedMemory(
            create=True, size=n_slots * slot_samples * _ITEMSIZE)
        return cls(shm, n_slots, slot_samples, owner=True)

    @classmethod
    def attach(cls, name: str, n_slots: int,
               slot_samples: int) -> "SharedCaptureArena":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, n_slots, slot_samples, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (owner additionally unlinks)."""
        # Views into the buffer must be dropped before close(); the
        # runner copies anything it keeps past decode.
        self.grid = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass

    # -- access ---------------------------------------------------------
    def write(self, slot: int, samples: np.ndarray) -> CaptureRef:
        """Store *samples* into *slot*, or fall back to an inline ref.

        Zero-fills the slot's tail so stale bytes from arena reuse can
        never alias into a later, shorter capture.
        """
        arr = np.asarray(samples, dtype=complex).ravel()
        if not 0 <= slot < self.n_slots or arr.size > self.slot_samples:
            return CaptureRef(slot=-1, size=arr.size, inline=arr)
        row = self.grid[slot]
        row[:arr.size] = arr
        row[arr.size:] = 0
        return CaptureRef(slot=slot, size=arr.size)

    def view(self, slot: int, size: int) -> np.ndarray:
        """Zero-copy view of the first *size* samples of *slot*."""
        if not 0 <= slot < self.n_slots:
            raise ConfigurationError(f"slot {slot} out of range")
        if size > self.slot_samples:
            raise ConfigurationError(
                f"size {size} exceeds slot capacity {self.slot_samples}")
        return self.grid[slot, :size]
