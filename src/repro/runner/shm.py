"""Shared-memory capture handoff between synthesis workers and the
batched decode engine.

The batched execution mode splits each trial in two: workers synthesize
captures (the rng-bound half) while the parent runs the trial-axis decode
engine (the numpy-bound half). Captures are a few hundred kilobytes of
complex samples each; pickling them through the pool's result queue would
copy every byte twice. Instead the parent creates **one**
:class:`~multiprocessing.shared_memory.SharedMemory` block shaped as an
``(n_slots, slot_samples)`` complex grid, workers attach by name and write
their captures into preassigned rows, and the parent hands zero-copy row
views straight to the ``(N, samples)`` engine.

The parent owns the block: it creates it before the pool fans out and
unlinks it after decoding. Worker-side segments would be torn down by the
resource tracker at worker exit — parent ownership sidesteps that whole
class of lifetime bugs. A capture that outgrows its slot (or arrives after
the arena filled) falls back to pickling, flagged with ``slot == -1``, so
the arena is purely an optimization and never a correctness constraint.

Three resilience guarantees ride on top (see ``docs/resilience.md``):

- **Recognizable names + leak detection.** Arenas are created under a
  ``repro-arena-*`` name so :func:`find_leaked_arenas` can audit
  ``/dev/shm`` after a crashed run, and tests can assert zero leaks.
- **Guaranteed unlink.** Every live parent-owned arena is registered in
  a module table; :meth:`SharedCaptureArena.close` on all error paths
  plus an ``atexit`` guard (:func:`cleanup_arenas`) unlink leftovers
  even when the run aborts mid-decode.
- **Optional checksums.** :meth:`SharedCaptureArena.write` can stamp a
  CRC32 into the :class:`CaptureRef`; :meth:`CaptureRef.resolve`
  verifies it, so a corrupted slot (worker crash mid-write, or the chaos
  harness's ``corrupt_shm_slot_prob``) surfaces as a
  :class:`~repro.errors.CaptureTransportError` instead of silently
  feeding garbage samples to the decoder.
"""

from __future__ import annotations

import atexit
import os
import secrets
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.errors import CaptureTransportError, ConfigurationError

__all__ = ["CaptureRef", "SharedCaptureArena", "WaveformRef",
           "WaveformArena", "cleanup_arenas", "find_leaked_arenas"]

_ITEMSIZE = np.dtype(complex).itemsize

# Arena segments carry this prefix so a leak audit can tell the runner's
# segments apart from anything else living in /dev/shm.
ARENA_PREFIX = "repro-arena"

# Parent-owned arenas still open in this process, by name. close()
# removes entries; the atexit guard unlinks whatever remains.
_LIVE_ARENAS: dict[str, "SharedCaptureArena"] = {}


def _checksum(view: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(view).tobytes())


@dataclass(frozen=True)
class CaptureRef:
    """Where one capture's samples live: an arena slot, or inline.

    ``slot >= 0`` means rows ``arena.view(slot, size)``; ``slot == -1``
    means the samples travelled pickled in ``inline`` (overflow path).
    ``checksum``, when set, is the CRC32 of the payload bytes at write
    time; :meth:`resolve` verifies it on arrival.
    """

    slot: int
    size: int
    inline: np.ndarray | None = None
    checksum: int | None = None

    def resolve(self, arena: "SharedCaptureArena | None") -> np.ndarray:
        if self.slot < 0:
            if self.inline is None:
                raise ConfigurationError("inline capture ref has no data")
            return self.inline
        if arena is None:
            raise ConfigurationError(
                "arena-backed capture ref but no arena attached")
        view = arena.view(self.slot, self.size)
        if self.checksum is not None and _checksum(view) != self.checksum:
            raise CaptureTransportError(
                f"arena slot {self.slot} failed checksum verification "
                f"({self.size} samples); capture corrupted in transport")
        return view


class SharedCaptureArena:
    """A fixed ``(n_slots, slot_samples)`` complex grid in shared memory.

    Create in the parent with :meth:`create`; workers :meth:`attach` by
    name. Slot assignment is the caller's business (the runner assigns
    ``captures_per_trial`` consecutive slots per trial index, so workers
    never contend for slots and need no locking).
    """

    def __init__(self, shm: shared_memory.SharedMemory, n_slots: int,
                 slot_samples: int, *, owner: bool) -> None:
        self._shm = shm
        self.n_slots = n_slots
        self.slot_samples = slot_samples
        self._owner = owner
        self.grid = np.ndarray((n_slots, slot_samples), dtype=complex,
                               buffer=shm.buf)
        if owner:
            _LIVE_ARENAS[shm.name] = self

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, n_slots: int,
               slot_samples: int) -> "SharedCaptureArena":
        if n_slots < 1 or slot_samples < 1:
            raise ConfigurationError("arena needs positive dimensions")
        name = f"{ARENA_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            create=True, name=name,
            size=n_slots * slot_samples * _ITEMSIZE)
        return cls(shm, n_slots, slot_samples, owner=True)

    @classmethod
    def attach(cls, name: str, n_slots: int,
               slot_samples: int) -> "SharedCaptureArena":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, n_slots, slot_samples, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (owner additionally unlinks)."""
        # Views into the buffer must be dropped before close(); the
        # runner copies anything it keeps past decode.
        self.grid = None
        _LIVE_ARENAS.pop(self._shm.name, None)
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass

    # -- access ---------------------------------------------------------
    def write(self, slot: int, samples: np.ndarray, *,
              checksum: bool = False) -> CaptureRef:
        """Store *samples* into *slot*, or fall back to an inline ref.

        Zero-fills the slot's tail so stale bytes from arena reuse can
        never alias into a later, shorter capture. With ``checksum`` the
        returned ref carries a CRC32 of the payload for end-to-end
        transport verification.
        """
        arr = np.asarray(samples, dtype=complex).ravel()
        if not 0 <= slot < self.n_slots or arr.size > self.slot_samples:
            return CaptureRef(slot=-1, size=arr.size, inline=arr)
        row = self.grid[slot]
        row[:arr.size] = arr
        row[arr.size:] = 0
        crc = _checksum(arr) if checksum else None
        return CaptureRef(slot=slot, size=arr.size, checksum=crc)

    def view(self, slot: int, size: int) -> np.ndarray:
        """Zero-copy view of the first *size* samples of *slot*."""
        if not 0 <= slot < self.n_slots:
            raise ConfigurationError(f"slot {slot} out of range")
        if size > self.slot_samples:
            raise ConfigurationError(
                f"size {size} exceeds slot capacity {self.slot_samples}")
        return self.grid[slot, :size]


@dataclass(frozen=True)
class WaveformRef:
    """Where one variable-length waveform's samples live.

    ``region >= 0`` means ``arena.view(region, offset, size)``;
    ``region == -1`` means the samples travelled pickled in ``inline``
    (region-full overflow path, same contract as :class:`CaptureRef`).
    ``checksum`` is the CRC32 of the payload at write time, verified by
    :meth:`resolve` so corruption in transport surfaces as a
    :class:`~repro.errors.CaptureTransportError`.
    """

    region: int
    offset: int
    size: int
    inline: np.ndarray | None = None
    checksum: int | None = None

    def resolve(self, arena: "WaveformArena | None") -> np.ndarray:
        if self.region < 0:
            if self.inline is None:
                raise ConfigurationError("inline waveform ref has no data")
            return self.inline
        if arena is None:
            raise ConfigurationError(
                "arena-backed waveform ref but no arena attached")
        view = arena.view(self.region, self.offset, self.size)
        if self.checksum is not None and _checksum(view) != self.checksum:
            raise CaptureTransportError(
                f"waveform at region {self.region}+{self.offset} failed "
                f"checksum verification ({self.size} samples); waveform "
                "corrupted in transport")
        return view


class WaveformArena:
    """Variable-length complex waveforms in shared memory, by region.

    The capture arena's fixed slot grid fits same-sized captures; the
    multi-cell coordinator instead exchanges *waveforms* whose lengths
    vary with payload, modulation and channel dispersion. This arena
    gives each writer (one cell worker) its own **region** — a
    contiguous complex span bump-allocated front to back — so writers
    never contend and need no locking. :meth:`reset` rewinds one
    region's cursor at the start of each horizon window, after every
    reader consumed the previous window's refs at the barrier.

    A waveform that outgrows its region's remaining space falls back to
    an inline (pickled) ref, so the arena is purely an optimization and
    never a correctness constraint. Ownership, naming, leak detection
    and the atexit guard are shared with :class:`SharedCaptureArena`.
    """

    def __init__(self, shm: shared_memory.SharedMemory, n_regions: int,
                 region_samples: int, *, owner: bool) -> None:
        self._shm = shm
        self.n_regions = n_regions
        self.region_samples = region_samples
        self._owner = owner
        self.grid = np.ndarray((n_regions, region_samples), dtype=complex,
                               buffer=shm.buf)
        # Bump cursors are process-local: each region has exactly one
        # writing process, and readers address by explicit ref offsets.
        self._cursors = [0] * n_regions
        if owner:
            _LIVE_ARENAS[shm.name] = self

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, n_regions: int,
               region_samples: int) -> "WaveformArena":
        if n_regions < 1 or region_samples < 1:
            raise ConfigurationError("arena needs positive dimensions")
        name = f"{ARENA_PREFIX}-wave-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            create=True, name=name,
            size=n_regions * region_samples * _ITEMSIZE)
        return cls(shm, n_regions, region_samples, owner=True)

    @classmethod
    def attach(cls, name: str, n_regions: int,
               region_samples: int) -> "WaveformArena":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, n_regions, region_samples, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Release this process's mapping (owner additionally unlinks)."""
        self.grid = None
        _LIVE_ARENAS.pop(self._shm.name, None)
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked
                pass

    # -- access ---------------------------------------------------------
    def reset(self, region: int) -> None:
        """Rewind *region*'s bump cursor (start of a new window)."""
        if not 0 <= region < self.n_regions:
            raise ConfigurationError(f"region {region} out of range")
        self._cursors[region] = 0

    def write(self, region: int, samples: np.ndarray, *,
              checksum: bool = False) -> WaveformRef:
        """Append *samples* to *region*, or fall back to an inline ref."""
        arr = np.asarray(samples, dtype=complex).ravel()
        if not 0 <= region < self.n_regions:
            return WaveformRef(region=-1, offset=0, size=arr.size,
                               inline=arr)
        cursor = self._cursors[region]
        if cursor + arr.size > self.region_samples:
            return WaveformRef(region=-1, offset=0, size=arr.size,
                               inline=arr)
        self.grid[region, cursor:cursor + arr.size] = arr
        self._cursors[region] = cursor + arr.size
        crc = _checksum(arr) if checksum else None
        return WaveformRef(region=region, offset=cursor, size=arr.size,
                           checksum=crc)

    def view(self, region: int, offset: int, size: int) -> np.ndarray:
        """Zero-copy view of ``size`` samples at ``offset`` in *region*."""
        if not 0 <= region < self.n_regions:
            raise ConfigurationError(f"region {region} out of range")
        if offset < 0 or offset + size > self.region_samples:
            raise ConfigurationError(
                f"span {offset}+{size} exceeds region capacity "
                f"{self.region_samples}")
        return self.grid[region, offset:offset + size]


# ----------------------------------------------------------------------
# Leak detection and last-ditch cleanup
# ----------------------------------------------------------------------
def cleanup_arenas() -> list[str]:
    """Unlink every parent-owned arena still open in this process.

    Runs automatically at interpreter exit; callable directly from error
    paths and tests. Returns the names it cleaned up.
    """
    cleaned = []
    for name in list(_LIVE_ARENAS):
        arena = _LIVE_ARENAS.get(name)
        if arena is None:
            continue
        try:
            arena.close()
        except Exception:
            _LIVE_ARENAS.pop(name, None)
        cleaned.append(name)
    return cleaned


def find_leaked_arenas() -> list[str]:
    """Arena-named shared-memory segments present on this host.

    Scans ``/dev/shm`` (Linux; other platforms report nothing) for
    segments carrying :data:`ARENA_PREFIX`. After any run — crashed,
    chaos-injected, or clean — this must be empty; the resilience test
    suite and ``benchmarks/bench_chaos_soak.py`` assert exactly that.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"{ARENA_PREFIX}-*"))


atexit.register(cleanup_arenas)
