"""Declarative scenario specifications.

A :class:`ScenarioSpec` fully describes one Monte-Carlo collision
scenario: which registered scenario ``kind`` to run, the receiver design
under test, the senders (topology and powers), the channel impairments,
the backoff policy, and the trial budget. Specs are immutable, picklable
(they cross process boundaries), serializable to plain dicts, and
loadable from TOML files::

    [scenario]
    kind = "pair"
    design = "zigzag"
    n_trials = 8

    [[sender]]
    name = "alice"
    snr_db = 12.0

    [[sender]]
    name = "bob"
    snr_db = 9.0

    [channel]
    noise_power = 1.0

    [backoff]
    kind = "fixed"
    cw = 16

    [[impairments.sender]]      # optional: per-sender pipeline stages
    kind = "rayleigh"
    coherence_samples = 400

    [[impairments.capture]]     # optional: AP front end / interferers
    kind = "quantize"
    enob = 6.0

    [params]            # scenario-specific extras
    anything = 1.0

See ``docs/scenarios.md`` for the full schema and worked examples.
"""

from __future__ import annotations

import dataclasses
import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.mac.backoff import BackoffPicker, ExponentialBackoff, FixedWindowBackoff
from repro.phy.impairments import ImpairmentPipeline, make_impairment
from repro.runner.chaos import FaultSpec
from repro.runner.resilience import FailurePolicy
from repro.testbed.deployment import DeploymentConfig
from repro.testbed.pathloss import LogDistancePathLoss

__all__ = [
    "BackoffSpec",
    "ChannelSpec",
    "DeploymentSpec",
    "ImpairmentsSpec",
    "ScenarioSpec",
    "SenderSpec",
    "parse_sweep",
]


@dataclass(frozen=True)
class SenderSpec:
    """One transmitting node: its name and received SNR at the AP."""

    name: str
    snr_db: float
    freq_offset: float | None = None  # None: drawn from +/- channel.freq_spread
    # Streaming scenarios only: fraction of one packet-airtime this
    # client offers per packet-airtime. None = saturated (or the
    # scenario's default load for ``offered_load`` sweeps).
    offered_load: float | None = None


@dataclass(frozen=True)
class ChannelSpec:
    """Channel impairment knobs shared by every sender in the scenario."""

    noise_power: float = 1.0
    phase_noise_std: float = 1e-3
    tx_evm: float = 0.03
    freq_spread: float = 4e-3
    coarse_freq_error: float = 1.5e-5

    def __post_init__(self) -> None:
        if self.noise_power <= 0:
            raise ConfigurationError("noise_power must be positive")


@dataclass(frozen=True)
class BackoffSpec:
    """Backoff policy: ``fixed`` congestion window or ``exponential``."""

    kind: str = "fixed"
    cw: int = 16
    cw_min: int = 31
    cw_max: int = 1023

    def build(self) -> BackoffPicker:
        """Instantiate the matching :class:`~repro.mac.backoff.BackoffPicker`."""
        if self.kind == "fixed":
            return FixedWindowBackoff(self.cw)
        if self.kind == "exponential":
            return ExponentialBackoff(cw_min=self.cw_min, cw_max=self.cw_max)
        raise ConfigurationError(
            f"unknown backoff kind {self.kind!r}; use 'fixed' or 'exponential'")


def _freeze_stage(stage) -> tuple:
    """One pipeline stage as a sorted, hashable key/value tuple."""
    entry = dict(stage)
    make_impairment(entry)  # validate kind and parameters eagerly
    return tuple(sorted(entry.items()))


@dataclass(frozen=True)
class ImpairmentsSpec:
    """The ``[impairments]`` table: declarative impairment pipelines.

    ``sender`` stages ride on every transmission's channel (time-varying
    fading, SFO drift, ...); ``capture`` stages distort each summed
    capture once (AP front-end nonlinearity, interferers). Stages are
    stored as sorted key/value tuples so the spec stays hashable and
    picklable; :meth:`sender_pipeline` / :meth:`capture_pipeline` build
    the live :class:`~repro.phy.impairments.ImpairmentPipeline` objects.
    """

    sender: tuple = ()
    capture: tuple = ()

    def __post_init__(self) -> None:
        for attr in ("sender", "capture"):
            raw = getattr(self, attr)
            if isinstance(raw, dict):
                raise ConfigurationError(
                    f"[impairments].{attr} must be an array of tables "
                    f"([[impairments.{attr}]])")
            object.__setattr__(
                self, attr, tuple(_freeze_stage(s) for s in raw))

    @property
    def is_empty(self) -> bool:
        return not (self.sender or self.capture)

    def sender_pipeline(self) -> ImpairmentPipeline:
        return ImpairmentPipeline.from_specs(
            [dict(stage) for stage in self.sender])

    def capture_pipeline(self) -> ImpairmentPipeline:
        return ImpairmentPipeline.from_specs(
            [dict(stage) for stage in self.capture])

    def to_dict(self) -> dict:
        return {"sender": [dict(stage) for stage in self.sender],
                "capture": [dict(stage) for stage in self.capture]}

    def with_stage_override(self, path: str, value: Any) -> "ImpairmentsSpec":
        """Apply a ``<hook>.<index>.<field>`` override, e.g.
        ``sender.0.coherence_samples``."""
        hook, _, rest = path.partition(".")
        index_text, _, attr = rest.partition(".")
        if hook not in ("sender", "capture") or not attr:
            raise ConfigurationError(
                "impairment override needs "
                f"impairments.<sender|capture>.<index>.<field>: {path!r}")
        stages = [dict(stage) for stage in getattr(self, hook)]
        if not index_text.isdigit() or int(index_text) >= len(stages):
            raise ConfigurationError(
                f"no [[impairments.{hook}]] stage {index_text!r} "
                f"(have {len(stages)})")
        index = int(index_text)
        stages[index][attr] = value
        return replace(self, **{hook: tuple(stages)})


@dataclass(frozen=True)
class DeploymentSpec:
    """The ``[deployment]`` table: a geometry-derived multi-cell layout.

    Declares the city block the ``city_*`` scenarios simulate: AP and
    client counts, area, the log-distance path-loss model, carrier-sense
    and association thresholds, the traffic mix, and the coordinator's
    interference-exchange knobs. The default-constructed spec
    (``n_aps == 0``) means "no deployment declared" — scenarios that
    need one reject it, scenarios that don't reject anything else.

    The layout itself (positions, shadowing, association) is drawn from
    ``seed`` alone — independent of the trial seed, so every trial of a
    run sees the *same* city and Monte-Carlo noise stays in the
    MAC/PHY randomness.
    """

    n_aps: int = 0
    n_clients: int = 0
    area_m: float = 120.0
    seed: int = 7
    # Path-loss model (repro.testbed.pathloss.LogDistancePathLoss).
    exponent: float = 3.2
    reference_db: float = 40.0
    reference_m: float = 1.0
    shadowing_db: float = 4.0
    # Link budget and thresholds (repro.testbed.deployment).
    tx_power_dbm: float = 0.0
    noise_floor_dbm: float = -86.0
    cs_full_db: float = 4.0
    cs_none_db: float = 2.0
    reachable_db: float = 3.0
    max_snr_db: float = 25.0
    # Traffic mix: `saturated_fraction` of the clients are saturated
    # heavy hitters; the rest offer `offered_load` of a packet-airtime
    # each (0 = everyone saturated). Assignment is a deterministic hash
    # of the global client index, so the mix is stable across trials,
    # designs and worker counts.
    offered_load: float = 0.0
    saturated_fraction: float = 0.0
    # Coordinator knobs (multi-cell exchange / sharded approximation).
    interference_floor_db: float = -2.0
    horizon_chunks: int = 4
    # Cell worker processes for the coupled coordinator
    # (``city_multicell``): 1 steps cells sequentially, N > 1 pins
    # cells to N persistent workers, 0 means one worker per cell.
    # Results are bit-identical at any value (repro.link.parallel).
    coupled_workers: int = 1

    def validate(self) -> None:
        """Reject an unusable table (no-op when none was declared).

        Deliberately not ``__post_init__``: CLI ``--set`` overrides are
        applied one key at a time, so intermediate states (n_aps set,
        n_clients still 0) must stay constructible. ``from_dict`` and
        the runner's pre-run gate call this on the *final* spec.
        """
        if self.is_empty:
            return
        if self.n_aps < 1 or self.n_clients < 1:
            raise ConfigurationError(
                "[deployment] needs n_aps >= 1 and n_clients >= 1")
        if not 0.0 <= self.offered_load <= 1.0:
            raise ConfigurationError(
                "[deployment] offered_load must be in [0, 1]")
        if not 0.0 <= self.saturated_fraction <= 1.0:
            raise ConfigurationError(
                "[deployment] saturated_fraction must be in [0, 1]")
        if self.horizon_chunks < 1:
            raise ConfigurationError(
                "[deployment] horizon_chunks must be >= 1")
        if self.coupled_workers < 0:
            raise ConfigurationError(
                "[deployment] coupled_workers must be >= 0 "
                "(0 = one worker per cell)")
        self.config()  # let DeploymentConfig validate the rest eagerly

    @property
    def is_empty(self) -> bool:
        """True when no ``[deployment]`` table was declared."""
        return self.n_aps == 0 and self.n_clients == 0

    def config(self) -> DeploymentConfig:
        """The testbed-layer DeploymentConfig this spec describes."""
        return DeploymentConfig(
            n_aps=self.n_aps,
            n_clients=self.n_clients,
            area_m=self.area_m,
            tx_power_dbm=self.tx_power_dbm,
            noise_floor_dbm=self.noise_floor_dbm,
            pathloss=LogDistancePathLoss(
                exponent=self.exponent,
                reference_db=self.reference_db,
                reference_m=self.reference_m,
                shadowing_db=self.shadowing_db),
            cs_full_db=self.cs_full_db,
            cs_none_db=self.cs_none_db,
            reachable_db=self.reachable_db,
            max_snr_db=self.max_snr_db,
        )

    def client_offered_load(self, client: int) -> float | None:
        """Global client *client*'s offered load (None = saturated).

        A Knuth multiplicative hash of the index picks the saturated
        subset, so the mix is reproducible without consuming any rng.
        """
        if self.offered_load <= 0.0:
            return None
        u = ((client + 1) * 2654435761 % (1 << 32)) / (1 << 32)
        if u < self.saturated_fraction:
            return None
        return self.offered_load


_DESIGNS = ("zigzag", "802.11", "collision-free")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative Monte-Carlo scenario description."""

    kind: str
    design: str = "zigzag"
    senders: tuple[SenderSpec, ...] = ()
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    backoff: BackoffSpec = field(default_factory=BackoffSpec)
    impairments: ImpairmentsSpec = field(default_factory=ImpairmentsSpec)
    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    sense_probability: float = 0.0
    payload_bits: int = 240
    n_packets: int = 6
    max_rounds: int = 4
    slot_samples: int = 20
    modulation: str = "bpsk"
    preamble_length: int = 32
    n_trials: int = 4
    seed: int = 0
    # Decode batch size for scenarios with a registered batched engine:
    # 1 = the per-trial loop path; > 1 groups that many trials per
    # trial-axis decode pass. Per-trial seed streams are unaffected.
    batch_size: int = 1
    # Failure policy ([resilience]) and chaos injection ([faults]); see
    # docs/resilience.md. Defaults are fail_fast with no faults — the
    # pre-supervision behavior.
    resilience: FailurePolicy = field(default_factory=FailurePolicy)
    faults: FaultSpec = field(default_factory=FaultSpec)
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("scenario kind must be non-empty")
        if self.design not in _DESIGNS:
            raise ConfigurationError(
                f"unknown design {self.design!r}; choose from {_DESIGNS}")
        if not 0.0 <= self.sense_probability <= 1.0:
            raise ConfigurationError("sense_probability must be in [0, 1]")
        if self.n_trials < 1:
            raise ConfigurationError("n_trials must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if isinstance(self.params, dict):
            object.__setattr__(self, "params",
                               tuple(sorted(self.params.items())))

    # -- scenario-specific extras --------------------------------------
    def param(self, key: str, default: Any = None) -> Any:
        """Look up a scenario-specific extra from the ``[params]`` table."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    @property
    def extra_params(self) -> dict[str, Any]:
        """The ``[params]`` table as a plain dict."""
        return dict(self.params)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Build a spec from the nested-dict form (the TOML layout)."""
        data = dict(data)
        scalar = dict(data.pop("scenario", {}))
        senders = tuple(
            SenderSpec(**entry) for entry in data.pop("sender", ()))
        channel = ChannelSpec(**data.pop("channel", {}))
        backoff = BackoffSpec(**data.pop("backoff", {}))
        impairments_table = dict(data.pop("impairments", {}))
        unknown_hooks = set(impairments_table) - {"sender", "capture"}
        if unknown_hooks:
            raise ConfigurationError(
                f"unknown [impairments] hooks: {sorted(unknown_hooks)}; "
                "use [[impairments.sender]] / [[impairments.capture]]")
        impairments = ImpairmentsSpec(**impairments_table)
        try:
            deployment = DeploymentSpec(**data.pop("deployment", {}))
        except TypeError as exc:
            raise ConfigurationError(
                f"bad [deployment] table: {exc}") from exc
        deployment.validate()
        try:
            resilience = FailurePolicy(**data.pop("resilience", {}))
            faults = FaultSpec(**data.pop("faults", {}))
        except TypeError as exc:
            raise ConfigurationError(
                f"bad [resilience]/[faults] table: {exc}") from exc
        params = tuple(sorted(dict(data.pop("params", {})).items()))
        if data:
            raise ConfigurationError(
                f"unknown scenario tables: {sorted(data)}")
        try:
            return cls(senders=senders, channel=channel, backoff=backoff,
                       impairments=impairments, deployment=deployment,
                       resilience=resilience, faults=faults,
                       params=params, **scalar)
        except TypeError as exc:
            raise ConfigurationError(f"bad [scenario] table: {exc}") from exc

    @classmethod
    def from_toml(cls, path: str | Path) -> "ScenarioSpec":
        """Load a spec from a TOML file (see ``docs/scenarios.md``)."""
        with open(path, "rb") as handle:
            try:
                data = tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(
                    f"invalid TOML in {path}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """The nested-dict form; ``from_dict(to_dict())`` round-trips."""
        scalar_fields = [
            "kind", "design", "sense_probability", "payload_bits",
            "n_packets", "max_rounds", "slot_samples", "modulation",
            "preamble_length", "n_trials", "seed", "batch_size",
        ]
        out: dict[str, Any] = {
            "scenario": {name: getattr(self, name)
                         for name in scalar_fields},
        }
        if self.senders:
            out["sender"] = [dataclasses.asdict(s) for s in self.senders]
        out["channel"] = dataclasses.asdict(self.channel)
        out["backoff"] = dataclasses.asdict(self.backoff)
        if not self.impairments.is_empty:
            out["impairments"] = self.impairments.to_dict()
        if not self.deployment.is_empty:
            out["deployment"] = dataclasses.asdict(self.deployment)
        if self.resilience != FailurePolicy():
            out["resilience"] = dataclasses.asdict(self.resilience)
        if not self.faults.is_empty or self.faults != FaultSpec():
            out["faults"] = dataclasses.asdict(self.faults)
        if self.params:
            out["params"] = dict(self.params)
        return out

    # -- overrides ------------------------------------------------------
    def with_override(self, key: str, value: Any) -> "ScenarioSpec":
        """Return a copy with one dotted-path override applied.

        Accepted forms: a top-level field (``n_trials``), a nested field
        (``channel.noise_power``, ``backoff.cw``), a sender field
        (``sender.alice.snr_db``), an impairment-stage field
        (``impairments.sender.0.coherence_samples``), or a scenario extra
        (``params.x``). Unknown top-level keys fall through to the
        ``params`` table, so sweeping an extra does not require the
        ``params.`` prefix.
        """
        head, _, rest = key.partition(".")
        if head == "impairments" and rest:
            return replace(self, impairments=self.impairments
                           .with_stage_override(rest, value))
        if head == "channel" and rest:
            return replace(self, channel=replace(self.channel,
                                                 **{rest: value}))
        if head == "backoff" and rest:
            return replace(self, backoff=replace(self.backoff,
                                                 **{rest: value}))
        if head == "deployment" and rest:
            return replace(self, deployment=replace(self.deployment,
                                                    **{rest: value}))
        if head == "resilience" and rest:
            return replace(self, resilience=replace(self.resilience,
                                                    **{rest: value}))
        if head == "faults" and rest:
            return replace(self, faults=replace(self.faults,
                                                **{rest: value}))
        if head == "sender" and rest:
            name, _, attr = rest.partition(".")
            if not attr:
                raise ConfigurationError(
                    f"sender override needs sender.<name>.<field>: {key}")
            if name not in {s.name for s in self.senders}:
                raise ConfigurationError(f"no sender named {name!r}")
            senders = tuple(
                replace(s, **{attr: value}) if s.name == name else s
                for s in self.senders)
            return replace(self, senders=senders)
        if head == "params" and rest:
            extras = dict(self.params)
            extras[rest] = value
            return replace(self, params=tuple(sorted(extras.items())))
        if rest:
            raise ConfigurationError(f"unknown override path: {key}")
        if head in ("design", "kind", "modulation"):
            value = str(value)  # "802.11" must stay a name, not a float
        if head in {f.name for f in dataclasses.fields(self)} \
                and head != "params":
            return replace(self, **{head: value})
        extras = dict(self.params)
        extras[head] = value
        return replace(self, params=tuple(sorted(extras.items())))

    def with_overrides(self, overrides: dict[str, Any]) -> "ScenarioSpec":
        """Apply several dotted-path overrides (see :meth:`with_override`)."""
        spec = self
        for key, value in overrides.items():
            spec = spec.with_override(key, value)
        return spec


def _coerce(text: str) -> Any:
    """Parse a CLI value: int, then float, then bare string/bool."""
    text = text.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def parse_sweep(expr: str) -> tuple[str, list[Any]]:
    """Parse a sweep expression into ``(dotted_key, values)``.

    Two forms: a range ``snr_db=0:20:2`` (inclusive of the stop when it
    lands on the grid, like the paper's axis ticks) and an explicit list
    ``design=zigzag,802.11``. A single value yields a one-point sweep.
    """
    key, sep, rhs = expr.partition("=")
    key = key.strip()
    if not sep or not key or not rhs.strip():
        raise ConfigurationError(
            f"sweep must look like key=start:stop:step or key=a,b,c: {expr!r}")
    rhs = rhs.strip()
    if ":" in rhs:
        pieces = rhs.split(":")
        if len(pieces) not in (2, 3):
            raise ConfigurationError(f"bad sweep range {rhs!r}")
        start, stop = (float(p) for p in pieces[:2])
        step = float(pieces[2]) if len(pieces) == 3 else 1.0
        if step <= 0:
            raise ConfigurationError("sweep step must be positive")
        values: list[Any] = []
        value = start
        while value <= stop + 1e-9 * max(1.0, abs(stop)):
            values.append(round(value, 12))
            value += step
        if not values:
            raise ConfigurationError(f"empty sweep range {rhs!r}")
        return key, values
    pieces = rhs.split(",")
    coerced = [_coerce(piece) for piece in pieces]
    # All-or-nothing numeric coercion: a list like "zigzag,802.11" is a
    # list of names even though "802.11" parses as a float.
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in coerced):
        return key, coerced
    return key, [piece.strip() for piece in pieces]
