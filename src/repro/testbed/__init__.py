"""The 14-node evaluation substrate (paper Chapter 5).

Replaces the paper's physical GNURadio testbed with: a log-distance
path-loss + shadowing propagation model (:mod:`~repro.testbed.pathloss`), a
node topology whose SNR matrix and carrier-sense classification mirror the
paper's mix of hidden/partial/perfect sender pairs
(:mod:`~repro.testbed.topology`), and a signal-level experiment runner
(:mod:`~repro.testbed.experiment`) that replays MAC-level collision plans
through the full PHY + receiver stack for the three compared designs:
ZigZag, Current 802.11, and the Collision-Free Scheduler (§5.1e).
"""

from repro.testbed.pathloss import LogDistancePathLoss
from repro.testbed.topology import SensingClass, Testbed, default_testbed
from repro.testbed.deployment import (
    CellPlan,
    Deployment,
    DeploymentConfig,
    client_name,
)
from repro.testbed.metrics import FlowStats, normalized_throughput, loss_rate
from repro.testbed.csma import (
    CleanTransmission,
    CollisionEvent,
    ReplayPlan,
    plan_from_trace,
)
from repro.testbed.experiment import (
    Design,
    PairExperiment,
    PairExperimentConfig,
    run_capture_sweep_point,
    run_three_sender_experiment,
)

__all__ = [
    "CellPlan",
    "Deployment",
    "DeploymentConfig",
    "LogDistancePathLoss",
    "SensingClass",
    "Testbed",
    "client_name",
    "default_testbed",
    "FlowStats",
    "normalized_throughput",
    "loss_rate",
    "CleanTransmission",
    "CollisionEvent",
    "ReplayPlan",
    "plan_from_trace",
    "Design",
    "PairExperiment",
    "PairExperimentConfig",
    "run_capture_sweep_point",
    "run_three_sender_experiment",
]
