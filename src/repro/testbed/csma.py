"""§5.2 methodology: MAC traces -> signal-level replay plans.

The paper could not run CSMA on its software radios, so it ran an 802.11
card testbed alongside, logged which packets were delivered cleanly and
which collided, and replayed that plan on the USRPs: "Each sender first
transmits the same number of packets that the corresponding 802.11
correctly delivered in the matching 802.11 run. Then both senders transmit
together as many packets as there were collision packets."

This module is that bridge for our substrate: it converts a
:class:`~repro.mac.dcf.DcfTrace` (produced by the slotted DCF simulator
with a real sensing matrix) into a :class:`ReplayPlan` of clean
transmissions and collision events with their sample-level start offsets —
ready to synthesize and decode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.mac.dcf import DcfTrace
from repro.mac.timing import TIMING_80211G, Timing

__all__ = ["CleanTransmission", "CollisionEvent", "ReplayPlan",
           "plan_from_trace"]


@dataclass(frozen=True)
class CleanTransmission:
    """One interference-free transmission to replay."""

    sender: int
    packet_id: int


@dataclass(frozen=True)
class CollisionEvent:
    """One on-air overlap to replay at the signal level.

    ``offsets_samples`` maps each involved sender to the sample offset of
    its packet start within the collision capture (earliest sender at 0).
    """

    senders: tuple
    packet_ids: tuple
    offsets_samples: tuple

    @property
    def n_senders(self) -> int:
        return len(self.senders)


@dataclass
class ReplayPlan:
    """Everything the signal-level experiment must reproduce."""

    clean: list = field(default_factory=list)
    collisions: list = field(default_factory=list)

    @property
    def n_events(self) -> int:
        return len(self.clean) + len(self.collisions)

    def collision_rounds_for(self, sender_a: int,
                             sender_b: int) -> list["CollisionEvent"]:
        """Successive collisions involving exactly this sender pair —
        what a ZigZag AP pairs up for decoding."""
        return [c for c in self.collisions
                if set(c.senders) == {sender_a, sender_b}]


def plan_from_trace(trace: DcfTrace, *,
                    timing: Timing = TIMING_80211G,
                    bitrate_bps: float = 500e3,
                    samples_per_symbol: int = 2,
                    bits_per_symbol: int = 1) -> ReplayPlan:
    """Convert a DCF trace into a sample-accurate replay plan.

    Start-time differences (microseconds of MAC jitter) convert to sample
    offsets via the air rate: at the paper's 500 kb/s BPSK and 2 samples
    per symbol, one microsecond is one sample.
    """
    if bitrate_bps <= 0:
        raise ConfigurationError("bitrate must be positive")
    samples_per_us = (bitrate_bps * 1e-6 / bits_per_symbol
                      * samples_per_symbol)

    plan = ReplayPlan()
    for event in trace.clean_events():
        plan.clean.append(CleanTransmission(event.sender, event.packet_id))
    for group in trace.collision_groups():
        ordered = sorted(group, key=lambda e: e.start_us)
        base = ordered[0].start_us
        plan.collisions.append(CollisionEvent(
            senders=tuple(e.sender for e in ordered),
            packet_ids=tuple(e.packet_id for e in ordered),
            offsets_samples=tuple(
                int(round((e.start_us - base) * samples_per_us))
                for e in ordered),
        ))
    return plan
