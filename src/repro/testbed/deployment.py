"""Geometry-derived multi-cell deployments: positions -> SNR -> topology.

ZigZag's premise is that hidden terminals arise from *geometry*: senders
outside each other's carrier-sense range colliding at a shared AP
(Fig 5-1). :class:`Deployment` makes that derivation explicit for a whole
city block rather than one hand-declared cell: APs land on a jittered
grid, clients scatter uniformly, every link's SNR comes from the
log-distance path-loss model with symmetrized shadowing, clients
associate with the AP they hear best (above an association floor), and
pairwise carrier sensing *between co-cell clients* is classified from
inter-client SNR exactly like :class:`~repro.testbed.topology.Testbed`
does for sender pairs.

The output of the derivation is a :class:`CellPlan` per AP — client
names, per-client SNR at the serving AP, per-pair sense probabilities
and the resulting hidden-pair set — which is exactly what the link
layer consumes (``repro.link.topology.Topology.from_cell``). Cross-cell
links stay available on the full SNR matrix for inter-cell interference
exchange (:meth:`Deployment.interferers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.errors import ConfigurationError
from repro.testbed.pathloss import LogDistancePathLoss
from repro.testbed.topology import SensingClass
from repro.utils.rng import make_rng

__all__ = ["CellPlan", "Deployment", "DeploymentConfig", "client_name"]

# Frame headers carry an 8-bit src field; global client ids are
# ``index + 1`` so they must fit in one byte.
_MAX_CLIENTS = 255


def client_name(index: int) -> str:
    """Canonical session name of global client *index* (``c0``, ``c1``...)."""
    return f"c{index}"


@dataclass(frozen=True)
class DeploymentConfig:
    """Knobs of one generated deployment.

    ``cs_full_db`` / ``cs_none_db`` classify carrier sensing between
    co-cell clients from their mutual SNR (same thresholds and linear
    interpolation as :class:`~repro.testbed.topology.Testbed`);
    ``reachable_db`` is the association floor — a client that hears no
    AP above it stays unassociated. The floor must sit above
    ``cs_none_db`` so an associated client is never *hidden* from its
    own AP (the AP always has a nonzero chance of hearing it).
    """

    n_aps: int = 2
    n_clients: int = 8
    area_m: float = 120.0
    tx_power_dbm: float = 0.0
    noise_floor_dbm: float = -86.0
    pathloss: LogDistancePathLoss = field(
        default_factory=lambda: LogDistancePathLoss())
    cs_full_db: float = 4.0
    cs_none_db: float = 2.0
    reachable_db: float = 3.0
    max_snr_db: float = 25.0

    def __post_init__(self) -> None:
        if self.n_aps < 1 or self.n_clients < 1:
            raise ConfigurationError(
                "deployment needs at least one AP and one client")
        if self.n_clients > _MAX_CLIENTS:
            raise ConfigurationError(
                f"n_clients must be <= {_MAX_CLIENTS} "
                "(client ids ride the frame's 8-bit src field)")
        if self.area_m <= 0:
            raise ConfigurationError("area_m must be positive")
        if self.cs_none_db >= self.cs_full_db:
            raise ConfigurationError("cs_none_db must be < cs_full_db")
        if self.reachable_db <= self.cs_none_db:
            raise ConfigurationError(
                "reachable_db must exceed cs_none_db, else an associated "
                "client could be hidden from its own AP")


@dataclass(frozen=True)
class CellPlan:
    """One AP's derived cell, in the vocabulary the link layer speaks.

    ``clients`` are *global* client indices; ``names``/``srcs``/
    ``snr_db`` align with them. ``pair_probabilities`` lists every
    in-cell client pair (ordered ``names`` index pairs) with its sense
    probability; ``hidden_pairs`` is the subset with probability 0 —
    the cell's deterministic hidden topology.
    """

    ap: int
    clients: tuple[int, ...]
    names: tuple[str, ...]
    srcs: tuple[int, ...]
    snr_db: tuple[float, ...]
    pair_probabilities: tuple[tuple[str, str, float], ...]
    hidden_pairs: tuple[tuple[str, str], ...]

    @property
    def n_clients(self) -> int:
        return len(self.clients)

    def client_index(self, name: str) -> int:
        """Global client index behind a session *name*."""
        try:
            return self.clients[self.names.index(name)]
        except ValueError:
            raise ConfigurationError(
                f"cell of AP {self.ap} has no client {name!r}") from None


class Deployment:
    """A generated multi-cell layout with its full link-SNR matrix.

    Nodes are indexed APs first: node ``a < n_aps`` is AP *a*, node
    ``n_aps + i`` is client *i*. ``snr_db`` is the symmetric
    (n_aps + n_clients)² matrix of link SNRs; helpers below address it
    by (ap, client) or (client, client) pairs directly.
    """

    def __init__(self, config: DeploymentConfig,
                 ap_positions: np.ndarray,
                 client_positions: np.ndarray,
                 snr_db: np.ndarray) -> None:
        self.config = config
        self.ap_positions = np.asarray(ap_positions, dtype=float)
        self.client_positions = np.asarray(client_positions, dtype=float)
        self.snr_db = np.asarray(snr_db, dtype=float)
        n = config.n_aps + config.n_clients
        if self.ap_positions.shape != (config.n_aps, 2) \
                or self.client_positions.shape != (config.n_clients, 2):
            raise ConfigurationError("deployment position shape mismatch")
        if self.snr_db.shape != (n, n):
            raise ConfigurationError("deployment SNR matrix shape mismatch")
        # Association by strongest link, above the reachable floor.
        links = self.snr_db[:config.n_aps,
                            config.n_aps:]          # (n_aps, n_clients)
        best = np.argmax(links, axis=0)
        strongest = links[best, np.arange(config.n_clients)]
        self._serving = np.where(strongest >= config.reachable_db,
                                 best, -1)

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, config: DeploymentConfig,
                 seed: int = 7) -> "Deployment":
        """Draw one layout: APs on a jittered grid, clients uniform.

        All randomness (positions, shadowing) comes from *seed* alone,
        so a deployment is reproducible from its (config, seed) pair and
        safely shareable across worker processes.
        """
        rng = make_rng(seed)
        cfg = config
        # APs on a jittered sqrt-grid: regular enough for city-like
        # coverage, jittered enough that cell borders vary by seed.
        grid = int(np.ceil(np.sqrt(cfg.n_aps)))
        pitch = cfg.area_m / grid
        ap_positions = np.empty((cfg.n_aps, 2))
        for a in range(cfg.n_aps):
            gx, gy = a % grid, a // grid
            ap_positions[a] = [
                (gx + 0.5) * pitch + rng.uniform(-0.2, 0.2) * pitch,
                (gy + 0.5) * pitch + rng.uniform(-0.2, 0.2) * pitch,
            ]
        client_positions = rng.uniform(0.0, cfg.area_m,
                                       size=(cfg.n_clients, 2))
        positions = np.vstack([ap_positions, client_positions])
        distances = np.linalg.norm(
            positions[:, None, :] - positions[None, :, :], axis=2)
        loss = cfg.pathloss.sample_loss_db(distances, rng)
        loss = 0.5 * (loss + loss.T)    # reciprocal links
        snr = cfg.tx_power_dbm - loss - cfg.noise_floor_dbm
        snr = np.minimum(snr, cfg.max_snr_db)
        np.fill_diagonal(snr, np.inf)   # self-links are not links
        return cls(cfg, ap_positions, client_positions, snr)

    # ------------------------------------------------------------------
    @property
    def n_aps(self) -> int:
        return self.config.n_aps

    @property
    def n_clients(self) -> int:
        return self.config.n_clients

    def ap_client_snr(self, ap: int, client: int) -> float:
        """Link SNR between AP *ap* and global client *client*, dB."""
        return float(self.snr_db[ap, self.n_aps + client])

    def client_snr(self, a: int, b: int) -> float:
        """Inter-client link SNR (the carrier-sense input), dB."""
        return float(self.snr_db[self.n_aps + a, self.n_aps + b])

    def sense_probability(self, a: int, b: int) -> float:
        """P(client *a* detects client *b*): the Testbed rule — 1 above
        ``cs_full_db``, 0 below ``cs_none_db``, linear in between."""
        snr = self.client_snr(a, b)
        cfg = self.config
        if snr >= cfg.cs_full_db:
            return 1.0
        if snr <= cfg.cs_none_db:
            return 0.0
        return (snr - cfg.cs_none_db) / (cfg.cs_full_db - cfg.cs_none_db)

    def sensing_class(self, a: int, b: int) -> SensingClass:
        p = self.sense_probability(a, b)
        if p >= 1.0:
            return SensingClass.PERFECT
        if p <= 0.0:
            return SensingClass.HIDDEN
        return SensingClass.PARTIAL

    def serving_ap(self, client: int) -> int | None:
        """The AP this client associates with (strongest link above the
        reachable floor), or None when out of every AP's range."""
        ap = int(self._serving[client])
        return None if ap < 0 else ap

    def associated_clients(self, ap: int) -> tuple[int, ...]:
        return tuple(int(i) for i in np.flatnonzero(self._serving == ap))

    def unassociated_clients(self) -> tuple[int, ...]:
        return tuple(int(i) for i in np.flatnonzero(self._serving < 0))

    # ------------------------------------------------------------------
    def cell(self, ap: int) -> CellPlan:
        """The derived plan of AP *ap*'s cell (may hold zero clients)."""
        members = self.associated_clients(ap)
        names = tuple(client_name(i) for i in members)
        pairs = []
        hidden = []
        for x, y in combinations(range(len(members)), 2):
            p = self.sense_probability(members[x], members[y])
            pairs.append((names[x], names[y], p))
            if p <= 0.0:
                hidden.append((names[x], names[y]))
        return CellPlan(
            ap=ap,
            clients=members,
            names=names,
            srcs=tuple(i + 1 for i in members),
            snr_db=tuple(self.ap_client_snr(ap, i) for i in members),
            pair_probabilities=tuple(pairs),
            hidden_pairs=tuple(hidden),
        )

    def cells(self) -> tuple[CellPlan, ...]:
        """Every cell that has at least one associated client, by AP."""
        plans = (self.cell(ap) for ap in range(self.n_aps))
        return tuple(plan for plan in plans if plan.clients)

    def interferers(self, ap: int,
                    floor_db: float) -> tuple[tuple[int, float], ...]:
        """Out-of-cell clients AP *ap* hears at or above *floor_db*.

        Returns ``(client, snr_at_ap)`` pairs sorted strongest first —
        the cross-cell transmitters whose waveforms reach this cell's
        receiver and must be exchanged (or approximated) as
        interference.
        """
        out = [(i, self.ap_client_snr(ap, i))
               for i in range(self.n_clients)
               if int(self._serving[i]) != ap]
        return tuple(sorted(((i, s) for i, s in out if s >= floor_db),
                            key=lambda pair: -pair[1]))

    def sensing_mix(self) -> dict[SensingClass, float]:
        """Fraction of co-cell client pairs in each sensing class."""
        counts = {cls: 0 for cls in SensingClass}
        total = 0
        for plan in self.cells():
            for x, y in combinations(plan.clients, 2):
                counts[self.sensing_class(x, y)] += 1
                total += 1
        if total == 0:
            raise ConfigurationError(
                "deployment has no co-cell client pairs")
        return {cls: counts[cls] / total for cls in SensingClass}
