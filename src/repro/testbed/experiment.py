"""Signal-level experiments for the three compared receiver designs (§5.1e).

Each experiment replays a MAC-level plan through the full PHY + receiver
stack, mirroring the paper's §5.2 methodology:

- **Collision-Free Scheduler** (oracle TDMA): every packet is transmitted
  alone and decoded by the standard receiver.
- **Current 802.11**: hidden senders collide; the standard receiver is
  applied to each packet in the collision (capture effect emerges
  naturally when one sender is much stronger); failed packets retransmit —
  and collide again.
- **ZigZag**: the first collision is tried with capture-effect SIC; the
  retransmission produces a second collision with fresh backoff jitter and
  the pair is ZigZag-decoded. Faulty SIC copies of the weak packet are
  MRC-combined across rounds (Fig 4-1d).

Throughput is delivered packets per packet-slot of medium airtime; delivery
uses the §5.1(f) BER < 1e-3 rule.

These experiments are single-trial building blocks. The supported entry
point for running them at scale — parallel trial fan-out, deterministic
per-trial seeding, confidence intervals, TOML scenario files — is the
:mod:`repro.runner` subsystem (``python -m repro run scenario.toml``);
see ``docs/scenarios.md``. The drivers here are what the runner's
``pair``/``capture``/``three_senders`` scenarios wrap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.mac.backoff import BackoffPicker, FixedWindowBackoff
from repro.phy.channel import ChannelParams
from repro.phy.constellation import get_constellation
from repro.phy.impairments import ImpairmentPipeline
from repro.phy.frame import Frame
from repro.phy.medium import Capture, Transmission, synthesize
from repro.phy.preamble import Preamble, default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.decoder import StandardDecoder
from repro.receiver.frontend import StreamConfig
from repro.receiver.mrc import mrc_combine
from repro.testbed.metrics import BER_DELIVERY_THRESHOLD, FlowStats
from repro.utils.bits import bit_error_rate, random_bits
from repro.zigzag.decoder import (
    ZigZagMultiDecoder,
    ZigZagPairDecoder,
    extract_bits,
)
from repro.zigzag.engine import PacketSpec, PlacementParams
from repro.zigzag.sic import SicDecoder

__all__ = [
    "Design",
    "PairExperimentConfig",
    "PairExperiment",
    "run_capture_sweep_point",
    "run_three_sender_experiment",
]


class Design(enum.Enum):
    """The three compared receiver designs (§5.1e)."""

    ZIGZAG = "zigzag"
    CURRENT_80211 = "802.11"
    SCHEDULER = "collision-free"


@dataclass(frozen=True)
class PairExperimentConfig:
    """Parameters of a sender-pair experiment."""

    payload_bits: int = 320
    n_packets: int = 12
    max_rounds: int = 5
    noise_power: float = 1.0
    slot_samples: int = 20
    backoff: BackoffPicker = field(
        default_factory=lambda: FixedWindowBackoff(16))
    phase_noise_std: float = 1e-3
    tx_evm: float = 0.03
    # Real 802.11 oscillators are specified to +/-20 ppm; at the paper's
    # 500 kb/s BPSK and 2 samples/symbol that is up to ~5e-2 cycles/sample.
    # A few 1e-3 keeps the inter-sender *relative* carrier rotating through
    # all alignments within one packet — without it, short BPSK collisions
    # can luck into quadrature and survive, which real hardware never does.
    freq_spread: float = 4e-3
    coarse_freq_error: float = 1.5e-5
    modulation: str = "bpsk"
    use_backward: bool = True
    sic_gain_ratio: float = 2.0
    preamble_length: int = 32
    # Optional impairment pipelines beyond the quasi-static model: the
    # sender pipeline rides on every transmission's channel; the capture
    # pipeline (AP front end / interferers) distorts each summed buffer.
    sender_impairments: ImpairmentPipeline | None = None
    capture_impairments: ImpairmentPipeline | None = None

    def __post_init__(self) -> None:
        if self.payload_bits < 64:
            raise ConfigurationError("payload too short for a frame")
        if self.n_packets < 1 or self.max_rounds < 1:
            raise ConfigurationError("counts must be positive")


@dataclass
class _Sender:
    """Static per-sender radio state across an experiment."""

    name: str
    snr_db: float
    freq_offset: float
    src: int

    def params(self, rng: np.random.Generator,
               cfg: PairExperimentConfig) -> ChannelParams:
        """Draw this round's channel realization for the sender."""
        amplitude = np.sqrt(10.0 ** (self.snr_db / 10.0)
                            * cfg.noise_power)
        return ChannelParams(
            gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=self.freq_offset,
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=cfg.phase_noise_std,
            tx_evm=cfg.tx_evm,
            impairments=cfg.sender_impairments,
        )


class PairExperiment:
    """Two saturated senders to one AP, with a given sensing probability."""

    def __init__(self, snr_a_db: float, snr_b_db: float,
                 sense_probability: float,
                 config: PairExperimentConfig | None = None,
                 rng: np.random.Generator | None = None,
                 preamble: Preamble | None = None,
                 shaper: PulseShaper | None = None) -> None:
        if not 0.0 <= sense_probability <= 1.0:
            raise ConfigurationError("sense probability in [0,1] required")
        self.cfg = config or PairExperimentConfig()
        self.rng = rng or np.random.default_rng(0)
        self.sense_probability = sense_probability
        cfg = self.cfg
        # Injectable so the Monte-Carlo runner can reuse cached reference
        # signals across trials; an injected preamble must match
        # cfg.preamble_length.
        if preamble is not None and len(preamble) != cfg.preamble_length:
            raise ConfigurationError(
                "injected preamble length differs from config")
        self.preamble = preamble or default_preamble(cfg.preamble_length)
        self.shaper = shaper or PulseShaper()
        self.sync = Synchronizer(self.preamble, self.shaper, threshold=0.3)
        self.standard = StandardDecoder(
            self.preamble, self.shaper, noise_power=cfg.noise_power)
        self.stream_config = StreamConfig(
            preamble=self.preamble, shaper=self.shaper,
            noise_power=cfg.noise_power)
        self.pair_decoder = ZigZagPairDecoder(
            self.stream_config, use_backward=cfg.use_backward)
        self.sic = SicDecoder(self.stream_config)
        spread = cfg.freq_spread
        self.senders = {
            "A": _Sender("A", snr_a_db,
                         float(self.rng.uniform(-spread, spread)), 1),
            "B": _Sender("B", snr_b_db,
                         float(self.rng.uniform(-spread, spread)), 2),
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _frame(self, sender: _Sender, seq: int) -> Frame:
        payload = random_bits(self.cfg.payload_bits, self.rng)
        return Frame.make(payload, src=sender.src, seq=seq % 4096,
                          modulation=self.cfg.modulation,
                          preamble=self.preamble)

    def _jitter_offsets(self, attempt: int) -> tuple[int, int]:
        cfg = self.cfg
        slot_a = cfg.backoff.pick(attempt, self.rng)
        slot_b = cfg.backoff.pick(attempt, self.rng)
        base = min(slot_a, slot_b)
        return ((slot_a - base) * cfg.slot_samples,
                (slot_b - base) * cfg.slot_samples)

    def _collide(self, frames: dict[str, Frame],
                 offsets: dict[str, int]) -> Capture:
        txs = [
            Transmission.from_symbols(
                frames[name].symbols, self.shaper,
                self.senders[name].params(self.rng, self.cfg),
                offsets[name], name)
            for name in frames
        ]
        return synthesize(txs, self.cfg.noise_power, self.rng,
                          leading=8, tail=30,
                          impairments=self.cfg.capture_impairments)

    def _clean_transmission_ber(self, frame: Frame,
                                sender: _Sender) -> float:
        capture = self._collide({sender.name: frame}, {sender.name: 0})
        coarse = sender.freq_offset + self.rng.normal(
            0, self.cfg.coarse_freq_error)
        decoder = StandardDecoder(
            self.preamble, self.shaper, noise_power=self.cfg.noise_power,
            coarse_freq=coarse)
        result = decoder.decode(capture.samples)
        return result.ber_against(frame.body_bits)

    def _acquire_placements(self, capture: Capture,
                            collision_index: int) -> list[PlacementParams]:
        placements = []
        for t in capture.transmissions:
            sender = self.senders[t.label]
            coarse = sender.freq_offset + self.rng.normal(
                0, self.cfg.coarse_freq_error)
            est = self.sync.acquire(
                capture.samples, t.symbol0, coarse_freq=coarse,
                noise_power=self.cfg.noise_power)
            placements.append(PlacementParams(
                t.label, collision_index,
                t.symbol0 + est.sampling_offset, est))
        return placements

    # ------------------------------------------------------------------
    # Per-design packet handling
    # ------------------------------------------------------------------
    def _standard_on_collision(self, capture: Capture,
                               frames: dict[str, Frame]) -> dict[str, float]:
        """Current-802.11 receiver on a collision: per-packet BER."""
        bers = {}
        for t in capture.transmissions:
            sender = self.senders[t.label]
            coarse = sender.freq_offset + self.rng.normal(
                0, self.cfg.coarse_freq_error)
            decoder = StandardDecoder(
                self.preamble, self.shaper,
                noise_power=self.cfg.noise_power, coarse_freq=coarse)
            try:
                result = decoder.decode(capture.samples,
                                        start_position=t.symbol0)
            except ReproError:
                bers[t.label] = 1.0
                continue
            bers[t.label] = result.ber_against(frames[t.label].body_bits)
        return bers

    def _try_sic(self, capture: Capture, frames: dict[str, Frame],
                 soft_history: dict[str, list]) -> dict[str, float]:
        """Capture-effect SIC on one collision, with cross-round MRC for
        the weak packet (Fig 4-1d). Returns per-packet BER."""
        placements = self._acquire_placements(capture, 0)
        gains = {p.packet: abs(p.estimate.gain) for p in placements}
        names = list(gains)
        ratio = max(gains.values()) / max(min(gains.values()), 1e-12)
        if ratio < self.cfg.sic_gain_ratio:
            return {name: 1.0 for name in names}
        n_symbols = frames[names[0]].n_symbols
        specs = {p.packet: PacketSpec(
            p.packet, n_symbols,
            get_constellation(self.cfg.modulation)) for p in placements}
        results = self.sic.decode(capture.samples, specs, placements)
        bers = {}
        for name, result in results.items():
            ber = result.ber_against(frames[name].body_bits)
            if (ber >= BER_DELIVERY_THRESHOLD
                    and result.soft_symbols.size == n_symbols):
                soft_history.setdefault(name, []).append(
                    result.soft_symbols)
                if len(soft_history[name]) >= 2:
                    combined = mrc_combine(soft_history[name])
                    bits, _, _ = extract_bits(
                        combined, specs[name], len(self.preamble))
                    ber = min(ber, bit_error_rate(
                        frames[name].body_bits, bits))
            bers[name] = ber
        return bers

    def _zigzag_pair(self, captures: list[Capture],
                     frames: dict[str, Frame]) -> dict[str, float]:
        placements = []
        for ci, capture in enumerate(captures):
            placements.extend(self._acquire_placements(capture, ci))
        constellation = get_constellation(self.cfg.modulation)
        specs = {name: PacketSpec(name, frames[name].n_symbols,
                                  constellation) for name in frames}
        outcome = self.pair_decoder.decode(
            [c.samples for c in captures], specs, placements)
        return {name: outcome.results[name].ber_against(
            frames[name].body_bits) for name in frames}

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, design: Design) -> tuple[dict[str, FlowStats], float]:
        """Run the experiment; returns (per-flow stats, total airtime)."""
        flows = {"A": FlowStats(), "B": FlowStats()}
        total_airtime = 0.0
        for index in range(self.cfg.n_packets):
            frames = {name: self._frame(sender, index)
                      for name, sender in self.senders.items()}
            senses = self.rng.uniform() < self.sense_probability
            if design is Design.SCHEDULER or senses:
                for name, frame in frames.items():
                    ber = self._clean_transmission_ber(
                        frame, self.senders[name])
                    flows[name].record(ber, airtime=1.0)
                    total_airtime += 1.0
                continue
            if design is Design.CURRENT_80211:
                airtime, bers, bonus = self._run_80211_rounds(frames)
            else:
                airtime, bers, bonus = self._run_zigzag_rounds(frames)
            total_airtime += airtime
            for name, ber in bers.items():
                flows[name].record(ber, airtime=airtime / 2.0)
                # A sender whose packet already got through keeps the
                # pipeline moving while the other retries (capture regime,
                # Fig 4-1d): those fresh packets delivered during the
                # remaining rounds count too.
                for _ in range(bonus.get(name, 0)):
                    flows[name].record(0.0, airtime=0.0)
        return flows, total_airtime

    def _run_80211_rounds(self, frames
                          ) -> tuple[float, dict[str, float], dict[str, int]]:
        """Current-802.11 retransmission rounds for one packet pair."""
        best = {name: 1.0 for name in frames}
        bonus = {name: 0 for name in frames}
        airtime = 0.0
        for attempt in range(self.cfg.max_rounds):
            pending = {n: f for n, f in frames.items()
                       if best[n] >= BER_DELIVERY_THRESHOLD}
            if not pending:
                break
            # Undelivered packets retransmit; a delivered sender moves on
            # to its next packet — hidden senders collide either way.
            off_a, off_b = self._jitter_offsets(attempt)
            offsets = {"A": off_a, "B": off_b}
            capture = self._collide(
                frames, {n: offsets[n] for n in frames})
            airtime += 1.0
            bers = self._standard_on_collision(capture, frames)
            for name, ber in bers.items():
                if best[name] < BER_DELIVERY_THRESHOLD:
                    if ber < BER_DELIVERY_THRESHOLD:
                        bonus[name] += 1
                else:
                    best[name] = min(best[name], ber)
        return airtime, best, bonus

    def _run_zigzag_rounds(self, frames
                           ) -> tuple[float, dict[str, float], dict[str, int]]:
        """ZigZag rounds: capture-SIC each collision, pair with the
        previous collision otherwise (§5.2 methodology)."""
        best = {name: 1.0 for name in frames}
        bonus = {name: 0 for name in frames}
        airtime = 0.0
        soft_history: dict[str, list] = {}
        previous: Capture | None = None
        for attempt in range(self.cfg.max_rounds):
            if all(b < BER_DELIVERY_THRESHOLD for b in best.values()):
                break
            off_a, off_b = self._jitter_offsets(attempt)
            capture = self._collide(frames, {"A": off_a, "B": off_b})
            airtime += 1.0
            # First, can this collision alone be resolved (capture + SIC)?
            sic_bers = self._try_sic(capture, frames, soft_history)
            for name, ber in sic_bers.items():
                if best[name] < BER_DELIVERY_THRESHOLD:
                    if ber < BER_DELIVERY_THRESHOLD:
                        bonus[name] += 1  # fresh packet rides the capture
                else:
                    best[name] = min(best[name], ber)
            if all(b < BER_DELIVERY_THRESHOLD for b in best.values()):
                break
            # Otherwise pair it with the previous collision and ZigZag.
            if previous is not None:
                try:
                    pair_bers = self._zigzag_pair([previous, capture],
                                                  frames)
                except ReproError:
                    pair_bers = {}
                for name, ber in pair_bers.items():
                    best[name] = min(best[name], ber)
            previous = capture
        return airtime, best, bonus


# ----------------------------------------------------------------------
# Scenario drivers used by the figure benchmarks
# ----------------------------------------------------------------------
def run_capture_sweep_point(sinr_db: float, design: Design, *,
                            snr_b_db: float = 9.0,
                            config: PairExperimentConfig | None = None,
                            seed: int = 0,
                            preamble: Preamble | None = None,
                            shaper: PulseShaper | None = None
                            ) -> dict[str, float]:
    """One Fig 5-4 point: hidden pair with SNR_A = SNR_B + SINR.

    Returns normalized per-sender throughputs plus their total.
    *preamble*/*shaper* allow callers (the runner) to inject cached
    reference objects instead of rebuilding them per point.
    """
    rng = np.random.default_rng(seed)
    experiment = PairExperiment(snr_b_db + sinr_db, snr_b_db,
                                sense_probability=0.0,
                                config=config, rng=rng,
                                preamble=preamble, shaper=shaper)
    flows, airtime = experiment.run(design)
    if airtime <= 0:
        return {"A": 0.0, "B": 0.0, "total": 0.0}
    tput = {name: stats.delivered / airtime
            for name, stats in flows.items()}
    tput["total"] = sum(v for k, v in tput.items())
    return tput


def run_three_sender_experiment(snr_db: float = 12.0, *,
                                n_packets: int = 8,
                                payload_bits: int = 256,
                                seed: int = 0,
                                slot_samples: int = 20,
                                noise_power: float = 1.0,
                                preamble: Preamble | None = None,
                                shaper: PulseShaper | None = None
                                ) -> dict[str, float]:
    """Fig 5-9: three mutually-hidden senders, ZigZag AP.

    Each round the three senders collide three times (three
    retransmissions with fresh jitter); the general N-collision engine
    decodes all three packets. Returns per-sender normalized throughput.
    *preamble*/*shaper* allow callers (the runner) to inject cached
    reference objects instead of rebuilding them per call.
    """
    rng = np.random.default_rng(seed)
    preamble = preamble or default_preamble(32)
    shaper = shaper or PulseShaper()
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=noise_power)
    # The general k-way decoder (§4.5): three captures per round, with
    # MRC across every cleaned capture copy of each packet.
    decoder = ZigZagMultiDecoder(config, use_backward=True)
    picker = FixedWindowBackoff(16)
    names = ["A", "B", "C"]
    freqs = {n: float(rng.uniform(-4e-3, 4e-3)) for n in names}
    delivered = {n: 0 for n in names}
    airtime = 0.0
    amplitude = np.sqrt(10.0 ** (snr_db / 10.0) * noise_power)
    for index in range(n_packets):
        frames = {n: Frame.make(random_bits(payload_bits, rng),
                                src=i + 1, seq=index, preamble=preamble)
                  for i, n in enumerate(names)}
        captures = []
        for _ in range(3):
            slots = [picker.pick(0, rng) for _ in names]
            base = min(slots)
            txs = []
            for n, slot in zip(names, slots):
                params = ChannelParams(
                    gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                    freq_offset=freqs[n],
                    sampling_offset=float(rng.uniform(0, 1)),
                    phase_noise_std=1e-3, tx_evm=0.03)
                txs.append(Transmission.from_symbols(
                    frames[n].symbols, shaper, params,
                    (slot - base) * slot_samples, n))
            captures.append(synthesize(txs, noise_power, rng,
                                       leading=8, tail=30))
            airtime += 1.0
        placements = []
        for ci, capture in enumerate(captures):
            for t in capture.transmissions:
                est = sync.acquire(
                    capture.samples, t.symbol0,
                    coarse_freq=freqs[t.label] + rng.normal(0, 1.5e-5),
                    noise_power=noise_power)
                placements.append(PlacementParams(
                    t.label, ci, t.symbol0 + est.sampling_offset, est))
        specs = {n: PacketSpec(n, frames[n].n_symbols) for n in names}
        outcome = decoder.decode([c.samples for c in captures], specs,
                                 placements)
        for n in names:
            if outcome.results[n].ber_against(
                    frames[n].body_bits) < BER_DELIVERY_THRESHOLD:
                delivered[n] += 1
    if airtime == 0:
        return {n: 0.0 for n in names}
    return {n: delivered[n] / airtime for n in names}
