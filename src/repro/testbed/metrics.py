"""Evaluation metrics (§5.1f): BER, packet loss rate, normalized throughput.

"We consider a packet to be correctly received if the BER in that packet is
less than 1e-3" — the delivery rule every experiment applies. Throughput is
"the number of delivered packets normalized by the transmission rate":
delivered packets over the airtime (in packet-slots) the medium spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["FlowStats", "normalized_throughput", "loss_rate",
           "BER_DELIVERY_THRESHOLD"]

# §5.1f: maximum uncoded BER considered correctable by channel coding.
BER_DELIVERY_THRESHOLD = 1e-3


@dataclass
class FlowStats:
    """Per-flow counters accumulated over an experiment."""

    sent: int = 0
    delivered: int = 0
    airtime_slots: float = 0.0
    bers: list = field(default_factory=list)

    def record(self, ber: float, airtime: float = 0.0) -> None:
        self.sent += 1
        self.bers.append(float(ber))
        self.airtime_slots += airtime
        if ber < BER_DELIVERY_THRESHOLD:
            self.delivered += 1

    @property
    def loss_rate(self) -> float:
        if self.sent == 0:
            return 0.0
        return 1.0 - self.delivered / self.sent

    def throughput(self, total_airtime: float | None = None) -> float:
        """Delivered packets per packet-slot of airtime.

        With *total_airtime* the normalization is shared across flows (the
        aggregate medium time), which is how per-sender throughputs in
        Fig 5-4 sum meaningfully.
        """
        airtime = total_airtime if total_airtime is not None \
            else self.airtime_slots
        if airtime <= 0:
            return 0.0
        return self.delivered / airtime


def normalized_throughput(flows: dict, total_airtime: float) -> dict:
    """Per-flow normalized throughput over shared airtime."""
    if total_airtime <= 0:
        raise ConfigurationError("total airtime must be positive")
    return {name: stats.delivered / total_airtime
            for name, stats in flows.items()}


def loss_rate(flows: dict) -> float:
    """Aggregate loss rate over all flows."""
    sent = sum(s.sent for s in flows.values())
    if sent == 0:
        return 0.0
    delivered = sum(s.delivered for s in flows.values())
    return 1.0 - delivered / sent
