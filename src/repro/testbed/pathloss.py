"""Log-distance path loss with log-normal shadowing.

The standard indoor propagation model: received power falls off as
``10 n log10(d/d0)`` dB beyond a reference distance, plus a per-link
Gaussian shadowing term capturing walls and furniture. Indoor WLAN
exponents run 2.5–4; the defaults below give a 14-node office-scale layout
the same qualitative SNR spread as the paper's testbed (Fig 5-1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LogDistancePathLoss"]


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Path loss in dB as a function of distance in meters."""

    exponent: float = 3.2
    reference_db: float = 40.0
    reference_m: float = 1.0
    shadowing_db: float = 4.0

    def __post_init__(self) -> None:
        if self.exponent <= 0 or self.reference_m <= 0:
            raise ConfigurationError(
                "exponent and reference distance must be positive")
        if self.shadowing_db < 0:
            raise ConfigurationError("shadowing std must be non-negative")

    def mean_loss_db(self, distance_m) -> np.ndarray:
        """Deterministic component of the loss."""
        d = np.maximum(np.asarray(distance_m, dtype=float),
                       self.reference_m)
        return self.reference_db + 10.0 * self.exponent * np.log10(
            d / self.reference_m)

    def sample_loss_db(self, distance_m,
                       rng: np.random.Generator) -> np.ndarray:
        """Loss including one shadowing draw (quasi-static per link)."""
        mean = self.mean_loss_db(distance_m)
        return mean + rng.normal(0.0, self.shadowing_db,
                                 size=np.shape(mean))
