"""Node topology, SNR matrix, and carrier-sense classification (Fig 5-1).

A :class:`Testbed` holds node positions and a symmetric per-link SNR matrix
drawn from the path-loss model. Carrier sensing between two *senders* is
classified from the inter-sender SNR:

- ``PERFECT``: each reliably detects the other's transmissions (CSMA works);
- ``PARTIAL``: detection is probabilistic (they sometimes collide);
- ``HIDDEN``: they cannot sense each other at all (every concurrent
  transmission collides).

The paper's testbed exhibits 12% hidden / 8% partial / 80% perfect sender
pairs (§5.6); :func:`default_testbed` produces a 14-node layout with a
comparable mix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.errors import ConfigurationError
from repro.testbed.pathloss import LogDistancePathLoss
from repro.utils.rng import make_rng

__all__ = ["SensingClass", "Testbed", "default_testbed"]


class SensingClass(enum.Enum):
    """How well two senders hear each other."""

    PERFECT = "perfect"
    PARTIAL = "partial"
    HIDDEN = "hidden"


@dataclass
class Testbed:
    """Positions + link SNRs + sensing rules for one experiment campaign.

    Parameters
    ----------
    positions:
        (n, 2) array of node coordinates in meters.
    snr_db:
        Symmetric (n, n) matrix of link SNRs at the receiver, dB.
    cs_full_db / cs_none_db:
        Inter-sender SNR thresholds: above *cs_full_db* sensing is
        perfect; below *cs_none_db* the pair is hidden; in between,
        sensing succeeds with a probability interpolated linearly.
    """

    positions: np.ndarray
    snr_db: np.ndarray
    cs_full_db: float = 4.0
    cs_none_db: float = 2.0

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.snr_db = np.asarray(self.snr_db, dtype=float)
        n = self.positions.shape[0]
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ConfigurationError("positions must be (n, 2)")
        if self.snr_db.shape != (n, n):
            raise ConfigurationError("snr matrix shape mismatch")
        if self.cs_none_db >= self.cs_full_db:
            raise ConfigurationError("cs_none_db must be < cs_full_db")

    @property
    def n_nodes(self) -> int:
        return self.positions.shape[0]

    # ------------------------------------------------------------------
    def sense_probability(self, a: int, b: int) -> float:
        """Probability that sender a detects sender b's transmission."""
        snr = self.snr_db[a, b]
        if snr >= self.cs_full_db:
            return 1.0
        if snr <= self.cs_none_db:
            return 0.0
        return (snr - self.cs_none_db) / (self.cs_full_db - self.cs_none_db)

    def sensing_class(self, a: int, b: int) -> SensingClass:
        p = min(self.sense_probability(a, b), self.sense_probability(b, a))
        if p >= 1.0:
            return SensingClass.PERFECT
        if p <= 0.0:
            return SensingClass.HIDDEN
        return SensingClass.PARTIAL

    def sensing_mix(self, reachable_db: float = 3.0) -> dict[SensingClass, float]:
        """Fraction of usable sender pairs in each sensing class.

        A pair is usable when some AP hears both senders above
        *reachable_db* (mirrors the paper's experiment selection)."""
        counts = {cls: 0 for cls in SensingClass}
        total = 0
        for a, b in combinations(range(self.n_nodes), 2):
            if not self.choose_aps(a, b, reachable_db):
                continue
            total += 1
            counts[self.sensing_class(a, b)] += 1
        if total == 0:
            raise ConfigurationError("no usable sender pairs in testbed")
        return {cls: counts[cls] / total for cls in SensingClass}

    def choose_aps(self, a: int, b: int,
                   reachable_db: float = 3.0) -> list[int]:
        """Candidate APs that hear both senders above *reachable_db*."""
        aps = []
        for node in range(self.n_nodes):
            if node in (a, b):
                continue
            if (self.snr_db[node, a] >= reachable_db
                    and self.snr_db[node, b] >= reachable_db):
                aps.append(node)
        return aps

    def sample_pair(self, rng: np.random.Generator,
                    reachable_db: float = 3.0) -> tuple[int, int, int]:
        """Random (sender_a, sender_b, ap) with a reachable AP (§5.6)."""
        for _ in range(10_000):
            a, b = rng.choice(self.n_nodes, size=2, replace=False)
            aps = self.choose_aps(int(a), int(b), reachable_db)
            if aps:
                return int(a), int(b), int(rng.choice(aps))
        raise ConfigurationError("could not sample a usable sender pair")


def default_testbed(seed: int = 7, *,
                    n_nodes: int = 14,
                    area_m: float = 30.0,
                    tx_power_dbm: float = 0.0,
                    noise_floor_dbm: float = -86.0,
                    model: LogDistancePathLoss | None = None,
                    max_snr_db: float = 25.0) -> Testbed:
    """A 14-node indoor layout with a paper-like sensing mix.

    Nodes are scattered over an L-shaped office footprint; the path-loss
    exponent, shadowing, and carrier-sense thresholds were calibrated so
    the usable-pair mix lands near the paper's 12% hidden / 8% partial /
    80% perfect (averaged over seeds: ~11% / 6% / 83%). Link SNRs are
    clamped to *max_snr_db* (receiver front-end saturation; the paper's
    indoor links rarely exceeded the mid-20s dB).
    """
    rng = make_rng(seed)
    model = model or LogDistancePathLoss(exponent=3.0, shadowing_db=6.0)
    # L-shaped layout: two wings meeting at a corner, like an office floor.
    positions = np.empty((n_nodes, 2))
    for i in range(n_nodes):
        if i % 2 == 0:
            positions[i] = [rng.uniform(0, area_m), rng.uniform(0, area_m / 3)]
        else:
            positions[i] = [rng.uniform(0, area_m / 3),
                            rng.uniform(0, area_m)]
    distances = np.linalg.norm(
        positions[:, None, :] - positions[None, :, :], axis=2)
    loss = model.sample_loss_db(distances, rng)
    loss = 0.5 * (loss + loss.T)  # reciprocal links
    snr = tx_power_dbm - loss - noise_floor_dbm
    np.fill_diagonal(snr, np.inf)
    snr = np.minimum(snr, max_snr_db)
    return Testbed(positions=positions, snr_db=snr)
