"""Shared utilities: bit packing, seeded randomness, and statistics helpers."""

from repro.utils.bits import (
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    bit_errors,
    bit_error_rate,
    hamming_distance,
    random_bits,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import (
    RunningMean,
    cdf_points,
    confidence_interval_mean,
    empirical_cdf,
    geometric_mean,
    percentile,
)

__all__ = [
    "bits_from_bytes",
    "bits_from_int",
    "bits_to_bytes",
    "bits_to_int",
    "bit_errors",
    "bit_error_rate",
    "hamming_distance",
    "random_bits",
    "make_rng",
    "spawn_rngs",
    "RunningMean",
    "cdf_points",
    "confidence_interval_mean",
    "empirical_cdf",
    "geometric_mean",
    "percentile",
]
