"""Bit-level helpers used throughout the PHY and framing code.

Bits are represented as 1-D ``numpy`` arrays of dtype ``uint8`` holding the
values 0 and 1, most significant bit first within every byte / integer.
Keeping a single canonical representation avoids the classic byte-order and
bit-order bugs that plague modem code.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "as_bit_array",
    "bits_from_bytes",
    "bits_to_bytes",
    "bits_from_int",
    "bits_to_int",
    "bit_errors",
    "bit_error_rate",
    "hamming_distance",
    "random_bits",
]


def as_bit_array(bits) -> np.ndarray:
    """Coerce *bits* (sequence of 0/1) into the canonical uint8 array form.

    Raises :class:`ConfigurationError` if any element is not 0 or 1.
    """
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ConfigurationError("bit arrays may contain only 0s and 1s")
    return arr


def bits_from_bytes(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand *data* into a bit array, MSB-first within each byte.

    >>> bits_from_bytes(b"\\x80").tolist()
    [1, 0, 0, 0, 0, 0, 0, 0]
    """
    byte_arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(byte_arr)


def bits_to_bytes(bits) -> bytes:
    """Pack a bit array (length must be a multiple of 8) back into bytes."""
    arr = as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ConfigurationError(
            f"bit array length {arr.size} is not a multiple of 8"
        )
    return np.packbits(arr).tobytes()


def bits_from_int(value: int, width: int) -> np.ndarray:
    """Encode the non-negative integer *value* as *width* bits, MSB first."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if value < 0:
        raise ConfigurationError("value must be non-negative")
    if value >= (1 << width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)],
                    dtype=np.uint8)


def bits_to_int(bits) -> int:
    """Decode an MSB-first bit array into a non-negative integer."""
    arr = as_bit_array(bits)
    out = 0
    for bit in arr:
        out = (out << 1) | int(bit)
    return out


def hamming_distance(a, b) -> int:
    """Number of positions at which two equal-length bit arrays differ."""
    arr_a = as_bit_array(a)
    arr_b = as_bit_array(b)
    if arr_a.size != arr_b.size:
        raise ConfigurationError(
            f"length mismatch: {arr_a.size} vs {arr_b.size}"
        )
    return int(np.count_nonzero(arr_a != arr_b))


def bit_errors(sent, received) -> int:
    """Alias for :func:`hamming_distance`, named for readability at call sites."""
    return hamming_distance(sent, received)


def bit_error_rate(sent, received) -> float:
    """Fraction of differing bits; 0.0 for empty inputs of equal length."""
    arr = as_bit_array(sent)
    if arr.size == 0:
        return 0.0
    return bit_errors(sent, received) / arr.size


def random_bits(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw *n* i.i.d. fair bits from *rng*."""
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    return rng.integers(0, 2, size=n, dtype=np.uint8)
