"""Seeded random-number-generator helpers.

Every stochastic component in the library takes an explicit
``numpy.random.Generator`` so experiments are reproducible end to end. These
helpers centralize construction and deterministic splitting of generators.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``Generator``; pass through if one is already supplied.

    ``None`` yields a nondeterministic generator (OS entropy), which is
    only appropriate for exploratory use — experiments should always seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* statistically independent child generators.

    Uses ``Generator.spawn`` so the children are independent of both each
    other and the parent's future output.
    """
    return list(rng.spawn(n))
