"""Small statistics helpers for the evaluation harness (CDFs, intervals)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "empirical_cdf",
    "cdf_points",
    "percentile",
    "geometric_mean",
    "confidence_interval_mean",
    "RunningMean",
]


def empirical_cdf(samples) -> tuple[np.ndarray, np.ndarray]:
    """Return sorted sample values and their empirical CDF ordinates.

    The ordinates use the ``i/n`` convention so the final point is exactly 1.
    """
    values = np.sort(np.asarray(samples, dtype=float).ravel())
    if values.size == 0:
        return values, values
    fractions = np.arange(1, values.size + 1, dtype=float) / values.size
    return values, fractions


def cdf_points(samples, grid) -> np.ndarray:
    """Evaluate the empirical CDF of *samples* at each point of *grid*."""
    values = np.sort(np.asarray(samples, dtype=float).ravel())
    grid_arr = np.asarray(grid, dtype=float)
    if values.size == 0:
        return np.zeros_like(grid_arr)
    return np.searchsorted(values, grid_arr, side="right") / values.size


def percentile(samples, q: float) -> float:
    """The *q*-th percentile (0..100) of *samples*."""
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("q must be within [0, 100]")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def geometric_mean(samples) -> float:
    """Geometric mean of strictly positive samples."""
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ConfigurationError("geometric_mean of empty sample set")
    if np.any(values <= 0):
        raise ConfigurationError("geometric_mean requires positive samples")
    return float(np.exp(np.mean(np.log(values))))


def confidence_interval_mean(samples, z: float = 1.96) -> tuple[float, float, float]:
    """Return (mean, low, high) normal-approximation CI for the sample mean."""
    values = np.asarray(samples, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("confidence interval of empty sample set")
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean, mean
    half = z * float(values.std(ddof=1)) / math.sqrt(values.size)
    return mean, mean - half, mean + half


@dataclass
class RunningMean:
    """Numerically stable streaming mean/variance (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.update(float(value))

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 until two samples are seen)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)
