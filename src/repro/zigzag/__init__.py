"""ZigZag decoding — the paper's core contribution.

Submodules:

- :mod:`~repro.zigzag.schedule`: the greedy chunk-ordering algorithm
  (§4.2.3 for packet pairs, §4.5 for N colliding senders, Fig 4-7).
- :mod:`~repro.zigzag.reencode`: decoded symbols -> channel image for
  subtraction (§4.2.3b, §4.2.4).
- :mod:`~repro.zigzag.engine`: executes a schedule over real captures,
  maintaining residual buffers, per-(packet, collision) decoder streams,
  accumulated images, and the cross-collision amplitude/phase/frequency
  correction loop of §4.2.4(b).
- :mod:`~repro.zigzag.decoder`: the user-facing decoders — the general
  k-way :class:`~repro.zigzag.decoder.ZigZagMultiDecoder` (§4.5) with
  forward + backward passes and k-copy MRC (§4.3b), and its k = 2
  :class:`~repro.zigzag.decoder.ZigZagPairDecoder` wrapper.
- :mod:`~repro.zigzag.detect` / :mod:`~repro.zigzag.match`: is-it-a-
  collision (§4.2.1) and did-we-get-matching-collisions (§4.2.2).
- :mod:`~repro.zigzag.sic`: capture-effect successive interference
  cancellation (Fig 4-1d/e).
"""

from repro.zigzag.schedule import (
    DecodeStep,
    Placement,
    greedy_schedule,
    pairwise_offsets_distinct,
    schedule_is_complete,
)
from repro.zigzag.reencode import Reencoder
from repro.zigzag.engine import PacketSpec, PlacementParams, ZigZagEngine
from repro.zigzag.detect import CollisionDetector
from repro.zigzag.match import match_score, collisions_match
from repro.zigzag.decoder import (
    ZigZagMultiDecoder,
    ZigZagOutcome,
    ZigZagPairDecoder,
)
from repro.zigzag.sic import SicDecoder

__all__ = [
    "DecodeStep",
    "Placement",
    "greedy_schedule",
    "pairwise_offsets_distinct",
    "schedule_is_complete",
    "Reencoder",
    "PacketSpec",
    "PlacementParams",
    "ZigZagEngine",
    "CollisionDetector",
    "match_score",
    "collisions_match",
    "ZigZagMultiDecoder",
    "ZigZagPairDecoder",
    "ZigZagOutcome",
    "SicDecoder",
]
