"""Trial-axis batched ZigZag: decode N independent collision trials at once.

Monte-Carlo sweeps (§5) decode thousands of *independent* hidden-pair
trials; the scalar :class:`~repro.zigzag.decoder.ZigZagPairDecoder` costs
one Python orchestration pass per trial. This module runs N trials in
lockstep through batched counterparts of every stage — matched sampling,
phase tracking (:mod:`repro.phy.batch`), the stream decoder
(:mod:`repro.receiver.batchstream`), re-encoding and the §4.2.4(b)
correction loop — so each stage is one ``(N, ...)`` array pass.

Lockstep requires every lane to execute the same chunk schedule over
captures of the same shape, so trials are grouped by **schedule
signature**: the exact forward (and backward) step sequences, capture
lengths, and packet geometry. Fractional timing offsets differ freely
inside a group — they live in per-lane arrays.

Lanes the lockstep path cannot reproduce bit-exactly are re-decoded
through the scalar path and their batched outputs discarded:

* trials whose preamble residual would train the scalar equalizer
  (:attr:`BatchedStreamDecoder.wants_equalizer`);
* whole groups that raise :class:`BatchDivergence` or any
  :class:`ReproError` mid-flight (mid-stream capture switches,
  lane-dependent pilot knowledge, sampler escapes);
* trials with three or more captures, non-BPSK bodies, or a failing
  schedule (delegated to the scalar decoder up front).

Because every batched operation is lane-elementwise (or a per-lane
reduction), a lane's outputs depend only on its own samples — decoding a
trial in a batch of 1 or 64 yields identical results, the property the
batch-size-invariance tests pin down.

Padding discipline: each capture lives in a ``(N, pad + len + pad)``
buffer whose pad columns are re-zeroed after every image subtraction.
The zero margins reproduce both the scalar matched-sampler's implicit
zero-padding and ``subtract_segment``'s edge clipping exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from zlib import crc32

from repro.errors import ConfigurationError, ReproError, ScheduleError
from repro.phy.constellation import BPSK
from repro.phy.estimation import ChannelEstimate
from repro.phy import frame as _frame
from repro.phy.frame import HEADER_BITS, FrameHeader, scrambler_sequence
from repro.phy.pulse import PulseShaper
from repro.receiver.batchstream import BatchDivergence, BatchedStreamDecoder
from repro.receiver.result import DecodeResult
from repro.zigzag.decoder import ZigZagOutcome, ZigZagPairDecoder
from repro.zigzag.engine import PacketAccumulator, PacketSpec, PlacementParams
from repro.zigzag.schedule import Placement, greedy_schedule

__all__ = ["BatchStats", "BatchedReencoder", "BatchedZigZagEngine",
           "BatchedPairDecoder", "CAPTURE_PAD"]

# Zero margin around each capture row; absorbs every pulse tail the scalar
# path clips or zero-pads (matched-filter half-width 12 + re-encode pad 7 +
# composed-kernel tail, with slack for per-lane integer-base spread).
CAPTURE_PAD = 64


@dataclass
class BatchStats:
    """How a ``decode_batch`` call split its trials (equivalence tests use
    this to assert the lockstep path was genuinely exercised)."""

    trials: int = 0
    lockstep: int = 0
    fallback: int = 0
    groups: int = 0


def _stack_padded(rows, length: int, pad: int) -> np.ndarray:
    """Stack equal-length capture rows into ``(N, pad + length + pad)``."""
    out = np.zeros((len(rows), length + 2 * pad), dtype=complex)
    for i, r in enumerate(rows):
        out[i, pad:pad + length] = r
    return out


# ---------------------------------------------------------------------------
# Batched re-encoder (mirrors repro.zigzag.reencode.Reencoder)
# ---------------------------------------------------------------------------
class BatchedReencoder:
    """Channel images of decoded chunks for one (packet, capture) across
    N lanes.

    Per-lane starts differ fractionally (and by a few integer samples);
    the integer spread is embedded as a per-lane shift in the upsampled
    symbol grid — convolution is shift-equivariant, so one batched
    convolution against the per-lane composed ``RRC ⊛ delay`` kernels
    yields every lane's segment in a common base frame. The chunks are
    tiny (≈ 100 samples against 33 taps), so the convolution runs as a
    sliding-window matmul rather than via FFTs, whose setup cost would
    dominate at this size.
    """

    def __init__(self, shaper: PulseShaper, gains: np.ndarray,
                 freqs: np.ndarray, starts: np.ndarray,
                 delay_half_width: int = 6) -> None:
        self.shaper = shaper
        self.gains = np.asarray(gains, dtype=complex).copy()
        self.freqs = np.asarray(freqs, dtype=float).copy()
        self.starts = np.asarray(starts, dtype=float).copy()
        self.delay_half_width = delay_half_width
        self._pad = delay_half_width + 1
        n = self.starts.size
        # base0 = floor(start − delay − pad) is constant per placement
        # (chunk bases differ from it by the integer sps*i0).
        position0 = self.starts - shaper.delay - self._pad
        self._base0 = np.floor(position0).astype(np.int64)
        fracs = position0 - self._base0
        # All lanes' composed RRC ⊛ fractional-delay kernels at once:
        # batched windowed-sinc rows, then one matmul against the RRC
        # convolution (Toeplitz) matrix instead of N python convolves.
        hw = delay_half_width
        grid = np.arange(-hw, hw + 1, dtype=float)
        window = np.hanning(2 * hw + 3)[1:-1]
        delay_taps = np.sinc(grid[None, :] + fracs[:, None]) * window
        delay_taps /= delay_taps.sum(axis=1, keepdims=True)
        delay_rev = delay_taps[:, ::-1]
        p = shaper.taps.size
        d_len = 2 * hw + 1
        conv = np.zeros((p + d_len - 1, d_len))
        for t in range(d_len):
            conv[t:t + p, t] = shaper.taps
        kernels = delay_rev @ conv.T
        # Reversed + trailing unit axis: ready for the sliding-window
        # matmul in :meth:`image` (correlate(x, k_rev) == convolve(x, k)).
        self._kernels_rev = np.ascontiguousarray(
            kernels[:, ::-1])[:, :, None]
        self._cols_cache: dict[int, np.ndarray] = {}
        self._base_min = int(self._base0.min())
        self._shifts = self._base0 - self._base_min
        if int(self._shifts.max()) > 16:
            raise BatchDivergence(
                "per-lane re-encode bases spread too far for lockstep")
        self._lanes = np.arange(n)
        self._powers: np.ndarray | None = None

    def _gain_ramp(self, base: int, size: int) -> np.ndarray:
        """``gain · exp(2jπ f (base + k))`` for k < size, per lane."""
        powers = self._powers
        if powers is None or powers.shape[1] < size:
            capacity = max(size, 256,
                           0 if powers is None else 2 * powers.shape[1])
            steps = np.broadcast_to(
                np.exp(2j * np.pi * self.freqs)[:, None],
                (self.freqs.size, capacity)).copy()
            steps[:, 0] = 1.0 + 0j
            powers = np.cumprod(steps, axis=1)
            self._powers = powers
        rot = (self.gains
               * np.exp(2j * np.pi * self.freqs * base))[:, None]
        return powers[:, :size] * rot

    def image(self, effective: np.ndarray,
              i0: int) -> tuple[np.ndarray, int]:
        """Batched chunk image: ``(segments (N, L), common_base)``.

        Row l's segment is placed at capture position ``common_base`` —
        the per-lane base offset is already embedded in the row.
        """
        d = np.asarray(effective, dtype=complex)
        if d.ndim != 2 or d.shape[1] == 0:
            raise ConfigurationError("cannot re-encode an empty chunk")
        sps = self.shaper.sps
        n, k = d.shape
        max_shift = int(self._shifts.max())
        width = (k - 1) * sps + 1 + max_shift
        kt = self._kernels_rev.shape[1]
        # Symbols scattered straight into a (kt-1)-zero-padded grid, so the
        # full convolution is one sliding-window batched matvec.
        upsampled = np.zeros((n, width + 2 * (kt - 1)), dtype=complex)
        cols = self._cols_cache.get(k)
        if cols is None:
            cols = (self._shifts[:, None] + sps * np.arange(k)[None, :]
                    + (kt - 1))
            self._cols_cache[k] = cols
        upsampled[self._lanes[:, None], cols] = d
        windows = np.lib.stride_tricks.sliding_window_view(
            upsampled, kt, axis=1)
        segments = np.matmul(windows, self._kernels_rev)[:, :, 0]
        # Same one-sample trim as the scalar composed-kernel path.
        base = self._base_min + sps * i0 + 1
        np.multiply(segments, self._gain_ramp(base, segments.shape[1]),
                    out=segments)
        return segments, base

    def core_bounds(self, i0: int, i1: int, base: int,
                    segment_len: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane ``(first, last)`` columns of the chunk-core region in
        the common segment frame (scalar ``core_slice``, per lane)."""
        sps = self.shaper.sps
        first = (np.floor(self.starts + sps * i0).astype(np.int64)
                 - base)
        last = (np.ceil(self.starts + sps * (i1 - 1)).astype(np.int64)
                - base)
        first = np.maximum(first, 0)
        last = np.minimum(last + 1, segment_len)
        return first, last


# ---------------------------------------------------------------------------
# Batched §4.2.4(b) correction loop state
# ---------------------------------------------------------------------------
@dataclass
class BatchedSubtractionState:
    """Per-lane :class:`~repro.zigzag.engine.SubtractionState`."""

    multiplier: np.ndarray
    freq: np.ndarray
    last_position: np.ndarray
    has_last: np.ndarray

    @classmethod
    def fresh(cls, n: int) -> "BatchedSubtractionState":
        return cls(multiplier=np.ones(n, dtype=complex),
                   freq=np.zeros(n, dtype=float),
                   last_position=np.zeros(n, dtype=float),
                   has_last=np.zeros(n, dtype=bool))

    def predict(self, position: np.ndarray) -> np.ndarray:
        delta = np.where(self.has_last, position - self.last_position, 0.0)
        return self.multiplier * np.exp(1j * self.freq * delta)


# ---------------------------------------------------------------------------
# Batched engine (mirrors repro.zigzag.engine.ZigZagEngine)
# ---------------------------------------------------------------------------
class BatchedZigZagEngine:
    """Execute one chunk schedule over N stacked trials in lockstep.

    *padded_captures* holds one ``(N, pad + len + pad)`` buffer per
    collision; *lane_placements* is the per-lane list of
    :class:`PlacementParams` (identical (packet, collision) ordering in
    every lane — the group signature guarantees it).
    """

    def __init__(self, config, padded_captures: list[np.ndarray],
                 capture_sizes: list[int], pad: int,
                 specs: dict[str, PacketSpec],
                 lane_placements: list[list[PlacementParams]], *,
                 correction_alpha: float = 0.7,
                 correction_beta: float = 0.4,
                 reversed_totals: bool = False,
                 pilots: dict[str, np.ndarray] | None = None) -> None:
        self.config = config
        self.pad = pad
        self.capture_sizes = list(capture_sizes)
        self.residual = [c.copy() for c in padded_captures]
        self.specs = specs
        self.correction_alpha = correction_alpha
        self.correction_beta = correction_beta
        self.reversed_totals = reversed_totals
        self._pilots = dict(pilots or {})
        self.n_lanes = padded_captures[0].shape[0]

        self.placements: dict[tuple[str, int], list[PlacementParams]] = {}
        self.by_packet: dict[str, list[tuple[str, int]]] = {}
        reference = lane_placements[0]
        for slot, pl in enumerate(reference):
            key = (pl.packet, pl.collision)
            if key in self.placements:
                raise ConfigurationError(f"duplicate placement {key}")
            lanes = [lane[slot] for lane in lane_placements]
            if any((l.packet, l.collision) != key for l in lanes):
                raise BatchDivergence("placement ordering differs by lane")
            self.placements[key] = lanes
            self.by_packet.setdefault(pl.packet, []).append(key)

        self.streams: dict[tuple[str, int], BatchedStreamDecoder] = {}
        self.subtraction = {
            key: BatchedSubtractionState.fresh(self.n_lanes)
            for key in self.placements
        }
        # np.zeros (calloc) over zeros_like: untouched pages stay copy-on-
        # write zero pages, and these buffers are large at big N.
        self.images = {
            key: np.zeros(self.residual[key[1]].shape, dtype=complex)
            for key in self.placements
        }
        self.reencoders: dict[tuple[str, int], BatchedReencoder] = {}
        self.packets: dict[str, dict[str, np.ndarray]] = {
            name: {
                "soft": np.zeros((self.n_lanes, spec.n_symbols),
                                 dtype=complex),
                "decisions": np.zeros((self.n_lanes, spec.n_symbols),
                                      dtype=complex),
                "phases": np.zeros((self.n_lanes, spec.n_symbols),
                                   dtype=float),
                "source": np.full((self.n_lanes, spec.n_symbols), -1,
                                  dtype=int),
            }
            for name, spec in specs.items()
        }
        self._starts_cache: dict[tuple[str, int], np.ndarray] = {}

    def _starts(self, key) -> np.ndarray:
        starts = self._starts_cache.get(key)
        if starts is None:
            starts = np.array([pl.start for pl in self.placements[key]],
                              dtype=float)
            self._starts_cache[key] = starts
        return starts

    def _get_stream(self, packet: str, collision: int,
                    at_cursor: int = 0) -> BatchedStreamDecoder:
        key = (packet, collision)
        stream = self.streams.get(key)
        if stream is not None and at_cursor > stream.cursor:
            raise BatchDivergence(
                "mid-stream capture switch (scalar path handles it)")
        if stream is None:
            if at_cursor > 0:
                raise BatchDivergence(
                    "stream starting mid-packet (capture switch)")
            lanes = self.placements[key]
            spec = self.specs[packet]
            stream = BatchedStreamDecoder(
                self.config,
                [pl.estimate for pl in lanes],
                self._starts(key),
                body_constellation=spec.body_constellation,
                reversed_total=spec.n_symbols if self.reversed_totals
                else None,
                pilots=self._pilots.get(packet),
            )
            self.streams[key] = stream
        return stream

    def _get_reencoder(self, packet: str, collision: int) -> BatchedReencoder:
        key = (packet, collision)
        enc = self.reencoders.get(key)
        if enc is None:
            lanes = self.placements[key]
            enc = BatchedReencoder(
                self.config.shaper,
                gains=np.array([pl.estimate.gain for pl in lanes],
                               dtype=complex),
                freqs=np.array([pl.estimate.freq_offset for pl in lanes],
                               dtype=float),
                starts=self._starts(key),
            )
            self.reencoders[key] = enc
        return enc

    # ------------------------------------------------------------------
    def run(self, steps) -> dict[str, dict[str, np.ndarray]]:
        for step in steps:
            self.execute(step)
        return self.packets

    def execute(self, step) -> None:
        packet, c = step.packet, step.collision
        stream = self._get_stream(packet, c, at_cursor=step.i0)
        if stream.cursor != step.i0:
            raise ConfigurationError(
                f"step {step} does not continue stream cursor "
                f"{stream.cursor}")
        # The matched sampler only reads the chunk's sample window; add
        # residual + image over that span instead of the whole buffer.
        shaper = self.config.shaper
        starts = self._starts((packet, c))
        lo = (int(np.floor(starts.min() + shaper.sps * step.i0))
              - shaper.delay + self.pad)
        hi = (int(np.floor(starts.max() + shaper.sps * (step.i1 - 1)))
              - shaper.delay + shaper.taps.size + self.pad)
        width = self.residual[c].shape[1]
        if lo < 0 or hi > width:
            raise BatchDivergence("chunk window escapes the padded buffer")
        local = np.add(self.residual[c][:, lo:hi],
                       self.images[(packet, c)][:, lo:hi])
        chunk = stream.decode_chunk(local, self.pad - lo, step.i1)

        acc = self.packets[packet]
        sl = slice(step.i0, step.i1)
        acc["soft"][:, sl] = chunk.soft
        acc["decisions"][:, sl] = chunk.decisions
        acc["phases"][:, sl] = chunk.phases
        acc["source"][:, sl] = c

        for key in self.by_packet[packet]:
            self._subtract_chunk(packet, key[1], c, chunk)

    def _apply_segment(self, buffer: np.ndarray, segments: np.ndarray,
                       base: int, capture: int, sign: float) -> None:
        """buffer[:, pad+base : ...] += sign*segments, then re-zero the pad
        columns (reproduces the scalar path's edge clipping)."""
        lo = self.pad + base
        hi = lo + segments.shape[1]
        if lo < 0 or hi > buffer.shape[1]:
            raise BatchDivergence("image segment escapes the padded buffer")
        if sign > 0:
            buffer[:, lo:hi] += segments
        else:
            buffer[:, lo:hi] -= segments
        # Re-zero only the pad columns this segment touched.
        if lo < self.pad:
            buffer[:, lo:min(hi, self.pad)] = 0.0
        tail = self.pad + self.capture_sizes[capture]
        if hi > tail:
            buffer[:, max(lo, tail):hi] = 0.0

    def _subtract_chunk(self, packet: str, target: int, decoded_from: int,
                        chunk) -> None:
        key = (packet, target)
        reencoder = self._get_reencoder(packet, target)
        sps = self.config.shaper.sps
        if target == decoded_from:
            stream = self.streams[key]
            # Keep the re-encoder's gains in sync with preamble refinement
            # (frequency never changes, so ramp caches stay valid).
            reencoder.gains = stream.gains
            effective = chunk.effective_symbols
            segments, base = reencoder.image(effective, chunk.i0)
        else:
            sub = self.subtraction[key]
            starts = self._starts(key)
            center = starts + sps * 0.5 * (chunk.i0 + chunk.i1)
            predicted = sub.predict(center)
            offsets = (np.arange(chunk.i1 - chunk.i0, dtype=float)
                       + 0.5 * (chunk.i0 - chunk.i1))
            # exp(j*0*x) == 1 exactly, so the zero-frequency lanes match
            # the scalar path's skipped-ramp branch without one.
            ramp = np.exp(1j * sub.freq[:, None] * sps * offsets[None, :])
            effective = chunk.decisions * predicted[:, None] * ramp
            segments, base = reencoder.image(effective, chunk.i0)
            corrections = self._measure_and_update(
                key, segments, base, chunk, reencoder, predicted, center)
            np.multiply(segments, corrections[:, None], out=segments)
        self._apply_segment(self.residual[target], segments, base,
                            target, -1.0)
        self._apply_segment(self.images[key], segments, base, target, +1.0)

    def _measure_and_update(self, key, segments, base, chunk, reencoder,
                            predicted: np.ndarray,
                            center: np.ndarray) -> np.ndarray:
        sub = self.subtraction[key]
        capture = key[1]
        residual = self.residual[capture]
        cap_size = self.capture_sizes[capture]
        first, last = reencoder.core_bounds(chunk.i0, chunk.i1, base,
                                            segments.shape[1])
        lo = base + first
        hi = base + last
        measurable = (lo >= 0) & (hi <= cap_size) & (hi > lo)
        n = predicted.size
        corrections = np.ones(n, dtype=complex)
        if not measurable.any():
            return corrections
        width = np.maximum(last - first, 0)
        w_max = int(width.max())
        offs = np.arange(w_max)
        valid = offs[None, :] < width[:, None]
        # Flat takes into a (N, 2, W) stack: row 0 the image core, row 1
        # the residual window (clipped indices are masked by `valid`).
        seg_w = segments.shape[1]
        res_w = residual.shape[1]
        rows = np.arange(n)[:, None]
        seg_idx = (np.clip(first[:, None] + offs, 0, seg_w - 1)
                   + rows * seg_w)
        res_idx = (np.clip(self.pad + lo[:, None] + offs, 0, res_w - 1)
                   + rows * res_w)
        pair = np.empty((n, 2, w_max), dtype=complex)
        pair[:, 0, :] = segments.reshape(-1).take(seg_idx)
        pair[:, 1, :] = residual.reshape(-1).take(res_idx)
        np.multiply(pair, valid[:, None, :], out=pair)
        # One Gram matmul yields all three reductions: |seg|², seg·win*,
        # |win|² (diagonal + off-diagonal of the 2x2 per-lane Gram).
        gram = np.matmul(pair, np.conj(pair.transpose(0, 2, 1)))
        denom = gram[:, 0, 0].real
        length = (hi - lo).astype(float)
        noise_floor = self.config.noise_power * length
        live = measurable & (denom >= 4.0 * noise_floor)
        if not live.any():
            return corrections
        safe_denom = np.where(denom > 0, denom, 1.0)
        rho = np.conj(gram[:, 0, 1]) / safe_denom
        own_power = denom / np.maximum(length, 1.0)
        window_power = gram[:, 1, 1].real / np.maximum(length, 1.0)
        abs_rho = np.abs(rho)
        contamination = np.maximum(
            window_power - own_power * abs_rho * abs_rho, 0.0)
        measurement_var = contamination / np.maximum(denom, 1e-30)
        prior_var = 0.02
        gain = (self.correction_alpha * prior_var
                / (prior_var + measurement_var))
        magnitude = np.clip(abs_rho, 0.5, 2.0)
        angle = np.arctan2(rho.imag, rho.real)
        scaled = gain * angle
        correction = (magnitude ** gain) * np.exp(1j * scaled)
        corrections[live] = correction[live]

        sub.multiplier[live] = predicted[live] * correction[live]
        dt = center - sub.last_position
        step_live = live & sub.has_last & (dt > 0)
        if step_live.any():
            safe_dt = np.where(step_live, dt, 1.0)
            max_step = 0.1 / safe_dt
            step = self.correction_beta * gain * angle / safe_dt
            step = np.clip(step, -max_step, max_step)
            sub.freq[step_live] += step[step_live]
        sub.last_position[live] = center[live]
        sub.has_last[live] = True
        return corrections

    # ------------------------------------------------------------------
    def final_multiplier(self, packet: str, collision: int) -> np.ndarray:
        key = (packet, collision)
        lanes = self.placements[key]
        spec = self.specs[packet]
        sps = self.config.shaper.sps
        last_pos = self._starts(key) + sps * (spec.n_symbols - 1)
        stream = self.streams.get(key)
        if stream is not None:
            static = stream.gains * np.exp(
                2j * np.pi * stream.freqs * last_pos)
            return static * np.exp(1j * stream.tracker.phase)
        sub = self.subtraction[key]
        gains = np.array([pl.estimate.gain for pl in lanes], dtype=complex)
        freqs = np.array([pl.estimate.freq_offset for pl in lanes],
                         dtype=float)
        static = gains * np.exp(2j * np.pi * freqs * last_pos)
        return static * sub.predict(last_pos)

    def final_freq(self, packet: str, collision: int) -> np.ndarray:
        key = (packet, collision)
        stream = self.streams.get(key)
        if stream is not None:
            return stream.total_freq_offset()
        lanes = self.placements[key]
        sub = self.subtraction[key]
        freqs = np.array([pl.estimate.freq_offset for pl in lanes],
                         dtype=float)
        return freqs + sub.freq / (2.0 * np.pi)

    def residual_power(self, collision: int) -> np.ndarray:
        size = self.capture_sizes[collision]
        r = self.residual[collision][:, self.pad:self.pad + size]
        return np.mean(np.abs(r) ** 2, axis=1)

    def wants_equalizer(self) -> np.ndarray:
        flags = np.zeros(self.n_lanes, dtype=bool)
        for stream in self.streams.values():
            flags |= stream.wants_equalizer
        return flags


# ---------------------------------------------------------------------------
# Top-level batched pair decoder
# ---------------------------------------------------------------------------
@dataclass
class _TrialPlan:
    """One trial's pre-computed scheduling facts."""

    index: int
    captures: list[np.ndarray]
    specs: dict[str, PacketSpec]
    placements: list[PlacementParams]
    schedule: list | None = None
    rev_schedule: list | None = None
    signature: tuple | None = None


# Header field layout (name, width), MSB-first — mirrors
# FrameHeader.to_bits / from_bits.
_HEADER_FIELDS = (("src", 8), ("dst", 8), ("seq", 12), ("retry", 1),
                  ("mod", 3), ("len", 16))


def _extract_bits_batch(combined: np.ndarray, pre_len: int):
    """Batched :func:`~repro.zigzag.decoder.extract_bits` for BPSK frames.

    *combined* is ``(N, n_symbols)`` soft symbols of one packet across the
    group (lockstep groups are BPSK-only, so header and body demodulate
    the same way). Returns ``(bits, crc_ok, headers)``: ``(N, bits)``
    uint8, ``(N,)`` bool, and a list of :class:`FrameHeader` or None —
    each row identical to what the scalar helper returns for that lane.
    """
    soft = combined[:, pre_len:]
    n, total = soft.shape
    # BPSK hard decision against points [-1, +1]: argmin's first-index
    # tie-break means an exactly equidistant sample decodes as bit 0.
    bits = (np.abs(soft - 1.0) < np.abs(soft + 1.0)).astype(np.uint8)
    bits ^= scrambler_sequence(total)[None, :]

    headers: list[FrameHeader | None] = [None] * n
    if total >= HEADER_BITS:
        fields = {}
        pos = 0
        for name, width in _HEADER_FIELDS:
            weights = (1 << np.arange(width - 1, -1, -1)).astype(np.int64)
            fields[name] = bits[:, pos:pos + width].astype(np.int64) \
                @ weights
            pos += width
        mod_names = _frame._MODULATION_NAMES
        for lane in range(n):
            mod = mod_names.get(int(fields["mod"][lane]))
            if mod is None:
                continue  # scalar from_bits raises FrameError -> None
            headers[lane] = FrameHeader(
                int(fields["src"][lane]), int(fields["dst"][lane]),
                int(fields["seq"][lane]), bool(fields["retry"][lane]),
                mod, int(fields["len"][lane]))

    if total < 32:
        crc_ok = np.zeros(n, dtype=bool)
    else:
        # packbits zero-pads the last partial byte, exactly like the
        # scalar crc32_bits' explicit padding.
        payload = np.packbits(bits[:, :-32], axis=1)
        checks = np.ascontiguousarray(
            np.packbits(bits[:, -32:], axis=1)).view(">u4").ravel()
        crc_ok = np.fromiter(
            (crc32(row.tobytes()) == ref
             for row, ref in zip(payload, checks)),
            dtype=bool, count=n)
    return bits, crc_ok, headers


@dataclass
class BatchedPairDecoder(ZigZagPairDecoder):
    """Batched hidden-pair ZigZag decoder (§4.2.3 over a trial axis).

    ``decode_batch`` groups trials by schedule signature, runs each group
    through :class:`BatchedZigZagEngine` (forward + backward + MRC), and
    replays any lane the lockstep path cannot reproduce bit-exactly
    through the inherited scalar :meth:`decode`. ``last_stats`` records
    the split.
    """

    last_stats: BatchStats = field(default_factory=BatchStats)

    def decode_batch(self, trials) -> list[ZigZagOutcome]:
        """Decode ``[(captures, specs, placements), ...]``; returns one
        :class:`ZigZagOutcome` per trial, in order."""
        plans = []
        for i, (captures, specs, placements) in enumerate(trials):
            plans.append(_TrialPlan(
                index=i,
                captures=[np.asarray(c, dtype=complex).ravel()
                          for c in captures],
                specs=specs,
                placements=list(placements)))
        outcomes: list[ZigZagOutcome | None] = [None] * len(plans)
        stats = BatchStats(trials=len(plans))

        groups: dict[tuple, list[_TrialPlan]] = {}
        scalar_queue: list[_TrialPlan] = []
        for plan in plans:
            if self._plan_signature(plan):
                groups.setdefault(plan.signature, []).append(plan)
            else:
                scalar_queue.append(plan)

        for group in groups.values():
            try:
                self._decode_group(group, outcomes, stats)
            except (ReproError, ConfigurationError):
                pass  # whole-group fallback: scalar is bit-identical
            # Ejected lanes (and whole failed groups) replay via scalar.
            scalar_queue.extend(
                p for p in group if outcomes[p.index] is None)
        stats.groups = len(groups)

        for plan in scalar_queue:
            outcomes[plan.index] = self.decode(
                plan.captures, plan.specs, plan.placements)
            stats.fallback += 1
        stats.lockstep = stats.trials - stats.fallback
        self.last_stats = stats
        return outcomes

    # ------------------------------------------------------------------
    def _plan_signature(self, plan: _TrialPlan) -> bool:
        """Compute schedules and the grouping signature; False ⇒ the trial
        must go through the scalar path (odd geometry or failing
        schedule — the scalar decoder reproduces the exact failure)."""
        if len(plan.captures) != 2:
            return False
        if any(spec.body_constellation is not BPSK
               for spec in plan.specs.values()):
            return False
        sps = self.config.shaper.sps
        try:
            plan.schedule = greedy_schedule(
                [Placement(pl.packet, pl.collision, pl.start,
                           plan.specs[pl.packet].n_symbols, sps)
                 for pl in plan.placements],
                margin_symbols=self.margin_symbols)
        except ScheduleError:
            return False
        rev_sig: tuple | None = None
        if self.use_backward:
            try:
                plan.rev_schedule = greedy_schedule(
                    [Placement(
                        pl.packet, pl.collision,
                        (plan.captures[pl.collision].size - 1)
                        - (pl.start
                           + sps * (plan.specs[pl.packet].n_symbols - 1)),
                        plan.specs[pl.packet].n_symbols, sps)
                     for pl in plan.placements],
                    margin_symbols=self.margin_symbols)
                rev_sig = tuple((s.packet, s.collision, s.i0, s.i1)
                                for s in plan.rev_schedule)
            except ScheduleError:
                plan.rev_schedule = None
        plan.signature = (
            tuple(c.size for c in plan.captures),
            tuple(sorted((name, spec.n_symbols)
                         for name, spec in plan.specs.items())),
            tuple((pl.packet, pl.collision) for pl in plan.placements),
            tuple((s.packet, s.collision, s.i0, s.i1)
                  for s in plan.schedule),
            rev_sig,
        )
        return True

    # ------------------------------------------------------------------
    def _decode_group(self, group: list[_TrialPlan], outcomes: list,
                      stats: BatchStats) -> bool:
        """Lockstep-decode one signature group; returns False if the whole
        group must fall back (outcomes untouched in that case)."""
        plan0 = group[0]
        specs = plan0.specs
        schedule = plan0.schedule
        cap_sizes = [c.size for c in plan0.captures]
        pad = CAPTURE_PAD
        padded = [
            _stack_padded([p.captures[c] for p in group], cap_sizes[c], pad)
            for c in range(len(cap_sizes))
        ]
        lane_placements = [p.placements for p in group]

        forward = BatchedZigZagEngine(
            self.config, padded, cap_sizes, pad, specs, lane_placements,
            correction_alpha=self.correction_alpha,
            correction_beta=self.correction_beta)
        fwd_out = forward.run(schedule)
        eject = forward.wants_equalizer()

        backward_soft: dict[str, np.ndarray] | None = None
        if self.use_backward and plan0.rev_schedule is not None:
            backward_soft = self._batched_backward(
                group, specs, forward, cap_sizes, pad)

        pre_len = len(self.config.preamble)
        n_lanes = len(group)
        lane_results: list[dict[str, DecodeResult]] = [
            {} for _ in range(n_lanes)]
        for name, spec in specs.items():
            fwd_soft = fwd_out[name]["soft"]
            fwd_dec = fwd_out[name]["decisions"]
            if backward_soft is not None and name in backward_soft:
                aligned, weights = self._align_backward_batch(
                    fwd_soft, fwd_dec, backward_soft[name])
                combined = (fwd_soft + weights * aligned) / (1.0 + weights)
            else:
                combined = fwd_soft
            estimates = self._final_estimates(forward, name)
            bits2d, crc_oks, headers = _extract_bits_batch(
                combined, pre_len)
            for lane in range(n_lanes):
                bits = bits2d[lane]
                crc_ok = bool(crc_oks[lane])
                payload = bits[HEADER_BITS:-32] \
                    if bits.size >= HEADER_BITS + 32 \
                    else np.zeros(0, np.uint8)
                lane_results[lane][name] = DecodeResult(
                    success=crc_ok,
                    bits=bits,
                    header=headers[lane],
                    payload=payload,
                    soft_symbols=combined[lane],
                    estimate=estimates[lane],
                    via="zigzag",
                    detail="" if crc_ok else "CRC mismatch",
                )

        residual_powers = np.stack(
            [forward.residual_power(c) for c in range(len(cap_sizes))],
            axis=1)
        for lane, plan in enumerate(group):
            if eject[lane]:
                continue  # replayed through the scalar path by the caller
            # Row views, not copies: the engine is discarded after the
            # group, so nothing else writes these arrays again.
            fwd_acc = {
                name: PacketAccumulator(
                    soft=fwd_out[name]["soft"][lane],
                    decisions=fwd_out[name]["decisions"][lane],
                    phases=fwd_out[name]["phases"][lane],
                    source=fwd_out[name]["source"][lane],
                )
                for name in specs
            }
            bwd = None if backward_soft is None else {
                name: backward_soft[name][lane]
                for name in backward_soft
            }
            outcomes[plan.index] = ZigZagOutcome(
                results=lane_results[lane],
                forward=fwd_acc,
                backward_soft=bwd,
                schedule=schedule,
                residual_powers=[float(x) for x in residual_powers[lane]],
            )
        return True

    def _batched_backward(self, group, specs, forward_engine,
                          cap_sizes, pad) -> dict[str, np.ndarray] | None:
        plan0 = group[0]
        sps = self.config.shaper.sps
        reversed_padded = [
            _stack_padded([np.conj(p.captures[c][::-1]) for p in group],
                          cap_sizes[c], pad)
            for c in range(len(cap_sizes))
        ]
        rev_lane_placements: list[list[PlacementParams]] = [
            [] for _ in group]
        for slot, pl0 in enumerate(plan0.placements):
            key = (pl0.packet, pl0.collision)
            spec = specs[pl0.packet]
            n_c = cap_sizes[pl0.collision]
            gain_r = np.conj(
                forward_engine.final_multiplier(*key))
            freq_r = forward_engine.final_freq(*key)
            for lane, plan in enumerate(group):
                pl = plan.placements[slot]
                last_pos = pl.start + sps * (spec.n_symbols - 1)
                rev_lane_placements[lane].append(PlacementParams(
                    packet=pl.packet,
                    collision=pl.collision,
                    start=(n_c - 1) - last_pos,
                    estimate=ChannelEstimate(
                        gain=complex(gain_r[lane]),
                        freq_offset=float(freq_r[lane]),
                        sampling_offset=0.0,
                        snr_db=pl.estimate.snr_db,
                    ),
                ))
        rev_specs = {
            name: PacketSpec(
                key=name,
                n_symbols=spec.n_symbols,
                body_constellation=spec.body_constellation.conjugate(),
            )
            for name, spec in specs.items()
        }
        pilots = {
            name: np.conj(
                forward_engine.packets[name]["decisions"][:, ::-1])
            for name in specs
        }
        engine = BatchedZigZagEngine(
            self.config, reversed_padded, cap_sizes, pad, rev_specs,
            rev_lane_placements,
            correction_alpha=self.correction_alpha,
            correction_beta=self.correction_beta,
            reversed_totals=True,
            pilots=pilots)
        reversed_out = engine.run(plan0.rev_schedule)
        return {
            name: np.conj(acc["soft"][:, ::-1])
            for name, acc in reversed_out.items()
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _align_backward_batch(forward_soft: np.ndarray,
                              forward_decisions: np.ndarray,
                              backward_soft: np.ndarray, block: int = 32,
                              min_agreement: float = 0.6
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Per-lane counterpart of ``_align_backward`` over (N, S)."""
        n, total = backward_soft.shape
        aligned = backward_soft.copy()
        weights = np.zeros((n, total), dtype=float)
        for start in range(0, total, block):
            sl = slice(start, min(start + block, total))
            dec = forward_decisions[:, sl]
            bwd = backward_soft[:, sl]
            denom = (np.einsum("nb,nb->n", dec.real, dec.real)
                     + np.einsum("nb,nb->n", dec.imag, dec.imag))
            live = denom > 0
            safe = np.where(live, denom, 1.0)
            rho = np.einsum("nb,nb->n", np.conj(dec), bwd) / safe
            abs_rho = np.abs(rho)
            rotatable = live & (abs_rho >= 1e-9)
            rot = np.where(rotatable, np.conj(rho)
                           / np.where(abs_rho > 0, abs_rho, 1.0), 1.0)
            blk_aligned = np.where(rotatable[:, None], bwd * rot[:, None],
                                   bwd)
            aligned[:, sl] = blk_aligned
            agree = rotatable & (np.minimum(abs_rho, 1.0) >= min_agreement)
            diff_f = forward_soft[:, sl] - dec
            diff_b = blk_aligned - dec
            var_f = (np.einsum("nb,nb->n", diff_f.real, diff_f.real)
                     + np.einsum("nb,nb->n", diff_f.imag, diff_f.imag))
            var_b = (np.einsum("nb,nb->n", diff_b.real, diff_b.real)
                     + np.einsum("nb,nb->n", diff_b.imag, diff_b.imag))
            w = np.where(var_b <= 0, 1.0,
                         np.clip(var_f / np.where(var_b > 0, var_b, 1.0),
                                 0.0, 1.0))
            weights[:, sl] = np.where(agree[:, None], w[:, None], 0.0)
        return aligned, weights

    def _final_estimates(self, engine: BatchedZigZagEngine,
                         packet: str) -> list[ChannelEstimate | None]:
        for key in engine.by_packet.get(packet, []):
            stream = engine.streams.get(key)
            if stream is not None:
                return [stream.current_estimate(lane)
                        for lane in range(engine.n_lanes)]
        return [None] * engine.n_lanes
