"""The user-facing ZigZag decoders: forward + backward passes + MRC.

:class:`ZigZagMultiDecoder` decodes k packets from k matching collisions
(§4.5) — the pair of §4.2.3 is simply its k = 2 configuration, exposed as
the thin :class:`ZigZagPairDecoder` wrapper for historical call sites.

§4.2.3 describes the forward pass; §4.3(b) adds backward decoding: "clearly
the figure is symmetric. The AP could wait until it received all samples,
and start decoding backward. If the AP does so, it will have two estimates
for each symbol. It combines these estimates to reduce errors using MRC."

Backward decoding here is implemented by time-reversal: conjugating and
reversing a capture maps the channel model onto itself —

    y[n] = H x(n-s) e^{j2πfn}  ==>  y'[m] = H' x'(m-s') e^{j2πfm}

with ``H' = conj(H e^{j2πf n_last} e^{jφ_last})``, ``x'`` the
conjugate-reversed symbol stream, and ``s'`` the mirrored start. The same
engine, scheduler, trackers and re-encoders therefore run unchanged on the
reversed captures; the per-(packet, capture) end states of the forward run
(tracked phase, equalizer taps) seed the reversed estimates. Forward and
backward soft symbols are then combined with maximal ratio combining, which
is why ZigZag's BER beats interference-free transmission (Fig 5-3): every
symbol is effectively received twice, once per collision.

With k > 2 collisions every symbol is received *k* times, and the multi
decoder extends the same idea: once the forward pass has cleaned every
capture, each packet's waveform can be re-read from each capture it
appears in (residual plus that packet's own re-added image), giving up to
k independent soft copies per symbol. Copies are gated blockwise against
the forward decisions and weighted by measured inverse variance — the
same guard that keeps a degraded backward pass from poisoning the
combine — and symbols the forward pass already decoded from that very
capture get zero weight (they carry the same noise, not new information).
At k = 2 the forward and backward passes already *are* the two
per-collision copies, so the extra-copy machinery stays off and the pair
behaviour (and its golden vectors) is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError, ScheduleError
from repro.phy.constellation import BPSK
from repro.phy.crc import strip_crc32
from repro.phy.equalizer import LmsEqualizer
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import HEADER_BITS, FrameHeader, scramble_bits
from repro.phy.isi import IsiFilter
from repro.receiver.frontend import StreamConfig, SymbolStreamDecoder
from repro.receiver.mrc import mrc_combine
from repro.receiver.result import DecodeResult
from repro.zigzag.engine import (
    PacketAccumulator,
    PacketSpec,
    PlacementParams,
    ZigZagEngine,
)
from repro.zigzag.schedule import DecodeStep, Placement, greedy_schedule

__all__ = ["ZigZagOutcome", "ZigZagMultiDecoder", "ZigZagPairDecoder",
           "extract_bits"]


def extract_bits(soft: np.ndarray, spec: PacketSpec,
                 preamble_len: int) -> tuple[np.ndarray, bool, FrameHeader | None]:
    """Demodulate a packet's soft body symbols into bits and check the CRC.

    Returns ``(bits, crc_ok, header)``; *header* is None if unparseable.
    The frame extent comes from ``spec.n_symbols`` (already established at
    scheduling time), never from the decoded header — a corrupted length
    field must not be able to truncate the output.
    """
    header_soft = soft[preamble_len:preamble_len + HEADER_BITS]
    body_soft = soft[preamble_len + HEADER_BITS:]
    header_bits = scramble_bits(BPSK.demodulate(header_soft))
    body_bits = scramble_bits(
        spec.body_constellation.demodulate(body_soft), offset=HEADER_BITS)
    bits = np.concatenate([header_bits, body_bits])
    header = None
    try:
        header = FrameHeader.from_bits(header_bits)
    except ReproError:
        pass
    try:
        _, crc_ok = strip_crc32(bits)
    except ReproError:
        crc_ok = False
    return bits, crc_ok, header


@dataclass
class ZigZagOutcome:
    """Everything a ZigZag decode of one collision set produced."""

    results: dict[str, DecodeResult]
    forward: dict[str, PacketAccumulator] | None = None
    backward_soft: dict[str, np.ndarray] | None = None
    # Per-packet extra MRC copies re-read from individual cleaned
    # captures (k >= 3 only); each entry is (collision, aligned soft).
    capture_soft: dict[str, list[tuple[int, np.ndarray]]] | None = None
    schedule: list[DecodeStep] | None = None
    residual_powers: list[float] = field(default_factory=list)
    detail: str = ""

    @property
    def all_decoded(self) -> bool:
        return bool(self.results) and all(
            r.success for r in self.results.values())


@dataclass
class ZigZagMultiDecoder:
    """Decode the same k-packet set across k (or more) matching collisions.

    This is the §4.5 general decoder: any number of captures, each holding
    any subset of the packet set, driven through the k-capable greedy
    scheduler and engine. The §4.2.3 pair decode is its k = 2
    configuration (see :class:`ZigZagPairDecoder`).

    Parameters
    ----------
    config:
        The shared :class:`StreamConfig` (preamble, shaping, noise floor,
        tracking/equalizer ablation switches).
    use_backward:
        Enable the backward pass + MRC (§4.3b). Disable to reproduce the
        forward-only ablation of Fig 5-3.
    margin_symbols:
        Scheduling guard between a decodable symbol and the nearest
        undecoded interferer, in symbols (pulse-overlap protection).
    mrc_all_copies:
        With three or more captures, re-read each packet from every
        cleaned capture it appears in and fold the extra soft copies into
        the MRC (k-copy combining). Never engages at k = 2, where forward
        and backward already supply both per-collision copies.
    """

    config: StreamConfig
    use_backward: bool = True
    margin_symbols: float = 1.0
    correction_alpha: float = 0.7
    correction_beta: float = 0.4
    mrc_all_copies: bool = True

    # ------------------------------------------------------------------
    def decode(self, captures: list[np.ndarray],
               specs: dict[str, PacketSpec],
               placements: list[PlacementParams]) -> ZigZagOutcome:
        """Run ZigZag over *captures* and return per-packet results."""
        captures = [np.asarray(c, dtype=complex).ravel() for c in captures]
        sps = self.config.shaper.sps
        try:
            schedule = greedy_schedule(
                [Placement(pl.packet, pl.collision, pl.start,
                           specs[pl.packet].n_symbols, sps)
                 for pl in placements],
                margin_symbols=self.margin_symbols)
        except ScheduleError as exc:
            return ZigZagOutcome(
                results={p: DecodeResult.failure(str(exc), via="zigzag")
                         for p in specs},
                detail=f"schedule failure: {exc}")

        forward_engine = ZigZagEngine(
            self.config, captures, specs, placements,
            correction_alpha=self.correction_alpha,
            correction_beta=self.correction_beta)
        forward = forward_engine.run(schedule)

        backward_soft: dict[str, np.ndarray] | None = None
        if self.use_backward:
            backward_soft = self._backward_pass(
                captures, specs, placements, forward_engine)

        # k-copy MRC (§4.5): with three or more captures, each cleaned
        # capture is an additional independent reading of every packet.
        capture_copies: dict[str, list] = {}
        capture_soft: dict[str, list[tuple[int, np.ndarray]]] | None = None
        if self.mrc_all_copies and len(captures) >= 3:
            capture_copies = self._capture_copies(specs, forward_engine)
            capture_soft = {
                name: [(c, aligned) for c, aligned, _ in entries]
                for name, entries in capture_copies.items()
            }

        results: dict[str, DecodeResult] = {}
        pre_len = len(self.config.preamble)
        for name, spec in specs.items():
            streams = [forward[name].soft]
            weights: list = [1.0]
            if backward_soft is not None and name in backward_soft:
                aligned, block_weights = self._align_backward(
                    forward[name].soft, forward[name].decisions,
                    backward_soft[name])
                # A backward pass that lost phase lock (e.g. a BPSK π slip)
                # or degraded toward its far end would poison the MRC
                # average; gate it blockwise on agreement with the forward
                # decisions and weight inverse to its measured variance so
                # a noisier stream can only help, never hurt.
                if np.any(block_weights > 0):
                    streams.append(aligned)
                    weights.append(block_weights)
            for _, aligned, copy_weights in capture_copies.get(name, []):
                streams.append(aligned)
                weights.append(copy_weights)
            combined = mrc_combine(streams, weights)
            bits, crc_ok, header = extract_bits(combined, spec, pre_len)
            payload = bits[HEADER_BITS:-32] if bits.size >= HEADER_BITS + 32 \
                else np.zeros(0, np.uint8)
            results[name] = DecodeResult(
                success=crc_ok,
                bits=bits,
                header=header,
                payload=payload,
                soft_symbols=combined,
                estimate=self._final_estimate(forward_engine, name),
                via="zigzag",
                detail="" if crc_ok else "CRC mismatch",
            )
        return ZigZagOutcome(
            results=results,
            forward=forward,
            backward_soft=backward_soft,
            capture_soft=capture_soft,
            schedule=schedule,
            residual_powers=[forward_engine.residual_power(c)
                             for c in range(len(captures))],
        )

    # ------------------------------------------------------------------
    def _capture_copies(self, specs: dict[str, PacketSpec],
                        engine: ZigZagEngine
                        ) -> dict[str, list[tuple[int, np.ndarray,
                                                  np.ndarray]]]:
        """Re-read every packet from each cleaned capture it appears in.

        After the forward pass, ``residual[c] + images[(p, c)]`` is
        capture *c* with every packet except *p* subtracted — a full
        interference-free view of *p* that the chunked forward pass only
        sampled where its schedule happened to route through *c*. A fresh
        stream decode of that view yields one more soft copy of the whole
        packet per capture. Each copy is phase-aligned and gated blockwise
        against the forward decisions (the backward-pass guard), and the
        symbols the forward pass already decoded *from this capture* get
        zero weight: they share its noise and carry no new information.

        Returns ``{packet: [(collision, aligned_soft, weights), ...]}``;
        copies whose weights vanish everywhere are dropped.
        """
        copies: dict[str, list[tuple[int, np.ndarray, np.ndarray]]] = {}
        for (name, c), pl in engine.placements.items():
            spec = specs[name]
            acc = engine.packets[name]
            cleaned = engine.residual[c] + engine.images[(name, c)]
            stream = SymbolStreamDecoder(
                self.config, pl.estimate, pl.start,
                body_constellation=spec.body_constellation,
                pilots=acc.decisions)
            try:
                chunk = stream.decode_chunk(cleaned, spec.n_symbols)
            except ReproError:
                continue
            aligned, weights = self._align_backward(
                acc.soft, acc.decisions, chunk.soft)
            weights = weights * (acc.source != c)
            if np.any(weights > 0):
                copies.setdefault(name, []).append((c, aligned, weights))
        return copies

    # ------------------------------------------------------------------
    @staticmethod
    def _align_backward(forward_soft: np.ndarray,
                        forward_decisions: np.ndarray,
                        backward_soft: np.ndarray, block: int = 32,
                        min_agreement: float = 0.6
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Phase-align the backward stream per block and weight it by
        measured inverse variance relative to the forward stream.

        The backward stream's absolute phase rests on the forward pass's
        end-state estimate; residual rotations (up to a BPSK sign flip, and
        possibly drifting along the packet) are detected against the
        forward decisions block-by-block. Blocks whose agreement falls
        below *min_agreement* get zero MRC weight — the backward pass
        degrades toward the packet head (its far end), and a corrupted
        stretch must not poison the combine. Surviving blocks are weighted
        by ``var(forward) / var(backward)`` (capped at 1), approximating
        true maximal-ratio weights.

        Returns ``(aligned_soft, per_symbol_weights)``.
        """
        n = backward_soft.size
        aligned = np.array(backward_soft, copy=True)
        weights = np.zeros(n, dtype=float)
        for start in range(0, n, block):
            sl = slice(start, min(start + block, n))
            dec = forward_decisions[sl]
            denom = float(np.vdot(dec, dec).real)
            if denom <= 0:
                continue
            rho = complex(np.vdot(dec, backward_soft[sl])) / denom
            abs_rho = abs(rho)
            if abs_rho < 1e-9:
                continue
            # exp(-1j*angle(rho)) == conj(rho)/|rho| without trig calls.
            aligned[sl] = backward_soft[sl] * (rho.conjugate() / abs_rho)
            if min(abs_rho, 1.0) < min_agreement:
                continue
            diff_f = forward_soft[sl] - dec
            diff_b = aligned[sl] - dec
            var_f = float(np.vdot(diff_f, diff_f).real)
            var_b = float(np.vdot(diff_b, diff_b).real)
            if var_b <= 0:
                weights[sl] = 1.0
            else:
                weights[sl] = min(max(var_f / var_b, 0.0), 1.0)
        return aligned, weights

    def _final_estimate(self, engine: ZigZagEngine,
                        packet: str) -> ChannelEstimate | None:
        for pl in engine.by_packet.get(packet, []):
            key = (packet, pl.collision)
            if key in engine.streams:
                return engine.streams[key].estimate
        return None

    def _backward_pass(self, captures, specs, placements,
                       forward_engine: ZigZagEngine
                       ) -> dict[str, np.ndarray] | None:
        """Decode the time-reversed captures and map soft symbols back."""
        sps = self.config.shaper.sps
        reversed_captures = [np.conj(c[::-1]) for c in captures]

        rev_placements: list[PlacementParams] = []
        equalizers: dict[tuple[str, int], LmsEqualizer] = {}
        symbol_isi: dict[tuple[str, int], IsiFilter] = {}
        for pl in placements:
            spec = specs[pl.packet]
            n_c = captures[pl.collision].size
            last_pos = pl.start + sps * (spec.n_symbols - 1)
            rev_start = (n_c - 1) - last_pos
            gain_r = np.conj(
                forward_engine.final_multiplier(pl.packet, pl.collision))
            freq_r = forward_engine.final_freq(pl.packet, pl.collision)
            rev_placements.append(PlacementParams(
                packet=pl.packet,
                collision=pl.collision,
                start=rev_start,
                estimate=ChannelEstimate(
                    gain=gain_r,
                    freq_offset=freq_r,
                    sampling_offset=0.0,
                    snr_db=pl.estimate.snr_db,
                ),
            ))
            key = (pl.packet, pl.collision)
            stream = forward_engine.streams.get(key)
            if stream is not None and stream.equalizer is not None:
                taps_r = np.conj(stream.equalizer.taps[::-1])
                equalizers[key] = LmsEqualizer(
                    n_taps=taps_r.size, taps=taps_r)
            if stream is not None and stream.channel_isi is not None:
                symbol_isi[key] = IsiFilter(
                    np.conj(stream.channel_isi.taps[::-1]))

        rev_specs = {
            name: PacketSpec(
                key=name,
                n_symbols=spec.n_symbols,
                body_constellation=spec.body_constellation.conjugate(),
            )
            for name, spec in specs.items()
        }
        try:
            rev_schedule = greedy_schedule(
                [Placement(pl.packet, pl.collision, pl.start,
                           rev_specs[pl.packet].n_symbols, sps)
                 for pl in rev_placements],
                margin_symbols=self.margin_symbols)
        except ScheduleError:
            return None

        # Pilot the reversed trackers with the (conjugate-reversed) forward
        # decisions: phase tracking hardens against the missing data-aided
        # preamble while the backward soft symbols remain independent
        # measurements from the other collision.
        pilots = {
            name: np.conj(forward_engine.packets[name].decisions[::-1])
            for name in specs
        }
        engine = ZigZagEngine(
            self.config, reversed_captures, rev_specs, rev_placements,
            correction_alpha=self.correction_alpha,
            correction_beta=self.correction_beta,
            reversed_totals=True,
            equalizers=equalizers,
            symbol_isi=symbol_isi,
            pilots=pilots)
        try:
            reversed_out = engine.run(rev_schedule)
        except ReproError:
            return None
        return {
            name: np.conj(acc.soft[::-1])
            for name, acc in reversed_out.items()
        }


@dataclass
class ZigZagPairDecoder(ZigZagMultiDecoder):
    """The historical §4.2.3 pair entry point: k = 2 configuration of
    :class:`ZigZagMultiDecoder`.

    Forward + backward + MRC only — ``mrc_all_copies`` stays off so the
    decode is bit-identical to the pre-multi-decoder pair path (and its
    golden vectors) even when a caller hands it more than two captures.
    New k-way call sites should use :class:`ZigZagMultiDecoder` directly.
    """

    mrc_all_copies: bool = False
