"""Is it a collision? (§4.2.1, Fig 4-2, Table 5.1 row 1)

A ZigZag AP correlates the known preamble against the received signal,
compensating each candidate sender's coarse frequency offset. A spike in
the *middle* of a reception marks a colliding packet and its exact start
offset Δ. The paper thresholds the compensated correlation at
``β × L × SNR`` with β ≈ 0.65 balancing false positives against false
negatives; our normalized-score equivalent divides out both the preamble
and local signal energy so one β works across the SNR range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy.correlation import CorrelationPeak
from repro.phy.preamble import Preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer

__all__ = ["CollisionVerdict", "CollisionDetector"]


@dataclass(frozen=True)
class CollisionVerdict:
    """Outcome of collision detection on one capture."""

    is_collision: bool
    peaks: list[CorrelationPeak]

    @property
    def offset(self) -> int | None:
        """Δ between the first two detected packets, in samples."""
        if len(self.peaks) < 2:
            return None
        return self.peaks[1].position - self.peaks[0].position


@dataclass
class CollisionDetector:
    """Detects packet starts — including ones buried inside a reception.

    Parameters
    ----------
    preamble / shaper:
        System preamble and pulse shaping.
    beta:
        Detection threshold on the normalized correlation score, the
        analogue of the paper's β (§5.3a). Lower values catch weaker buried
        preambles at the cost of false positives on clean packets; the
        paper (and our Table 5.1 bench) operates around the knee.
    """

    preamble: Preamble
    shaper: PulseShaper = field(default_factory=PulseShaper)
    beta: float = 0.40

    def __post_init__(self) -> None:
        self._sync = Synchronizer(self.preamble, self.shaper,
                                  threshold=self.beta)

    def find_packets(self, signal, coarse_freqs=(0.0,),
                     max_peaks: int | None = None) -> list[CorrelationPeak]:
        """All packet-start peaks, merging detections across the coarse
        frequency-offset candidates of the AP's associated clients."""
        y = np.asarray(signal, dtype=complex).ravel()
        merged: dict[int, CorrelationPeak] = {}
        for freq in coarse_freqs:
            for peak in self._sync.detect(y, coarse_freq=freq,
                                          max_peaks=max_peaks):
                # Keep the strongest detection near each position.
                slot = min(merged.keys(),
                           key=lambda pos: abs(pos - peak.position),
                           default=None)
                if slot is not None and abs(slot - peak.position) <= 2:
                    if merged[slot].score < peak.score:
                        del merged[slot]
                        merged[peak.position] = peak
                else:
                    merged[peak.position] = peak
        peaks = sorted(merged.values(), key=lambda p: p.position)
        if max_peaks is not None:
            peaks = peaks[:max_peaks]
        return peaks

    def inspect(self, signal, coarse_freqs=(0.0,),
                max_packets: int = 2) -> CollisionVerdict:
        """Classify a capture: clean reception vs collision.

        A capture is a collision when two or more preamble spikes clear
        the threshold at distinct positions (Fig 4-2). Only the
        *strongest* ``max_packets`` spikes are kept (weaker ones are far
        more likely to be data sidelobes than third packets), then
        reported in position order.
        """
        peaks = self.find_packets(signal, coarse_freqs)
        strongest = sorted(peaks, key=lambda p: -p.score)[:max_packets]
        strongest.sort(key=lambda p: p.position)
        return CollisionVerdict(is_collision=len(strongest) >= 2,
                                peaks=strongest)
