"""The ZigZag execution engine: runs a chunk schedule over real captures.

State per run:

- ``residual[c]``: capture c with every decoded chunk's image subtracted —
  the paper's progressively-cleaned collision signal.
- ``streams[(p, c)]``: the black-box stream decoder for packets that decode
  chunks out of collision c (phase-tracking state lives here).
- ``subtraction[(p, c)]``: for collisions where p is only *subtracted*, the
  §4.2.4(b) correction loop — a complex multiplier plus frequency term
  updated from the measured mismatch between each predicted chunk image and
  the still-uncleaned residual ("compare the phases in chunk 1' and chunk
  1''; update 6f = 6f + α δφ/δt").
- ``images[(p, c)]``: accumulated reconstruction of p in c. When p decodes
  its *own* next chunk from c, its previously-subtracted image is locally
  re-added so the stream sees the original waveform (only *other* packets
  must be absent).

Executing a :class:`~repro.zigzag.schedule.DecodeStep` therefore:
decode chunk -> re-encode -> measure/correct (cross-collision) -> subtract
everywhere p appears. Soft symbols, hard decisions and tracked phases are
accumulated per packet for the caller (bit extraction, MRC, CRC).

This engine is a building block, driven by
:class:`~repro.zigzag.decoder.ZigZagPairDecoder` per collision set. To
run whole experiments over it — Monte-Carlo trials, process fan-out,
aggregated statistics — use the :mod:`repro.runner` subsystem
(``python -m repro run scenario.toml``), the supported entry point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.constellation import BPSK, Constellation
from repro.phy.estimation import ChannelEstimate
from repro.phy.isi import IsiFilter
from repro.receiver.frontend import StreamConfig, SymbolStreamDecoder
from repro.zigzag.reencode import Reencoder, add_segment, subtract_segment
from repro.zigzag.schedule import DecodeStep

__all__ = ["PacketSpec", "PlacementParams", "SubtractionState",
           "ZigZagEngine"]


@dataclass(frozen=True)
class PacketSpec:
    """What the engine must know about one colliding packet."""

    key: str
    n_symbols: int
    body_constellation: Constellation = BPSK


@dataclass
class PlacementParams:
    """One packet's channel in one capture, as estimated at detection time."""

    packet: str
    collision: int
    start: float
    estimate: ChannelEstimate


@dataclass
class SubtractionState:
    """§4.2.4(b) correction loop for a subtract-only placement."""

    multiplier: complex = 1.0 + 0j
    freq: float = 0.0          # residual, radians per sample
    last_position: float | None = None

    def predict(self, position: float) -> complex:
        """Extrapolate the correction multiplier to *position* (samples)."""
        if self.last_position is None:
            return self.multiplier
        angle = self.freq * (position - self.last_position)
        return self.multiplier * complex(math.cos(angle), math.sin(angle))


@dataclass
class PacketAccumulator:
    """Per-packet outputs assembled as chunks decode."""

    soft: np.ndarray
    decisions: np.ndarray
    phases: np.ndarray
    source: np.ndarray  # collision index each symbol was decoded from

    @classmethod
    def empty(cls, n: int) -> "PacketAccumulator":
        """An all-zeros accumulator for an *n*-symbol packet."""
        return cls(
            soft=np.zeros(n, dtype=complex),
            decisions=np.zeros(n, dtype=complex),
            phases=np.zeros(n, dtype=float),
            source=np.full(n, -1, dtype=int),
        )


class ZigZagEngine:
    """Execute chunk schedules over captured collision signals."""

    def __init__(self, config: StreamConfig, captures: list[np.ndarray],
                 specs: dict[str, PacketSpec],
                 placements: list[PlacementParams], *,
                 correction_alpha: float = 0.7,
                 correction_beta: float = 0.4,
                 measure_correction: bool = True,
                 reversed_totals: bool = False,
                 equalizers: dict | None = None,
                 symbol_isi: dict | None = None,
                 pilots: dict | None = None) -> None:
        if not captures:
            raise ConfigurationError("engine needs at least one capture")
        self.config = config
        self.residual = [np.array(c, dtype=complex, copy=True)
                         for c in captures]
        self.specs = specs
        self.correction_alpha = correction_alpha
        self.correction_beta = correction_beta
        self.measure_correction = measure_correction
        self.reversed_totals = reversed_totals
        self._preset_equalizers = dict(equalizers or {})
        self._preset_isi = dict(symbol_isi or {})
        self._pilots = dict(pilots or {})

        self.placements: dict[tuple[str, int], PlacementParams] = {}
        self.by_packet: dict[str, list[PlacementParams]] = {}
        for pl in placements:
            key = (pl.packet, pl.collision)
            if key in self.placements:
                raise ConfigurationError(f"duplicate placement {key}")
            if pl.packet not in specs:
                raise ConfigurationError(f"no spec for packet {pl.packet!r}")
            if not 0 <= pl.collision < len(captures):
                raise ConfigurationError("placement collision out of range")
            self.placements[key] = pl
            self.by_packet.setdefault(pl.packet, []).append(pl)

        self.streams: dict[tuple[str, int], SymbolStreamDecoder] = {}
        self.subtraction: dict[tuple[str, int], SubtractionState] = {
            key: SubtractionState() for key in self.placements
        }
        self.images: dict[tuple[str, int], np.ndarray] = {
            key: np.zeros(self.residual[key[1]].size, dtype=complex)
            for key in self.placements
        }
        self.reencoders: dict[tuple[str, int], Reencoder] = {}
        self.packets: dict[str, PacketAccumulator] = {
            name: PacketAccumulator.empty(spec.n_symbols)
            for name, spec in specs.items()
        }
        # Scratch buffers reused across chunk decodes (hot path): an
        # arange for the correction-loop phase ramps and one capture-sized
        # buffer per collision for the local residual+image view.
        self._arange_scratch = np.arange(256, dtype=float)
        self._local_scratch: dict[int, np.ndarray] = {}

    def _centered_offsets(self, i0: int, i1: int) -> np.ndarray:
        """``arange(i0, i1) - (i0 + i1)/2`` without a fresh allocation.

        Both terms are exact in floating point (integers and integer
        halves), so this matches the naive expression bit-for-bit.
        """
        n = i1 - i0
        if self._arange_scratch.size < n:
            self._arange_scratch = np.arange(
                max(n, 2 * self._arange_scratch.size), dtype=float)
        return self._arange_scratch[:n] + (0.5 * (i0 - i1))

    # ------------------------------------------------------------------
    # Lazily-built helpers
    # ------------------------------------------------------------------
    def _get_stream(self, packet: str, collision: int,
                    at_cursor: int = 0) -> SymbolStreamDecoder:
        key = (packet, collision)
        if key in self.streams and at_cursor > self.streams[key].cursor:
            # The schedule routed intermediate chunks through another
            # capture and is now coming back; the old tracker state is
            # stale, so rebuild from the subtraction-correction loop that
            # has been tracking this placement meanwhile.
            del self.streams[key]
        if key not in self.streams:
            pl = self.placements[key]
            spec = self.specs[packet]
            stream = SymbolStreamDecoder(
                self.config, pl.estimate, pl.start,
                body_constellation=spec.body_constellation,
                reversed_total=spec.n_symbols if self.reversed_totals
                else None,
                pilots=self._pilots.get(packet),
            )
            if key in self._preset_equalizers:
                stream.equalizer = self._preset_equalizers[key]
            if key in self._preset_isi:
                stream.channel_isi = self._preset_isi[key]
            if at_cursor > 0:
                # The packet switches decode-collision mid-stream (the
                # scheduler found its next chunk only in this capture).
                # Seed the new stream from the subtraction-correction loop
                # that has been tracking this placement so far, and inherit
                # the equalizer trained in the sibling capture.
                sub = self.subtraction[key]
                sps = self.config.shaper.sps
                position = pl.start + sps * at_cursor
                stream.estimate = pl.estimate.with_gain(
                    pl.estimate.gain * sub.predict(position))
                stream.tracker.freq = sub.freq * sps
                stream.cursor = at_cursor
                stream._refined = True
                for sibling in self.by_packet[packet]:
                    sib = self.streams.get((packet, sibling.collision))
                    if sib is not None and sib is not stream:
                        if stream.equalizer is None:
                            stream.equalizer = sib.equalizer
                        if stream.channel_isi is None:
                            stream.channel_isi = sib.channel_isi
                        break
            self.streams[key] = stream
        return self.streams[key]

    def _get_reencoder(self, packet: str, collision: int) -> Reencoder:
        key = (packet, collision)
        if key not in self.reencoders:
            pl = self.placements[key]
            self.reencoders[key] = Reencoder(
                shaper=self.config.shaper,
                estimate=pl.estimate,
                start=pl.start,
                symbol_isi=self._preset_isi.get(key),
            )
        return self.reencoders[key]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, steps: list[DecodeStep]) -> dict[str, PacketAccumulator]:
        """Execute a full schedule; returns the per-packet accumulators."""
        for step in steps:
            self.execute(step)
        return self.packets

    def execute(self, step: DecodeStep) -> None:
        """Execute one step: decode the chunk, then subtract its image
        from every capture the packet appears in."""
        packet, c = step.packet, step.collision
        stream = self._get_stream(packet, c, at_cursor=step.i0)
        if stream.cursor != step.i0:
            raise ConfigurationError(
                f"step {step} does not continue stream cursor "
                f"{stream.cursor}")
        # Local view: residual plus this packet's own already-subtracted
        # image (other packets' images stay subtracted). The stream only
        # reads from it during the call, so one scratch buffer per capture
        # serves every step.
        local = self._local_scratch.get(c)
        if local is None:
            local = np.empty_like(self.residual[c])
            self._local_scratch[c] = local
        np.add(self.residual[c], self.images[(packet, c)], out=local)
        chunk = stream.decode_chunk(local, step.i1)

        acc = self.packets[packet]
        sl = slice(step.i0, step.i1)
        acc.soft[sl] = chunk.soft
        acc.decisions[sl] = chunk.decisions
        acc.phases[sl] = chunk.phases
        acc.source[sl] = c

        for pl in self.by_packet[packet]:
            self._subtract_chunk(packet, pl.collision, c, chunk)

    def _subtract_chunk(self, packet: str, target: int, decoded_from: int,
                        chunk) -> None:
        key = (packet, target)
        reencoder = self._get_reencoder(packet, target)
        if target == decoded_from:
            # The decoding stream's own tracker phases are authoritative;
            # keep the re-encoder's estimate in sync with refinements.
            stream = self.streams[key]
            reencoder.estimate = stream.estimate
            if stream.channel_isi is not None:
                reencoder.symbol_isi = stream.channel_isi
            effective = chunk.effective_symbols
            segment, base = reencoder.image(effective, chunk.i0)
        else:
            sub = self.subtraction[key]
            sps = self.config.shaper.sps
            center = reencoder.start + sps * 0.5 * (chunk.i0 + chunk.i1)
            predicted = sub.predict(center)
            if sub.freq == 0.0:
                # No measured residual frequency yet (or none): the
                # intra-chunk ramp is all-ones, skip building it.
                effective = chunk.decisions * predicted
            else:
                effective = chunk.decisions * predicted * np.exp(
                    1j * sub.freq * sps
                    * self._centered_offsets(chunk.i0, chunk.i1))
            segment, base = reencoder.image(effective, chunk.i0)
            if self.measure_correction:
                correction = self._measure_and_update(
                    key, segment, base, chunk, reencoder, predicted, center)
                if correction != 1.0:
                    segment = segment * correction
        subtract_segment(self.residual[target], segment, base)
        add_segment(self.images[key], segment, base)

    def _measure_and_update(self, key, segment, base, chunk, reencoder,
                            predicted: complex, center: float) -> complex:
        """Measure image-vs-signal mismatch over the chunk core and update
        the correction loop; returns the factor to apply to this segment."""
        sub = self.subtraction[key]
        residual = self.residual[key[1]]
        core = reencoder.core_slice(chunk.i0, chunk.i1, base, segment.size)
        lo = base + core.start
        hi = base + core.stop
        if lo < 0 or hi > residual.size or hi <= lo:
            return 1.0
        seg_core = segment[core]
        # Scalar reductions via vdot (|x|^2 summed in one C call); the rest
        # of the update is pure-float arithmetic — this runs once per
        # chunk per subtract-only placement, hot enough that numpy scalar
        # ufunc boxing used to dominate it.
        denom = float(np.vdot(seg_core, seg_core).real)
        noise_floor = self.config.noise_power * (hi - lo)
        if denom < 4.0 * noise_floor:
            return 1.0  # too weak to measure against interference+noise
        window = residual[lo:hi]
        rho = complex(np.vdot(seg_core, window)) / denom
        # Contamination-adaptive gain: the measurement window still holds
        # the other (not yet subtracted) packet plus noise, whose power we
        # can estimate as the excess of the window over our own prediction.
        own_power = denom / (hi - lo)
        window_power = float(np.vdot(window, window).real) / (hi - lo)
        abs_rho = abs(rho)
        contamination = max(window_power - own_power * abs_rho * abs_rho,
                            0.0)
        measurement_var = contamination / max(denom, 1e-30)
        prior_var = 0.02  # typical squared relative error of the estimates
        gain = self.correction_alpha * prior_var / (prior_var
                                                    + measurement_var)
        magnitude = min(max(abs_rho, 0.5), 2.0)
        angle = math.atan2(rho.imag, rho.real)
        scaled = gain * angle
        correction = (magnitude ** gain) * complex(math.cos(scaled),
                                                   math.sin(scaled))
        sub.multiplier = predicted * correction
        if sub.last_position is not None:
            dt = center - sub.last_position
            if dt > 0:
                max_step = 0.1 / dt
                step = self.correction_beta * gain * angle / dt
                sub.freq += min(max(step, -max_step), max_step)
        sub.last_position = center
        return correction

    # ------------------------------------------------------------------
    # End-state export (for backward decoding)
    # ------------------------------------------------------------------
    def final_multiplier(self, packet: str, collision: int) -> complex:
        """Total complex factor (gain x ramp x tracked phase) multiplying
        the packet's last symbol in this capture — the quantity that
        becomes the conjugate gain of the time-reversed channel."""
        key = (packet, collision)
        pl = self.placements[key]
        spec = self.specs[packet]
        sps = self.config.shaper.sps
        last_pos = pl.start + sps * (spec.n_symbols - 1)
        if key in self.streams:
            stream = self.streams[key]
            static = stream.estimate.gain * np.exp(
                2j * np.pi * stream.estimate.freq_offset * last_pos)
            return complex(static * np.exp(1j * stream.tracker.phase))
        sub = self.subtraction[key]
        static = pl.estimate.gain * np.exp(
            2j * np.pi * pl.estimate.freq_offset * last_pos)
        return complex(static * sub.predict(last_pos))

    def final_freq(self, packet: str, collision: int) -> float:
        """Best total frequency-offset estimate, cycles per sample."""
        key = (packet, collision)
        if key in self.streams:
            return self.streams[key].total_freq_offset()
        pl = self.placements[key]
        sub = self.subtraction[key]
        return pl.estimate.freq_offset + sub.freq / (2.0 * np.pi)

    def residual_power(self, collision: int) -> float:
        """Mean |residual|^2 — should approach the noise floor after a
        successful run (diagnostic)."""
        r = self.residual[collision]
        return float(np.mean(np.abs(r) ** 2))
