"""Did the AP receive two matching collisions? (§4.2.2)

"We use the same correlation trick to match the current collision against
prior collisions ... The AP aligns the two collisions at the positions
where P2 and P2' start. If the two packets are the same, the samples
aligned in such a way are highly dependent ... and thus the correlation
spikes."

Retransmitted 802.11 frames are bit-identical except the retry flag, so
sample-level correlation between the aligned regions is high even though
each collision superimposes a *different* alignment of the other packet
(which acts as uncorrelated noise in this test).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["match_score", "collisions_match"]


def match_score(signal_a, position_a: int, signal_b, position_b: int,
                window: int) -> float:
    """Normalized cross-correlation of two captures aligned at the given
    positions, over *window* samples (clipped to what both captures hold).

    Returns a value in [0, 1]; identical packet content under independent
    interference typically scores around P_pkt / P_total, while unrelated
    content scores near 0.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    a = np.asarray(signal_a, dtype=complex).ravel()
    b = np.asarray(signal_b, dtype=complex).ravel()
    if not (0 <= position_a < a.size and 0 <= position_b < b.size):
        raise ConfigurationError("alignment position outside capture")
    span = min(window, a.size - position_a, b.size - position_b)
    if span < 8:
        raise ConfigurationError("overlap too short to score a match")
    seg_a = a[position_a:position_a + span]
    seg_b = b[position_b:position_b + span]
    denom = np.linalg.norm(seg_a) * np.linalg.norm(seg_b)
    if denom == 0:
        return 0.0
    return float(abs(np.vdot(seg_a, seg_b)) / denom)


def collisions_match(signal_a, position_a: int, signal_b, position_b: int,
                     *, window: int = 256, threshold: float = 0.25) -> bool:
    """True when the aligned-correlation score clears *threshold*.

    The default threshold sits well above the ~1/sqrt(window) score of
    unrelated content and below the typical score of a true match at any
    reasonable SINR.
    """
    return match_score(signal_a, position_a, signal_b, position_b,
                       window) >= threshold
