"""Re-encoding decoded chunks into channel images for subtraction (§4.2.3b).

"Now that the AP knows the symbols that Alice sent in chunk 1, it uses this
knowledge to create an estimate of how these symbols would look after
traversing Alice's channel to the AP."

The image of a chunk is built by (1) applying the symbol-domain ISI
estimate (the inverted equalizer, §4.2.4d), (2) pulse-shaping at the
transmit RRC, (3) fractionally delaying onto the capture's sample grid
(§4.2.3b's Nyquist interpolation), and (4) multiplying by the complex gain
and frequency-offset phase ramp (Eq. 4.1). Because every operation is
linear in the symbols, chunk images computed independently superpose
exactly — the engine subtracts them incrementally as chunks decode.

Hot-path note: steps (2) and (3) are both LTI, so their kernels compose —
we cache ``RRC ⊛ fractional-delay`` per sub-sample fraction and build each
chunk image with a single convolution of the upsampled symbols. The phase
ramp is assembled from cached per-frequency rotation powers into a reused
scratch buffer instead of evaluating trigonometry per chunk.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.estimation import ChannelEstimate
from repro.phy.isi import IsiFilter
from repro.phy.pulse import PulseShaper
from repro.phy.resample import sinc_kernel

__all__ = ["Reencoder"]


@dataclass
class Reencoder:
    """Builds channel images of decoded symbols for one (packet, capture).

    Parameters
    ----------
    shaper:
        The system pulse shaping.
    estimate:
        Channel estimate whose model is
        ``rx[k] = gain * sym[k] * exp(j 2π f (start + sps k))``.
    start:
        Fractional sample position of the packet's symbol 0 pulse centre in
        the *target* capture buffer.
    symbol_isi:
        Optional symbol-domain ISI taps (an :class:`IsiFilter`) — the
        inverse of the trained equalizer, when ISI compensation is active.
    """

    shaper: PulseShaper
    estimate: ChannelEstimate
    start: float
    symbol_isi: IsiFilter | None = None
    delay_half_width: int = 6
    _frac_cache: dict = field(default_factory=dict, repr=False)
    _power_cache: dict = field(default_factory=dict, repr=False)
    _ramp_scratch: np.ndarray | None = field(default=None, repr=False)

    def _composed_kernel(self, frac: float) -> np.ndarray:
        """``RRC ⊛ fractional-delay`` taps for this sub-sample fraction.

        The pulse shaping and the fractional delay are both LTI filters, so
        chaining them equals convolving by their composed kernel once. The
        delay stage applies its taps correlation-style, hence the reversal.
        """
        key = int(frac * 1e9)  # 1e-9 merge grain, cheaper than round()
        kernel = self._frac_cache.get(key)
        if kernel is None:
            delay_taps = sinc_kernel(frac, self.delay_half_width)[::-1]
            composed = np.convolve(self.shaper.taps, delay_taps)
            # Stored pre-reversed so `image` can call np.correlate
            # directly (np.convolve would re-flip the kernel every chunk).
            kernel = composed[::-1].copy()
            self._frac_cache[key] = kernel
        return kernel

    def _phase_ramp(self, base: int, size: int) -> np.ndarray:
        """``exp(2jπ f (base + k))`` for k < size, into reused scratch.

        The per-sample rotation ``exp(2jπ f)^k`` depends only on the
        frequency estimate, so its cumulative powers are cached per
        frequency and each chunk needs just one scalar rotation and one
        scalar-vector multiply — no per-chunk trigonometry. Cumulative
        products drift by O(k·eps) ≈ 1e-13 over thousand-sample packets,
        far inside the subtraction accuracy the estimates themselves allow.
        """
        freq = self.estimate.freq_offset
        powers = self._power_cache.get(freq)
        if powers is None or powers.size < size:
            capacity = max(size, 256,
                           0 if powers is None else 2 * powers.size)
            steps = np.full(capacity, cmath.exp(2j * math.pi * freq))
            steps[0] = 1.0 + 0j
            powers = np.cumprod(steps)
            self._power_cache[freq] = powers
        if self._ramp_scratch is None or self._ramp_scratch.size < size:
            self._ramp_scratch = np.empty(max(size, 256), dtype=complex)
        ramp = self._ramp_scratch[:size]
        np.multiply(powers[:size], cmath.exp(2j * math.pi * freq * base),
                    out=ramp)
        return ramp

    def image(self, symbols, i0: int) -> tuple[np.ndarray, int]:
        """Channel image of chunk *symbols* occupying indices [i0, i0+K).

        Returns ``(segment, base)``: add ``segment`` at ``buffer[base:]``.
        The segment includes the pulse tails on both sides of the chunk.
        """
        d = np.asarray(symbols, dtype=complex).ravel()
        if d.size == 0:
            raise ConfigurationError("cannot re-encode an empty chunk")
        j0 = i0
        if self.symbol_isi is not None and not self.symbol_isi.is_identity:
            taps = self.symbol_isi.taps
            d = np.convolve(d, taps)
            j0 = i0 - self.symbol_isi.main_tap
        sps = self.shaper.sps
        # Sample m of the shaped-and-delayed wave sits at target position
        #   start + sps*j0 - shaper.delay - pad + m  (fractional), where
        # pad = half_width + 1 zeros keep the interpolation tails — chunk
        # images must superpose exactly (linearity is what makes
        # incremental subtraction correct).
        pad = self.delay_half_width + 1
        position = (self.start + sps * j0 - self.shaper.delay - pad)
        base = math.floor(position)
        frac = position - base
        kernel = self._composed_kernel(frac)
        upsampled = np.zeros((d.size - 1) * sps + 1, dtype=complex)
        upsampled[::sps] = d
        # correlate(x, k_rev, 'full') == convolve(x, k); the kernel is
        # cached reversed, and k is real so the implicit conjugate is free.
        segment = np.correlate(upsampled, kernel, "full")
        # The composed kernel spans one sample less on each side than the
        # two-stage (pad + fractional-delay FIR) layout it replaced, whose
        # first and last samples were identically zero — so the segment
        # simply starts one sample later.
        base += 1
        ramp = self._phase_ramp(base, segment.size)
        np.multiply(segment, ramp, out=segment)
        np.multiply(segment, self.estimate.gain, out=segment)
        return segment, base

    def core_slice(self, i0: int, i1: int, base: int,
                   segment_len: int) -> slice:
        """Slice of an image segment covering only the chunk's symbol
        centres (pulse tails excluded) — the region used for the §4.2.4(b)
        amplitude/phase error measurement."""
        first = int(np.floor(self.start + self.shaper.sps * i0)) - base
        last = int(np.ceil(self.start + self.shaper.sps * (i1 - 1))) - base
        first = max(first, 0)
        last = min(last + 1, segment_len)
        return slice(first, last)


def subtract_segment(buffer: np.ndarray, segment: np.ndarray,
                     base: int) -> None:
    """In-place ``buffer[base:base+len] -= segment`` with edge clipping."""
    lo = max(base, 0)
    hi = min(base + segment.size, buffer.size)
    if hi <= lo:
        return
    buffer[lo:hi] -= segment[lo - base: hi - base]


def add_segment(buffer: np.ndarray, segment: np.ndarray, base: int) -> None:
    """In-place ``buffer[base:base+len] += segment`` with edge clipping."""
    lo = max(base, 0)
    hi = min(base + segment.size, buffer.size)
    if hi <= lo:
        return
    buffer[lo:hi] += segment[lo - base: hi - base]
