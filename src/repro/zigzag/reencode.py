"""Re-encoding decoded chunks into channel images for subtraction (§4.2.3b).

"Now that the AP knows the symbols that Alice sent in chunk 1, it uses this
knowledge to create an estimate of how these symbols would look after
traversing Alice's channel to the AP."

The image of a chunk is built by (1) applying the symbol-domain ISI
estimate (the inverted equalizer, §4.2.4d), (2) pulse-shaping at the
transmit RRC, (3) fractionally delaying onto the capture's sample grid
(§4.2.3b's Nyquist interpolation), and (4) multiplying by the complex gain
and frequency-offset phase ramp (Eq. 4.1). Because every operation is
linear in the symbols, chunk images computed independently superpose
exactly — the engine subtracts them incrementally as chunks decode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.phy.estimation import ChannelEstimate
from repro.phy.isi import IsiFilter
from repro.phy.pulse import PulseShaper
from repro.phy.resample import FractionalDelay

__all__ = ["Reencoder"]


@dataclass
class Reencoder:
    """Builds channel images of decoded symbols for one (packet, capture).

    Parameters
    ----------
    shaper:
        The system pulse shaping.
    estimate:
        Channel estimate whose model is
        ``rx[k] = gain * sym[k] * exp(j 2π f (start + sps k))``.
    start:
        Fractional sample position of the packet's symbol 0 pulse centre in
        the *target* capture buffer.
    symbol_isi:
        Optional symbol-domain ISI taps (an :class:`IsiFilter`) — the
        inverse of the trained equalizer, when ISI compensation is active.
    """

    shaper: PulseShaper
    estimate: ChannelEstimate
    start: float
    symbol_isi: IsiFilter | None = None
    delay_half_width: int = 6
    _frac_cache: dict = field(default_factory=dict, repr=False)

    def image(self, symbols, i0: int) -> tuple[np.ndarray, int]:
        """Channel image of chunk *symbols* occupying indices [i0, i0+K).

        Returns ``(segment, base)``: add ``segment`` at ``buffer[base:]``.
        The segment includes the pulse tails on both sides of the chunk.
        """
        d = np.asarray(symbols, dtype=complex).ravel()
        if d.size == 0:
            raise ConfigurationError("cannot re-encode an empty chunk")
        j0 = i0
        if self.symbol_isi is not None and not self.symbol_isi.is_identity:
            taps = self.symbol_isi.taps
            d = np.convolve(d, taps)
            j0 = i0 - self.symbol_isi.main_tap
        wave = self.shaper.shape(d)
        # Pad before the fractional delay so the interpolation tails are
        # kept rather than truncated — chunk images must superpose exactly
        # (linearity is what makes incremental subtraction correct).
        pad = self.delay_half_width + 1
        wave = np.concatenate([
            np.zeros(pad, dtype=complex), wave,
            np.zeros(pad, dtype=complex),
        ])
        # Sample m of `wave` sits at target position
        #   start + sps*j0 - shaper.delay - pad + m  (fractional).
        position = (self.start + self.shaper.sps * j0
                    - self.shaper.delay - pad)
        base = int(np.floor(position))
        frac = position - base
        key = round(frac, 9)
        if key not in self._frac_cache:
            self._frac_cache[key] = FractionalDelay(
                frac, self.delay_half_width)
        wave = self._frac_cache[key].apply(wave)
        n = base + np.arange(wave.size, dtype=float)
        ramp = np.exp(2j * np.pi * self.estimate.freq_offset * n)
        return self.estimate.gain * wave * ramp, base

    def core_slice(self, i0: int, i1: int, base: int,
                   segment_len: int) -> slice:
        """Slice of an image segment covering only the chunk's symbol
        centres (pulse tails excluded) — the region used for the §4.2.4(b)
        amplitude/phase error measurement."""
        first = int(np.floor(self.start + self.shaper.sps * i0)) - base
        last = int(np.ceil(self.start + self.shaper.sps * (i1 - 1))) - base
        first = max(first, 0)
        last = min(last + 1, segment_len)
        return slice(first, last)


def subtract_segment(buffer: np.ndarray, segment: np.ndarray,
                     base: int) -> None:
    """In-place ``buffer[base:base+len] -= segment`` with edge clipping."""
    lo = max(base, 0)
    hi = min(base + segment.size, buffer.size)
    if hi <= lo:
        return
    buffer[lo:hi] -= segment[lo - base: hi - base]


def add_segment(buffer: np.ndarray, segment: np.ndarray, base: int) -> None:
    """In-place ``buffer[base:base+len] += segment`` with edge clipping."""
    lo = max(base, 0)
    hi = min(base + segment.size, buffer.size)
    if hi <= lo:
        return
    buffer[lo:hi] += segment[lo - base: hi - base]
